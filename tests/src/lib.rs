//! Placeholder library target: the real content of this crate is the
//! integration-test suite under `tests/`.
