//! Pins the columnar-batch contract: feeding the engines
//! [`TupleBatch`]es through the batch-native hot path is **byte-identical**
//! to pushing the same rows one tuple at a time — same emission stream,
//! same recipient sets, same deterministic metrics — across every
//! `Algorithm` × `OutputStrategy`, at every parallelism of the sharded
//! path, for every batch size, under live roster churn at batch
//! boundaries, and through a mid-stream checkpoint → restore hop.
//!
//! The `GASF_TEST_BATCH` environment knob narrows the exhaustive sweeps
//! to one batch size (CI shards the matrix with it); unset, the suite
//! covers 1, 7, 64 and 1024.

use gasf_core::batch::TupleBatch;
use gasf_core::candidate::FilterId;
use gasf_core::engine::{Algorithm, Emission, GroupEngine, GroupEngineBuilder, OutputStrategy};
use gasf_core::metrics::EngineMetrics;
use gasf_core::plan::EvaluatorTier;
use gasf_core::quality::FilterSpec;
use gasf_core::schema::Schema;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::VecSink;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleBuilder;
use gasf_sources::{NamosBuoy, Trace};
use proptest::prelude::*;
use std::sync::Arc;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

/// Batch sizes under test: the `GASF_TEST_BATCH` knob pins one size
/// (CI matrix sharding); unset, the canonical four are swept.
fn batch_sizes() -> Vec<usize> {
    match std::env::var("GASF_TEST_BATCH") {
        Ok(v) => vec![v
            .parse()
            .expect("GASF_TEST_BATCH must be a positive integer batch size")],
        Err(_) => vec![1, 7, 64, 1024],
    }
}

fn trace(tuples: usize, seed: u64) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(seed).generate()
}

/// The compile-equivalence wide roster: overlapping deltas sharing a key
/// class, a second attribute, a trend, a multi-attr mean, both samplers,
/// and (off region-greedy) a stateful delta — every columnar gate.
fn wide_specs(trace: &Trace, algorithm: Algorithm) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let mut specs = vec![
        FilterSpec::delta("tmpr4", s * 2.0, s),
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        FilterSpec::delta("tmpr4", s * 2.5, s * 1.2),
        FilterSpec::delta("tmpr2", s * 2.2, s * 0.9),
        FilterSpec::trend_delta("tmpr4", s * 90.0, s * 40.0),
        FilterSpec::multi_attr_delta(["tmpr2", "tmpr4"], s * 2.4, s * 1.1),
        FilterSpec::reservoir("fluoro", Micros::from_millis(70), 3),
        FilterSpec::stratified_sample("tmpr4", Micros::from_millis(110), s * 1.5, 60.0, 20.0),
    ];
    if algorithm != Algorithm::RegionGreedy {
        specs.push(FilterSpec::stateful_delta("tmpr4", s * 2.8, s * 1.3));
    }
    specs
}

fn builder(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    tier: EvaluatorTier,
) -> GroupEngineBuilder {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .output_strategy(strategy)
        .evaluator(tier)
}

/// Deterministic subset of the metrics (everything but wall-clock CPU).
fn fingerprint(m: &EngineMetrics) -> (u64, u64, u64, u64, Vec<u64>) {
    (
        m.input_tuples,
        m.output_tuples,
        m.emissions,
        m.recipient_labels,
        m.latencies_us.clone(),
    )
}

/// The single-tuple reference path.
fn run_single(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    tier: EvaluatorTier,
) -> (Vec<Emission>, GroupEngine) {
    let mut engine = builder(trace, algorithm, strategy, tier)
        .filters(wide_specs(trace, algorithm))
        .build()
        .unwrap();
    let mut sink = VecSink::new();
    engine
        .run_into(trace.tuples().iter().cloned(), &mut sink)
        .unwrap();
    (sink.into_vec(), engine)
}

/// The columnar path at one batch size.
fn run_columnar(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    tier: EvaluatorTier,
    size: usize,
) -> (Vec<Emission>, GroupEngine) {
    let mut engine = builder(trace, algorithm, strategy, tier)
        .filters(wide_specs(trace, algorithm))
        .build()
        .unwrap();
    let mut sink = VecSink::new();
    for batch in trace.batches(size) {
        engine
            .push_batch_columnar(&Arc::new(batch), &mut sink)
            .unwrap();
    }
    engine.finish_into(&mut sink).unwrap();
    (sink.into_vec(), engine)
}

#[test]
fn columnar_batches_equal_single_tuple_for_every_combination() {
    let trace = trace(700, 11);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let (expected, se) = run_single(&trace, algorithm, strategy, EvaluatorTier::Compiled);
            assert!(!expected.is_empty(), "{algorithm:?}/{strategy:?} must emit");
            for size in batch_sizes() {
                let label = format!("{algorithm:?}/{strategy:?}/batch={size}");
                let (got, be) =
                    run_columnar(&trace, algorithm, strategy, EvaluatorTier::Compiled, size);
                assert_eq!(got, expected, "{label}: emission stream");
                assert_eq!(
                    fingerprint(be.metrics()),
                    fingerprint(se.metrics()),
                    "{label}: metrics"
                );
            }
        }
    }
}

#[test]
fn interpreted_tier_consumes_batches_through_the_reference_path() {
    // On the interpreted tier `push_batch_columnar` must fall back to the
    // row-by-row reference path, still byte-identical.
    let trace = trace(400, 5);
    for algorithm in ALGORITHMS {
        let strategy = OutputStrategy::Earliest;
        let (expected, se) = run_single(&trace, algorithm, strategy, EvaluatorTier::Interpreted);
        for size in batch_sizes() {
            let label = format!("{algorithm:?}/interpreted/batch={size}");
            let (got, be) = run_columnar(
                &trace,
                algorithm,
                strategy,
                EvaluatorTier::Interpreted,
                size,
            );
            assert_eq!(got, expected, "{label}: emission stream");
            assert_eq!(
                fingerprint(be.metrics()),
                fingerprint(se.metrics()),
                "{label}: metrics"
            );
        }
    }
}

#[test]
fn sharded_columnar_matches_inline_at_every_parallelism() {
    let trace = trace(700, 11);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let (expected, _) = run_single(&trace, algorithm, strategy, EvaluatorTier::Compiled);
            for n in [1usize, 2, 4] {
                for size in batch_sizes() {
                    let label = format!("{algorithm:?}/{strategy:?}/n={n}/batch={size}");
                    let mut sharded = ShardedEngine::builder()
                        .parallelism(n)
                        .batch_size(23)
                        .route(
                            "group",
                            builder(&trace, algorithm, strategy, EvaluatorTier::Compiled)
                                .filters(wide_specs(&trace, algorithm)),
                        )
                        .build()
                        .unwrap();
                    let mut out = VecSink::new();
                    for batch in trace.batches(size) {
                        sharded
                            .push_batch_columnar(&Arc::new(batch), &mut out)
                            .unwrap();
                    }
                    sharded.finish_into(&mut out).unwrap();
                    assert_eq!(out.as_slice(), &expected[..], "{label}");
                }
            }
        }
    }
}

#[test]
fn columnar_batches_interleave_with_single_tuples() {
    // Mixed feeding — some rows as batches, some as plain pushes — is one
    // stream; the representation seam must not show.
    let trace = trace(500, 3);
    let algorithm = Algorithm::RegionGreedy;
    let strategy = OutputStrategy::Earliest;
    let (expected, _) = run_single(&trace, algorithm, strategy, EvaluatorTier::Compiled);
    let mut engine = builder(&trace, algorithm, strategy, EvaluatorTier::Compiled)
        .filters(wide_specs(&trace, algorithm))
        .build()
        .unwrap();
    let mut sink = VecSink::new();
    let tuples = trace.tuples();
    let mut i = 0usize;
    let mut chunk = 0usize;
    while i < tuples.len() {
        // Alternate: a run of single pushes, then a columnar batch.
        let n = 1 + (chunk * 7) % 13;
        if chunk.is_multiple_of(2) {
            for t in &tuples[i..(i + n).min(tuples.len())] {
                engine.push_into(t.clone(), &mut sink).unwrap();
            }
        } else {
            let end = (i + n).min(tuples.len());
            let batch = TupleBatch::from_tuples(trace.schema(), &tuples[i..end]).unwrap();
            engine
                .push_batch_columnar(&Arc::new(batch), &mut sink)
                .unwrap();
        }
        i = (i + n).min(tuples.len());
        chunk += 1;
    }
    engine.finish_into(&mut sink).unwrap();
    assert_eq!(sink.as_slice(), &expected[..]);
}

#[test]
fn columnar_ingestion_materializes_only_emitted_payloads() {
    // The lazy-intern regression pin: on the batch path a payload
    // `Tuple` is allocated only when a row is actually emitted — never
    // per input tuple in steady state.
    let trace = trace(700, 11);
    let algorithm = Algorithm::RegionGreedy;
    let strategy = OutputStrategy::Earliest;
    let (_, single) = run_single(&trace, algorithm, strategy, EvaluatorTier::Compiled);
    assert_eq!(
        single.tuple_materializations(),
        0,
        "single-tuple interning never rematerializes"
    );
    let (_, batched) = run_columnar(&trace, algorithm, strategy, EvaluatorTier::Compiled, 64);
    let m = batched.metrics().clone();
    assert!(m.output_tuples > 0, "trace must emit");
    assert_eq!(
        batched.tuple_materializations(),
        m.output_tuples,
        "exactly one materialization per distinct emitted tuple"
    );
    assert!(
        batched.tuple_materializations() < m.input_tuples,
        "dismissed rows ({} of {}) must never be materialized",
        m.input_tuples - m.output_tuples,
        m.input_tuples,
    );
}

#[test]
fn missing_values_fail_at_the_same_row_with_the_same_error() {
    // A NaN hole mid-batch: the columnar path must reproduce the exact
    // per-tuple error, emission prefix, and partial state.
    let schema = Schema::new(["t"]);
    let mut b = TupleBuilder::new(&schema);
    let mut tuples = Vec::new();
    for i in 0..10u64 {
        b.at_millis(i * 10 + 1);
        if i != 6 {
            b.set("t", i as f64 * 5.0);
        }
        tuples.push(b.build().unwrap());
    }
    let mk = || {
        GroupEngine::builder(schema.clone())
            .algorithm(Algorithm::RegionGreedy)
            .filter(FilterSpec::delta("t", 12.0, 4.0))
            .build()
            .unwrap()
    };
    let mut single = mk();
    let mut s_out = VecSink::new();
    let s_err = tuples
        .iter()
        .map(|t| single.push_into(t.clone(), &mut s_out))
        .find(|r| r.is_err())
        .unwrap()
        .unwrap_err();
    let mut batched = mk();
    let mut b_out = VecSink::new();
    let batch = Arc::new(TupleBatch::from_tuples(&schema, &tuples).unwrap());
    let b_err = batched.push_batch_columnar(&batch, &mut b_out).unwrap_err();
    assert_eq!(format!("{s_err:?}"), format!("{b_err:?}"));
    assert_eq!(s_out.as_slice(), b_out.as_slice(), "emission prefix");
    assert_eq!(
        fingerprint(single.metrics()),
        fingerprint(batched.metrics()),
        "partial state"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random batch-size schedules, churn ops at batch boundaries, and a
    /// mid-stream checkpoint → restore hop: the batch run must stay
    /// byte-identical to a single-tuple run applying the same ops at the
    /// same stream positions.
    #[test]
    fn random_batch_schedules_with_churn_and_recovery_hold(
        seed in 0u64..500,
        algo_idx in 0usize..3,
        strat_idx in 0usize..3,
        sizes in proptest::collection::vec(1usize..40, 12..30),
        op1_at in 0usize..6,
        op2_at in 6usize..12,
        cut_at in 4usize..10,
        kind1 in 0u8..3,
        kind2 in 0u8..3,
    ) {
        let algorithm = ALGORITHMS[algo_idx];
        let strategy = STRATEGIES[strat_idx];
        let tier = EvaluatorTier::Compiled;
        let trace = trace(340, seed);
        let s = trace.stats("tmpr4").unwrap().mean_abs_delta;

        // Chunk the trace by the random schedule (cycling if it is too
        // short), recording each batch's starting row.
        let tuples = trace.tuples();
        let mut batches: Vec<(usize, TupleBatch)> = Vec::new();
        let mut start = 0usize;
        let mut si = 0usize;
        while start < tuples.len() {
            let size = sizes[si % sizes.len()];
            si += 1;
            let end = (start + size).min(tuples.len());
            let batch = TupleBatch::from_tuples(trace.schema(), &tuples[start..end]).unwrap();
            batches.push((start, batch));
            start = end;
        }
        let boundary_row = |bi: usize| batches.get(bi).map(|(row, _)| *row);

        let mk_op = |kind: u8, live: &[FilterId]| match kind {
            0 => (None, Some(FilterSpec::delta("tmpr2", s * 1.7, s * 0.7))),
            1 if live.len() > 1 => (Some(live[live.len() / 2]), None),
            _ => (
                Some(live[0]),
                Some(FilterSpec::delta("tmpr4", s * 3.5, s * 1.6)),
            ),
        };
        let apply = |engine: &mut GroupEngine, live: &mut Vec<FilterId>, kind: u8| {
            match mk_op(kind, live) {
                (None, Some(spec)) => live.push(engine.add_filter(spec).unwrap()),
                (Some(id), None) => {
                    engine.remove_filter(id).unwrap();
                    live.retain(|&l| l != id);
                }
                (Some(id), Some(spec)) => engine.update_filter(id, spec).unwrap(),
                (None, None) => unreachable!(),
            }
        };

        let mut streams = Vec::new();
        for columnar in [false, true] {
            let mut engine = builder(&trace, algorithm, strategy, tier)
                .filters(wide_specs(&trace, algorithm))
                .build()
                .unwrap();
            let mut live: Vec<FilterId> =
                engine.roster().iter().map(|(id, _)| *id).collect();
            let mut out = VecSink::new();
            let at_boundary = |engine: &mut GroupEngine,
                                   live: &mut Vec<FilterId>,
                                   out: &mut VecSink,
                                   row: usize| {
                for (bi, kind) in [(op1_at, kind1), (op2_at, kind2)] {
                    if boundary_row(bi) == Some(row) {
                        apply(engine, live, kind);
                    }
                }
                if boundary_row(cut_at) == Some(row) {
                    // Checkpoint → restore hop at the batch boundary.
                    let snap = engine.snapshot_into(out).unwrap();
                    *engine = GroupEngine::restore_with_tier(&snap, tier).unwrap();
                }
            };
            if columnar {
                for (row, batch) in &batches {
                    at_boundary(&mut engine, &mut live, &mut out, *row);
                    engine
                        .push_batch_columnar(&Arc::new(batch.clone()), &mut out)
                        .unwrap();
                }
            } else {
                for (row, t) in tuples.iter().enumerate() {
                    at_boundary(&mut engine, &mut live, &mut out, row);
                    engine.push_into(t.clone(), &mut out).unwrap();
                }
            }
            engine.finish_into(&mut out).unwrap();
            streams.push(out.into_vec());
        }
        prop_assert_eq!(&streams[0], &streams[1]);
    }
}
