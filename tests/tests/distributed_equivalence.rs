//! Distributed equivalence: N subscriber OS processes over localhost TCP
//! receive streams **byte-identical** to the in-process run, exhaustive
//! over every `Algorithm` × `OutputStrategy` combination.
//!
//! `harness = false`: this binary is both the coordinator and, re-execed
//! with `GASF_EQ_ROLE=subscriber`, the subscriber worker processes. For
//! each combination the coordinator writes a fresh layout (ephemeral
//! ports, its own run directory), spawns two subscriber processes,
//! drives the source inline via `gasf_wire::worker::run_source` — which
//! replays the trace through a recording reference transport and then
//! over real sockets — and asserts the deployment-level equivalence
//! verdict plus clean worker exits.

use gasf_wire::layout::HostLayout;
use gasf_wire::tcp::WireConfig;
use gasf_wire::worker::{run_source, run_subscriber};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const ALGORITHMS: [&str; 3] = ["region-greedy", "per-candidate-set", "self-interested"];
const STRATEGIES: [&str; 3] = ["earliest", "per-candidate-set", "batched:7"];

fn layout_toml(algorithm: &str, strategy: &str, parallelism: usize) -> String {
    format!(
        r#"
[deployment]
name = "eq-{algorithm}-{}"

[workload]
tuples = 250
seed = 42
algorithm = "{algorithm}"
strategy = "{strategy}"
parallelism = {parallelism}

[[process]]
id = 0
role = "source"
addr = "127.0.0.1:0"
nodes = [0]

[[process]]
id = 1
role = "subscriber"
addr = "127.0.0.1:0"
nodes = [1, 2]

[[process]]
id = 2
role = "subscriber"
addr = "127.0.0.1:0"
nodes = [3]
"#,
        strategy.replace(':', "-"),
    )
}

fn subscriber_role() -> ! {
    let layout_path = std::env::var("GASF_EQ_LAYOUT").expect("GASF_EQ_LAYOUT");
    let process: u32 = std::env::var("GASF_EQ_PROCESS")
        .expect("GASF_EQ_PROCESS")
        .parse()
        .expect("process id");
    let run_dir = PathBuf::from(std::env::var("GASF_EQ_RUN_DIR").expect("GASF_EQ_RUN_DIR"));
    let layout = HostLayout::from_path(Path::new(&layout_path)).expect("layout parses");
    match run_subscriber(&layout, process, &run_dir, Duration::from_secs(120)) {
        Ok(report) => {
            assert!(report.done, "subscriber exited before Finish");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("subscriber {process}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_combo(base: &Path, algorithm: &str, strategy: &str, parallelism: usize) {
    let tag = format!("{algorithm}-{}-p{parallelism}", strategy.replace(':', "-"));
    let run_dir = base.join(&tag);
    let _ = std::fs::remove_dir_all(&run_dir);
    std::fs::create_dir_all(&run_dir).expect("run dir");
    let layout_path = run_dir.join("layout.toml");
    std::fs::write(&layout_path, layout_toml(algorithm, strategy, parallelism))
        .expect("write layout");
    let layout = HostLayout::from_path(&layout_path).expect("layout parses");

    let exe = std::env::current_exe().expect("current_exe");
    let mut children = Vec::new();
    for sub in layout.subscribers() {
        let child = Command::new(&exe)
            .env("GASF_EQ_ROLE", "subscriber")
            .env("GASF_EQ_LAYOUT", &layout_path)
            .env("GASF_EQ_PROCESS", sub.id.to_string())
            .env("GASF_EQ_RUN_DIR", &run_dir)
            .spawn()
            .expect("spawn subscriber");
        children.push((sub.id, child));
    }

    let outcome = run_source(&layout, &run_dir, WireConfig::default())
        .unwrap_or_else(|e| panic!("[{tag}] source failed: {e}"));
    for (id, mut child) in children {
        let status = child.wait().expect("wait subscriber");
        assert!(status.success(), "[{tag}] subscriber {id} exited {status}");
    }

    assert!(
        outcome.equivalent,
        "[{tag}] streams diverged: {:?}",
        outcome.mismatches
    );
    assert_eq!(outcome.received.len(), 2, "[{tag}] both subscribers report");
    let nodes: usize = outcome.received.iter().map(|r| r.per_node.len()).sum();
    assert_eq!(nodes, 3, "[{tag}] all three subscriber nodes report");
    assert!(
        outcome.received.iter().all(|r| r.emissions > 0),
        "[{tag}] every subscriber process saw traffic"
    );
    assert!(outcome.wire_bytes > 0, "[{tag}] bytes crossed the wire");
    assert!(
        outcome.overlay_bytes > 0,
        "[{tag}] overlay accounting preserved through the seam"
    );
    println!(
        "ok [{tag}]: {} emissions, {} wire bytes, 3 nodes byte-identical",
        outcome.wire_messages, outcome.wire_bytes
    );
    let _ = std::fs::remove_dir_all(&run_dir);
}

fn main() {
    if std::env::var("GASF_EQ_ROLE").as_deref() == Ok("subscriber") {
        subscriber_role();
    }
    let base = std::env::temp_dir().join(format!("gasf-eq-{}", std::process::id()));
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            run_combo(&base, algorithm, strategy, 1);
        }
    }
    // One multi-shard source on top of the exhaustive single-shard grid:
    // merged shard output must stay deterministic all the way to the wire.
    run_combo(&base, "region-greedy", "earliest", 2);
    let _ = std::fs::remove_dir_all(&base);
    println!("distributed equivalence: 10 deployments, all byte-identical");
}
