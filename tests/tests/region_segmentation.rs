//! Theorem 2/3 operational checks: solving per region equals solving the
//! whole (finite) stream at once, and region covers never intersect.

use gasf_core::candidate::{CloseCause, TimeCover};
use gasf_core::filter::{build_filter, GroupFilter};
use gasf_core::hitting_set::greedy_hitting_set;
use gasf_core::prelude::*;
use gasf_core::region::RegionTracker;
use proptest::prelude::*;

fn stream_from_steps(steps: &[i32]) -> (Schema, Vec<Tuple>) {
    let schema = Schema::new(["v"]);
    let mut b = TupleBuilder::new(&schema);
    let mut v = 0.0;
    let tuples = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            v += *s as f64;
            b.at_millis(10 * (i as u64 + 1))
                .set("v", v)
                .build()
                .expect("fixture")
        })
        .collect();
    (schema, tuples)
}

/// Collects all closed candidate sets of the given filters on a stream.
fn collect_sets(
    schema: &Schema,
    specs: &[FilterSpec],
    tuples: &[Tuple],
) -> Vec<gasf_core::candidate::ClosedSet> {
    let mut filters: Vec<Box<dyn GroupFilter>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| build_filter(s, FilterId::from_index(i), schema).expect("valid"))
        .collect();
    let mut sets = Vec::new();
    for t in tuples {
        for f in &mut filters {
            let a = f.process(t).expect("no missing values");
            sets.extend(a.closed);
        }
    }
    for f in &mut filters {
        sets.extend(f.force_close(CloseCause::EndOfStream).closed);
    }
    sets
}

fn spec_strategy() -> impl Strategy<Value = Vec<FilterSpec>> {
    proptest::collection::vec((8.0f64..40.0, 0.1f64..0.5), 2..5).prop_map(|params| {
        params
            .into_iter()
            .map(|(delta, frac)| FilterSpec::delta("v", delta, delta * frac))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Region covers must be pairwise disjoint (Axiom 2) and every set
    /// must land in exactly one region.
    #[test]
    fn regions_partition_the_sets(
        steps in proptest::collection::vec(-12i32..12, 10..120),
        specs in spec_strategy(),
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        let sets = collect_sets(&schema, &specs, &tuples);
        let total = sets.len();
        let mut tracker = RegionTracker::new();
        for s in sets {
            tracker.add(s);
        }
        let regions = tracker.drain_all();
        let placed: usize = regions.iter().map(|r| r.sets().len()).sum();
        prop_assert_eq!(placed, total);
        let covers: Vec<TimeCover> = regions.iter().map(|r| r.cover()).collect();
        for (i, a) in covers.iter().enumerate() {
            for b in covers.iter().skip(i + 1) {
                prop_assert!(!a.intersects(b), "regions intersect: {a:?} vs {b:?}");
            }
        }
    }

    /// Theorem 2, operationally: the union of per-region greedy solutions
    /// has the same size as the greedy solution over all sets at once
    /// (regions are independent sub-instances — no tuple is shared across
    /// regions, so the greedy decomposes exactly).
    #[test]
    fn per_region_greedy_equals_whole_stream_greedy(
        steps in proptest::collection::vec(-12i32..12, 10..120),
        specs in spec_strategy(),
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        let sets = collect_sets(&schema, &specs, &tuples);
        let whole = greedy_hitting_set(&sets).len();

        let mut tracker = RegionTracker::new();
        for s in sets {
            tracker.add(s);
        }
        let per_region: usize = tracker
            .drain_all()
            .into_iter()
            .map(|r| greedy_hitting_set(r.sets()).len())
            .sum();
        prop_assert_eq!(per_region, whole);
    }

    /// A filter's own candidate sets never overlap in time when Axiom 1's
    /// slack bound holds (it is enforced by spec validation).
    #[test]
    fn per_filter_time_covers_disjoint(
        steps in proptest::collection::vec(-12i32..12, 10..120),
        delta in 8.0f64..40.0,
        frac in 0.1f64..0.5,
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        let specs = vec![FilterSpec::delta("v", delta, delta * frac)];
        let sets = collect_sets(&schema, &specs, &tuples);
        for w in sets.windows(2) {
            prop_assert!(
                !w[0].cover().intersects(&w[1].cover()),
                "consecutive sets of one filter intersect: {:?} vs {:?}",
                w[0].cover(),
                w[1].cover()
            );
        }
    }
}
