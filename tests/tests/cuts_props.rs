//! Property tests for [`RuntimePredictor`] on the degenerate inputs that
//! show up in practice and used to be easy to regress: a window full of
//! **constant region sizes** (the least-squares denominator collapses),
//! a **single observation**, and **zero-CPU samples** (timer granularity
//! rounds a fast region to 0 µs). In every case the predictor must stay
//! defined, finite, and non-negative — a NaN or negative prediction here
//! silently disables the cut heuristic in the sharded engine.

use gasf_core::cuts::RuntimePredictor;
use gasf_core::time::Micros;
use proptest::prelude::*;

proptest! {
    /// Constant sizes make the least-squares denominator exactly zero:
    /// `fit` must decline rather than divide, and `predict` must fall
    /// back to the conservative max-observed runtime for *any* queried
    /// size — never NaN, never negative.
    #[test]
    fn constant_sizes_fall_back_to_max_observed(
        size in 1usize..50_000,
        cpus in proptest::collection::vec(0u64..5_000_000, 2..24),
        query in 0usize..100_000,
        overestimate in 0.0f64..10_000.0,
    ) {
        let mut p = RuntimePredictor::with_window(cpus.len(), overestimate);
        for &c in &cpus {
            p.observe(size, Micros(c));
        }
        prop_assert_eq!(p.fit(), None, "constant sizes have no defined slope");
        let max = *cpus.iter().max().unwrap() as f64;
        let us = p.predict_us(query);
        prop_assert!(us.is_finite());
        prop_assert!((us - (max + overestimate)).abs() < 1e-6);
        prop_assert_eq!(p.predict(query), Micros((max + overestimate).round() as u64));
    }

    /// One observation is never enough for a line: `fit` is `None` and
    /// the fallback predicts that single runtime regardless of size.
    #[test]
    fn single_observation_predicts_itself(
        size in 0usize..100_000,
        cpu in 0u64..10_000_000,
        query in 0usize..100_000,
    ) {
        let mut p = RuntimePredictor::new();
        p.observe(size, Micros(cpu));
        prop_assert_eq!(p.observations(), 1);
        prop_assert_eq!(p.fit(), None);
        prop_assert_eq!(p.predict(query), Micros(cpu));
    }

    /// Zero-CPU samples (sub-microsecond regions) must clamp cleanly:
    /// whatever mix of sizes and zero runtimes lands in the window, the
    /// prediction is finite and ≥ 0 — extrapolating a downward-sloping
    /// fit below zero is clamped, not returned.
    #[test]
    fn zero_cpu_samples_never_predict_negative(
        obs in proptest::collection::vec((1usize..10_000, 0u64..3), 1..24),
        query in 0usize..1_000_000,
    ) {
        let mut p = RuntimePredictor::with_window(obs.len(), 0.0);
        for &(s, c) in &obs {
            p.observe(s, Micros(c));
        }
        let us = p.predict_us(query);
        prop_assert!(us.is_finite(), "prediction must be finite, got {}", us);
        prop_assert!(us >= 0.0, "prediction must clamp at zero, got {}", us);
        // An all-zero window predicts exactly zero everywhere.
        if obs.iter().all(|&(_, c)| c == 0) {
            prop_assert_eq!(p.predict(query), Micros(0));
        }
    }

    /// The empty predictor (no observations at all) is also defined: it
    /// predicts only its overestimation margin.
    #[test]
    fn empty_window_predicts_the_margin(
        query in 0usize..100_000,
        overestimate in 0.0f64..1_000.0,
    ) {
        let p = RuntimePredictor::with_window(8, overestimate);
        prop_assert_eq!(p.fit(), None);
        prop_assert!((p.predict_us(query) - overestimate).abs() < 1e-9);
    }
}
