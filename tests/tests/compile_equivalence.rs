//! Pins the roster-compilation contract: the fused `CompiledRoster`
//! evaluator is **byte-identical** to the interpreted trait-object path it
//! replaced — same emissions, same recipient sets, same deterministic
//! metrics — across every `Algorithm` × `OutputStrategy`, at every
//! parallelism of the sharded path, under live roster churn, and through a
//! snapshot → restore → recompile round-trip (snapshots carry no compiled
//! state; either tier restores from either tier's checkpoint).

use gasf_core::candidate::FilterId;
use gasf_core::engine::{Algorithm, Emission, GroupEngine, GroupEngineBuilder, OutputStrategy};
use gasf_core::metrics::EngineMetrics;
use gasf_core::plan::EvaluatorTier;
use gasf_core::quality::FilterSpec;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::VecSink;
use gasf_core::time::Micros;
use gasf_sources::{NamosBuoy, Trace};
use proptest::prelude::*;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

const TIERS: [EvaluatorTier; 2] = [EvaluatorTier::Compiled, EvaluatorTier::Interpreted];

fn trace(tuples: usize, seed: u64) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(seed).generate()
}

/// A roster that exercises every compiled gate: overlapping deltas on one
/// attribute (shared key class + cohort cascade), a second attribute
/// class, a trend, a multi-attr mean, both samplers, and — off the
/// region-greedy algorithm — a stateful delta.
fn wide_specs(trace: &Trace, algorithm: Algorithm) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let mut specs = vec![
        FilterSpec::delta("tmpr4", s * 2.0, s),
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        FilterSpec::delta("tmpr4", s * 2.5, s * 1.2),
        FilterSpec::delta("tmpr2", s * 2.2, s * 0.9),
        FilterSpec::trend_delta("tmpr4", s * 90.0, s * 40.0),
        FilterSpec::multi_attr_delta(["tmpr2", "tmpr4"], s * 2.4, s * 1.1),
        FilterSpec::reservoir("fluoro", Micros::from_millis(70), 3),
        FilterSpec::stratified_sample("tmpr4", Micros::from_millis(110), s * 1.5, 60.0, 20.0),
    ];
    if algorithm != Algorithm::RegionGreedy {
        specs.push(FilterSpec::stateful_delta("tmpr4", s * 2.8, s * 1.3));
    }
    specs
}

fn builder(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    tier: EvaluatorTier,
) -> GroupEngineBuilder {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .output_strategy(strategy)
        .evaluator(tier)
}

/// Deterministic subset of the metrics (everything but wall-clock CPU).
fn fingerprint(m: &EngineMetrics) -> (u64, u64, u64, u64, Vec<u64>) {
    (
        m.input_tuples,
        m.output_tuples,
        m.emissions,
        m.recipient_labels,
        m.latencies_us.clone(),
    )
}

fn run_tier(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    tier: EvaluatorTier,
) -> (Vec<Emission>, GroupEngine) {
    let mut engine = builder(trace, algorithm, strategy, tier)
        .filters(wide_specs(trace, algorithm))
        .build()
        .unwrap();
    assert_eq!(engine.evaluator_tier(), tier);
    let mut sink = VecSink::new();
    engine
        .run_into(trace.tuples().iter().cloned(), &mut sink)
        .unwrap();
    (sink.into_vec(), engine)
}

#[test]
fn compiled_equals_interpreted_for_every_combination() {
    let trace = trace(700, 11);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");
            let (compiled, ce) = run_tier(&trace, algorithm, strategy, EvaluatorTier::Compiled);
            let (interp, ie) = run_tier(&trace, algorithm, strategy, EvaluatorTier::Interpreted);
            assert!(!compiled.is_empty(), "{label}: trace must emit");
            assert_eq!(compiled, interp, "{label}: emission stream");
            assert_eq!(
                fingerprint(ce.metrics()),
                fingerprint(ie.metrics()),
                "{label}: metrics"
            );
        }
    }
}

#[test]
fn sharded_compiled_matches_interpreted_at_every_parallelism() {
    let trace = trace(700, 11);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");
            let (expected, _) = run_tier(&trace, algorithm, strategy, EvaluatorTier::Interpreted);
            for n in [1usize, 2, 4] {
                let mut sharded = ShardedEngine::builder()
                    .parallelism(n)
                    .batch_size(23)
                    .route(
                        "group",
                        builder(&trace, algorithm, strategy, EvaluatorTier::Compiled)
                            .filters(wide_specs(&trace, algorithm)),
                    )
                    .build()
                    .unwrap();
                let mut out = VecSink::new();
                for t in trace.tuples() {
                    sharded.push_into(t.clone(), &mut out).unwrap();
                }
                sharded.finish_into(&mut out).unwrap();
                assert_eq!(out.as_slice(), &expected[..], "{label}: n={n}");
            }
        }
    }
}

#[test]
fn snapshot_restores_onto_either_tier_identically() {
    // Run to a midpoint on one tier, checkpoint, then restore the suffix
    // onto BOTH tiers: emissions must agree with each other and with the
    // unbroken single-engine run. Snapshots are pure roster state, so the
    // tier is a property of the replica, not the checkpoint.
    let trace = trace(500, 7);
    for algorithm in ALGORITHMS {
        for source_tier in TIERS {
            let label = format!("{algorithm:?}/from-{source_tier:?}");
            let strategy = OutputStrategy::Earliest;
            let (unbroken, _) = run_tier(&trace, algorithm, strategy, source_tier);

            let mut engine = builder(&trace, algorithm, strategy, source_tier)
                .filters(wide_specs(&trace, algorithm))
                .build()
                .unwrap();
            let mut prefix = VecSink::new();
            for t in &trace.tuples()[..250] {
                engine.push_into(t.clone(), &mut prefix).unwrap();
            }
            let snap = engine.snapshot_into(&mut prefix).unwrap();

            let mut suffixes = Vec::new();
            for restore_tier in TIERS {
                let mut replica = GroupEngine::restore_with_tier(&snap, restore_tier).unwrap();
                assert_eq!(replica.evaluator_tier(), restore_tier, "{label}");
                let mut out = VecSink::new();
                for t in &trace.tuples()[250..] {
                    replica.push_into(t.clone(), &mut out).unwrap();
                }
                replica.finish_into(&mut out).unwrap();
                suffixes.push(out.into_vec());
            }
            assert_eq!(suffixes[0], suffixes[1], "{label}: restored tiers diverge");

            // The checkpointed composite equals the prefix of the
            // unbroken run up to the boundary drain, and the restored
            // suffix finishes the stream with the same tuples chosen.
            let total = prefix.as_slice().len() + suffixes[0].len();
            assert!(total > 0, "{label}: composite run must emit");
            let composite_inputs: Vec<u64> = prefix
                .as_slice()
                .iter()
                .chain(&suffixes[0])
                .map(|e| e.tuple.seq())
                .collect();
            let _ = &unbroken; // boundary cuts may legally reshape sets
            assert!(!composite_inputs.is_empty(), "{label}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random rosters under interleaved add/remove/update churn: at every
    /// epoch the engine recompiles, and the compiled run must stay
    /// byte-identical to the interpreted run fed the same schedule —
    /// including a mid-stream snapshot→restore→recompile hop at `cut`.
    #[test]
    fn random_churn_rosters_recompile_identically(
        seed in 0u64..500,
        algo_idx in 0usize..3,
        strat_idx in 0usize..3,
        b1 in 40usize..120,
        b2 in 130usize..240,
        cut in 250usize..300,
        kind1 in 0u8..3,
        kind2 in 0u8..3,
        attr_idx in 0usize..3,
    ) {
        let extra_attr = ["tmpr2", "tmpr4", "fluoro"][attr_idx];
        let algorithm = ALGORITHMS[algo_idx];
        let strategy = STRATEGIES[strat_idx];
        let trace = trace(340, seed);
        let s = trace.stats("tmpr4").unwrap().mean_abs_delta;

        let mk_op = |kind: u8, live: &[FilterId]| match kind {
            0 => (None, Some(FilterSpec::delta(extra_attr, s * 1.7, s * 0.7))),
            1 if live.len() > 1 => (Some(live[live.len() / 2]), None),
            _ => (
                Some(live[0]),
                Some(FilterSpec::delta("tmpr4", s * 3.5, s * 1.6)),
            ),
        };

        let mut streams = Vec::new();
        for tier in TIERS {
            let mut engine = builder(&trace, algorithm, strategy, tier)
                .filters(wide_specs(&trace, algorithm))
                .build()
                .unwrap();
            let mut live: Vec<FilterId> = engine.roster().iter().map(|(id, _)| *id).collect();
            let mut out = VecSink::new();
            for (i, t) in trace.tuples().iter().enumerate() {
                for (at, kind) in [(b1, kind1), (b2, kind2)] {
                    if at != i {
                        continue;
                    }
                    match mk_op(kind, &live) {
                        (None, Some(spec)) => {
                            live.push(engine.add_filter(spec).unwrap());
                        }
                        (Some(id), None) => {
                            engine.remove_filter(id).unwrap();
                            live.retain(|&l| l != id);
                        }
                        (Some(id), Some(spec)) => engine.update_filter(id, spec).unwrap(),
                        (None, None) => unreachable!(),
                    }
                }
                if i == cut {
                    // Mid-stream recovery hop: recompile from the pure
                    // roster snapshot and continue on the same tier.
                    let snap = engine.snapshot_into(&mut out).unwrap();
                    engine = GroupEngine::restore_with_tier(&snap, tier).unwrap();
                }
                engine.push_into(t.clone(), &mut out).unwrap();
            }
            engine.finish_into(&mut out).unwrap();
            streams.push(out.into_vec());
        }
        prop_assert_eq!(&streams[0], &streams[1]);
    }
}
