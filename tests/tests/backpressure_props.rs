//! Credit-gate properties: bounded ingress is **flow control, not
//! semantics**. For any capacity and any (always-eventually-positive)
//! credit schedule, the driving loop terminates (no deadlock), admits
//! every tuple exactly once, and drains to the same run fingerprint as
//! the unbounded path — row-wise or columnar, shedder attached or not
//! (the roster declares no headroom, so the climbing shedder has
//! nothing it may touch). Plus the resumability regression pinned in
//! `try_push_columnar`'s contract: a mid-batch `Throttled` leaves the
//! batch resumable at the exact rejected row.

use std::sync::Arc;

use gasf_core::batch::TupleBatch;
use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_core::quality::FilterSpec;
use gasf_core::shed::PushOutcome;
use gasf_core::time::Micros;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, MiddlewareConfig, ShedConfig, SourceId};
use gasf_sources::{NamosBuoy, Trace};
use proptest::prelude::*;

fn trace(tuples: usize) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(31).generate()
}

/// No spec declares shed headroom: whatever rung the shedder reaches,
/// `apply_shed_action` may not retune anything.
fn specs(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        FilterSpec::delta("tmpr4", s * 2.0, s * 0.7),
        FilterSpec::delta("tmpr2", s * 2.6, s * 1.0),
        FilterSpec::reservoir("fluoro", Micros::from_millis(80), 3),
    ]
}

fn build(trace: &Trace, ingress: Option<u64>, shed: bool) -> (Middleware, SourceId) {
    let mut mw = Middleware::with_config(
        Overlay::new(Topology::ring(6).build()),
        MiddlewareConfig {
            algorithm: Algorithm::RegionGreedy,
            strategy: OutputStrategy::Earliest,
            parallelism: 2,
            ingress_capacity: ingress,
            shedding: shed.then(ShedConfig::default),
            ..MiddlewareConfig::default()
        },
    );
    let src = mw
        .register_source("buoy", NodeId(0), trace.schema().clone())
        .unwrap();
    for (i, spec) in specs(trace).iter().enumerate() {
        let _ = mw
            .subscribe(
                format!("app{i}"),
                NodeId(1 + (i as u32 % 5)),
                src,
                spec.clone(),
            )
            .unwrap();
    }
    mw.deploy().unwrap();
    (mw, src)
}

#[derive(Debug, PartialEq)]
struct RunFingerprint {
    input_tuples: u64,
    output_tuples: u64,
    emissions: u64,
    recipient_labels: u64,
    latencies_us: Vec<u64>,
    network_bytes: u64,
    messages: u64,
    per_app: Vec<(String, bool, u64, u64)>,
}

fn fingerprint(mw: &Middleware, src: SourceId) -> RunFingerprint {
    let report = mw.report(src).unwrap();
    RunFingerprint {
        input_tuples: report.engine.input_tuples,
        output_tuples: report.engine.output_tuples,
        emissions: report.engine.emissions,
        recipient_labels: report.engine.recipient_labels,
        latencies_us: report.engine.latencies_us.clone(),
        network_bytes: report.network_bytes,
        messages: report.messages,
        per_app: report
            .per_app
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    a.active,
                    a.tuples,
                    a.mean_e2e_latency.as_micros(),
                )
            })
            .collect(),
    }
}

fn unbounded(trace: &Trace) -> RunFingerprint {
    let (mut mw, src) = build(trace, None, false);
    for t in trace.tuples() {
        assert!(mw.try_push(src, t).unwrap().is_accepted());
    }
    mw.finish(src).unwrap();
    fingerprint(&mw, src)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Row-wise pushes under a random credit schedule: the loop always
    /// terminates, every tuple is admitted exactly once, and the drained
    /// run equals the unbounded one — with the shedder attached the
    /// whole time.
    #[test]
    fn random_credit_schedule_drains_to_the_unbounded_run(
        capacity in 1u64..12,
        grants in proptest::collection::vec(1u64..8, 1..16),
    ) {
        let trace = trace(150);
        let want = unbounded(&trace);
        let (mut mw, src) = build(&trace, Some(capacity), true);
        let mut at = 0usize;
        let mut throttles = 0u64;
        let mut admissions = 0u64;
        for t in trace.tuples() {
            // Budget far above any legitimate retry count: if the gate
            // could wedge with credits pending, this trips instead of
            // hanging the suite.
            let mut attempts = 0;
            loop {
                attempts += 1;
                prop_assert!(attempts <= 10_000, "gate wedged: push never admitted");
                if mw.try_push(src, t).unwrap().is_accepted() {
                    admissions += 1;
                    break;
                }
                throttles += 1;
                let g = grants[at % grants.len()];
                at += 1;
                prop_assert!(g >= 1);
                mw.grant_credits(src, g).unwrap();
            }
        }
        mw.finish(src).unwrap();
        prop_assert_eq!(admissions, trace.tuples().len() as u64);
        let flow = mw.flow_monitor(src).unwrap();
        prop_assert_eq!(flow.throttled(), throttles);
        prop_assert_eq!(flow.shed_dropped(), 0, "the driver never dropped");
        prop_assert_eq!(fingerprint(&mw, src), want);
    }

    /// Columnar pushes with random batch sizes under the same random
    /// credit schedules: resumable partial admissions re-slice the
    /// stream but never change it, lose a row, or deadlock.
    #[test]
    fn columnar_credit_schedule_drains_to_the_unbounded_run(
        capacity in 1u64..10,
        batch_rows in 1usize..24,
        grants in proptest::collection::vec(1u64..6, 1..12),
    ) {
        let trace = trace(150);
        let want = unbounded(&trace);
        let (mut mw, src) = build(&trace, Some(capacity), true);
        let batches: Vec<Arc<TupleBatch>> =
            trace.batches(batch_rows).into_iter().map(Arc::new).collect();
        let mut at = 0usize;
        let mut admitted_rows = 0u64;
        for batch in &batches {
            let mut row = 0;
            let mut attempts = 0;
            while row < batch.rows() {
                attempts += 1;
                prop_assert!(attempts <= 10_000, "gate wedged: batch never drained");
                let (n, outcome) = mw.try_push_columnar(src, batch, row).unwrap();
                row += n;
                admitted_rows += n as u64;
                if outcome == PushOutcome::Throttled {
                    let g = grants[at % grants.len()];
                    at += 1;
                    mw.grant_credits(src, g).unwrap();
                }
            }
        }
        mw.finish(src).unwrap();
        prop_assert_eq!(admitted_rows, trace.tuples().len() as u64);
        prop_assert_eq!(fingerprint(&mw, src), want);
    }
}

/// Regression for the resumability contract: a `Throttled` mid-batch
/// admits exactly the credit prefix, and resuming at `start_row +
/// admitted` after a grant completes the batch with a run identical to
/// one unbounded push of the whole batch.
#[test]
fn throttled_mid_batch_resumes_at_the_exact_row() {
    let trace = trace(120);
    let batch = Arc::new(trace.batches(trace.tuples().len()).remove(0));
    assert!(batch.rows() > 50);

    let (mut bounded, src_b) = build(&trace, Some(50), false);
    let (admitted, outcome) = bounded.try_push_columnar(src_b, &batch, 0).unwrap();
    assert_eq!(admitted, 50, "the gate must admit exactly its credits");
    assert_eq!(outcome, PushOutcome::Throttled);
    // A starved retry admits nothing and stays at the same row.
    let (zero, outcome) = bounded.try_push_columnar(src_b, &batch, 50).unwrap();
    assert_eq!((zero, outcome), (0, PushOutcome::Throttled));
    // Grants saturate at the gate's capacity: a full refill admits the
    // next 50-row slice, and one more finishes the batch.
    let added = bounded.grant_credits(src_b, batch.rows() as u64).unwrap();
    assert_eq!(added, 50, "the gate must saturate at its capacity");
    let (next, outcome) = bounded.try_push_columnar(src_b, &batch, 50).unwrap();
    assert_eq!((next, outcome), (50, PushOutcome::Throttled));
    bounded.grant_credits(src_b, 50).unwrap();
    let (rest, outcome) = bounded.try_push_columnar(src_b, &batch, 100).unwrap();
    assert_eq!(rest, batch.rows() - 100, "resume must finish the suffix");
    assert_eq!(outcome, PushOutcome::Accepted);
    bounded.finish(src_b).unwrap();

    let (mut unbounded, src_u) = build(&trace, None, false);
    let (all, outcome) = unbounded.try_push_columnar(src_u, &batch, 0).unwrap();
    assert_eq!((all, outcome), (batch.rows(), PushOutcome::Accepted));
    unbounded.finish(src_u).unwrap();

    assert_eq!(
        fingerprint(&bounded, src_b),
        fingerprint(&unbounded, src_u),
        "the split admission changed the stream"
    );
}
