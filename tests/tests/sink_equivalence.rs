//! Pins the sink-based streaming path byte-for-byte against the legacy
//! `push → Vec<Emission>` wrappers, across every `Algorithm` ×
//! `OutputStrategy` combination, on a deterministic `gasf-sources` trace.
//!
//! The wrappers are implemented *via* the sink path (a `VecSink`), so this
//! is the equivalence proof for the whole redesign: if the scratch-buffer
//! release, the batching boundaries, or the metrics accounting ever
//! diverge between the two paths, one of these assertions trips.

use gasf_core::engine::{Algorithm, Emission, GroupEngine, OutputStrategy};
use gasf_core::quality::FilterSpec;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::{EmissionSink, NullSink, Tee, VecSink};
use gasf_sources::{NamosBuoy, Trace};
use proptest::prelude::*;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

fn trace() -> Trace {
    NamosBuoy::new().tuples(600).seed(42).generate()
}

fn specs(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        FilterSpec::delta("tmpr4", s * 2.0, s),
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        FilterSpec::delta("tmpr4", s * 2.5, s * 1.2),
    ]
}

fn engine(trace: &Trace, algorithm: Algorithm, strategy: OutputStrategy) -> GroupEngine {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .output_strategy(strategy)
        .filters(specs(trace))
        .build()
        .unwrap()
}

/// Deterministic subset of the metrics (everything but wall-clock CPU).
fn metric_fingerprint(e: &GroupEngine) -> (u64, u64, u64, u64, u64, Vec<u64>) {
    let m = e.metrics();
    (
        m.input_tuples,
        m.output_tuples,
        m.emissions,
        m.recipient_labels,
        m.disordered_emissions,
        m.latencies_us.clone(),
    )
}

#[test]
fn sink_path_equals_legacy_wrappers_for_every_combination() {
    let trace = trace();
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");

            // Legacy path: per-push Vec wrappers.
            let mut legacy = engine(&trace, algorithm, strategy);
            let mut legacy_out: Vec<Emission> = Vec::new();
            for t in trace.tuples() {
                legacy_out.extend(legacy.push(t.clone()).unwrap());
            }
            legacy_out.extend(legacy.finish().unwrap());

            // Sink path: per-push push_into + finish_into.
            let mut streamed = engine(&trace, algorithm, strategy);
            let mut sink = VecSink::new();
            for t in trace.tuples() {
                streamed.push_into(t.clone(), &mut sink).unwrap();
            }
            streamed.finish_into(&mut sink).unwrap();

            assert_eq!(sink.as_slice(), &legacy_out[..], "{label}: emissions");
            assert_eq!(
                metric_fingerprint(&streamed),
                metric_fingerprint(&legacy),
                "{label}: metrics"
            );

            // Batch path: one run_into call over the whole trace.
            let mut batched = engine(&trace, algorithm, strategy);
            let mut batch_sink = VecSink::new();
            batched
                .run_into(trace.tuples().iter().cloned(), &mut batch_sink)
                .unwrap();
            assert_eq!(
                batch_sink.as_slice(),
                &legacy_out[..],
                "{label}: run_into emissions"
            );
            assert_eq!(
                metric_fingerprint(&batched),
                metric_fingerprint(&legacy),
                "{label}: run_into metrics"
            );

            assert!(!legacy_out.is_empty(), "{label}: trace must emit");
        }
    }
}

/// The sharded engine's headline guarantee, exhaustively: a single route
/// at any parallelism is byte-for-byte the plain `GroupEngine`, for every
/// `Algorithm` × `OutputStrategy` combination.
#[test]
fn sharded_engine_equals_group_engine_for_every_combination() {
    let trace = trace();
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");

            let mut reference = engine(&trace, algorithm, strategy);
            let mut expected = VecSink::new();
            reference
                .run_into(trace.tuples().iter().cloned(), &mut expected)
                .unwrap();

            for n in [1usize, 2, 4] {
                let mut sharded = ShardedEngine::builder()
                    .parallelism(n)
                    .batch_size(23) // off the trace length, so batches straddle
                    .route(
                        "group",
                        GroupEngine::builder(trace.schema().clone())
                            .algorithm(algorithm)
                            .output_strategy(strategy)
                            .filters(specs(&trace)),
                    )
                    .build()
                    .unwrap();
                let mut out = VecSink::new();
                sharded
                    .run_into(trace.tuples().iter().cloned(), &mut out)
                    .unwrap();
                assert_eq!(out.as_slice(), expected.as_slice(), "{label}: n={n}");
                let merged = sharded.metrics();
                let m = reference.metrics();
                assert_eq!(merged.output_tuples, m.output_tuples, "{label}: n={n}");
                assert_eq!(merged.emissions, m.emissions, "{label}: n={n}");
                assert_eq!(merged.latencies_us, m.latencies_us, "{label}: n={n}");
                assert_eq!(
                    merged.disordered_emissions, m.disordered_emissions,
                    "{label}: n={n}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomised version of the pin: random filter parameters, trace
    /// seed, batch size and `Algorithm` × `OutputStrategy` draw — the
    /// sharded single-route output must equal `GroupEngine` byte for byte
    /// at every parallelism in {1, 2, 4}.
    #[test]
    fn sharded_output_is_deterministic_across_parallelism(
        seed in 0u64..1_000,
        delta_pct in 150u64..400,
        slack_pct in 20u64..50,
        batch in 1usize..40,
        algo_idx in 0usize..3,
        strat_idx in 0usize..3,
    ) {
        let algorithm = ALGORITHMS[algo_idx];
        let strategy = STRATEGIES[strat_idx];
        let trace = NamosBuoy::new().tuples(300).seed(seed).generate();
        let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
        let delta = s * delta_pct as f64 / 100.0;
        let specs = vec![
            FilterSpec::delta("tmpr4", delta, delta * slack_pct as f64 / 100.0),
            FilterSpec::delta("tmpr4", delta * 1.5, delta * 0.6),
        ];
        let group = || {
            GroupEngine::builder(trace.schema().clone())
                .algorithm(algorithm)
                .output_strategy(strategy)
                .filters(specs.clone())
        };

        let mut reference = group().build().unwrap();
        let mut expected = VecSink::new();
        reference
            .run_into(trace.tuples().iter().cloned(), &mut expected)
            .unwrap();

        for n in [1usize, 2, 4] {
            let mut sharded = ShardedEngine::builder()
                .parallelism(n)
                .batch_size(batch)
                .route("group", group())
                .build()
                .unwrap();
            let mut out = VecSink::new();
            sharded
                .run_into(trace.tuples().iter().cloned(), &mut out)
                .unwrap();
            prop_assert_eq!(out.as_slice(), expected.as_slice());
        }
    }

    /// Multi-route merges are equally deterministic: the `(step, route)`
    /// merge order never depends on shard count or batch size.
    #[test]
    fn multi_route_merge_is_invariant_to_parallelism(
        seed in 0u64..1_000,
        routes in 2usize..5,
        batch in 1usize..40,
    ) {
        let trace = NamosBuoy::new().tuples(250).seed(seed).generate();
        let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
        let build = |n: usize, batch: usize| {
            let mut builder = ShardedEngine::builder().parallelism(n).batch_size(batch);
            for r in 0..routes {
                let delta = s * (1.5 + r as f64 * 0.7);
                builder = builder.route(
                    format!("route-{r}"),
                    GroupEngine::builder(trace.schema().clone())
                        .filter(FilterSpec::delta("tmpr4", delta, delta * 0.4)),
                );
            }
            builder.build().unwrap()
        };
        let mut base_sink = VecSink::new();
        build(1, 64)
            .run_into(trace.tuples().iter().cloned(), &mut base_sink)
            .unwrap();
        for n in [2usize, 4] {
            let mut out = VecSink::new();
            build(n, batch)
                .run_into(trace.tuples().iter().cloned(), &mut out)
                .unwrap();
            prop_assert_eq!(out.as_slice(), base_sink.as_slice());
        }
    }
}

#[test]
fn tee_splits_identically_to_a_single_sink() {
    let trace = trace();
    for algorithm in ALGORITHMS {
        let mut single = engine(&trace, algorithm, OutputStrategy::Earliest);
        let mut single_sink = VecSink::new();
        single
            .run_into(trace.tuples().iter().cloned(), &mut single_sink)
            .unwrap();

        let mut teed = engine(&trace, algorithm, OutputStrategy::Earliest);
        let mut tee = Tee::new(VecSink::new(), Tee::new(VecSink::new(), NullSink));
        teed.run_into(trace.tuples().iter().cloned(), &mut tee)
            .unwrap();

        let (a, rest) = tee.into_inner();
        let (b, _) = rest.into_inner();
        assert_eq!(a.as_slice(), single_sink.as_slice());
        assert_eq!(b.as_slice(), single_sink.as_slice());
    }
}

#[test]
fn custom_sink_observes_the_same_stream_as_vec_sink() {
    #[derive(Default)]
    struct Audit {
        emissions: u64,
        labels: u64,
        last_emitted_at: u64,
        ordered: bool,
    }
    impl Audit {
        fn new() -> Self {
            Audit {
                ordered: true,
                ..Default::default()
            }
        }
    }
    impl EmissionSink for Audit {
        fn accept(&mut self, e: &Emission) {
            self.emissions += 1;
            self.labels += e.recipients.len() as u64;
            let at = e.emitted_at.as_micros();
            self.ordered &= at >= self.last_emitted_at;
            self.last_emitted_at = at;
        }
    }

    let trace = trace();
    let mut e = engine(&trace, Algorithm::RegionGreedy, OutputStrategy::Earliest);
    let mut audit = Audit::new();
    e.run_into(trace.tuples().iter().cloned(), &mut audit)
        .unwrap();
    assert_eq!(audit.emissions, e.metrics().emissions);
    assert_eq!(audit.labels, e.metrics().recipient_labels);
    assert!(audit.ordered, "release times must be monotone per stream");
}
