//! Pins the sink-based streaming path byte-for-byte against the legacy
//! `push → Vec<Emission>` wrappers, across every `Algorithm` ×
//! `OutputStrategy` combination, on a deterministic `gasf-sources` trace.
//!
//! The wrappers are implemented *via* the sink path (a `VecSink`), so this
//! is the equivalence proof for the whole redesign: if the scratch-buffer
//! release, the batching boundaries, or the metrics accounting ever
//! diverge between the two paths, one of these assertions trips.

use gasf_core::engine::{Algorithm, Emission, GroupEngine, OutputStrategy};
use gasf_core::quality::FilterSpec;
use gasf_core::sink::{EmissionSink, NullSink, Tee, VecSink};
use gasf_sources::{NamosBuoy, Trace};

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

fn trace() -> Trace {
    NamosBuoy::new().tuples(600).seed(42).generate()
}

fn specs(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        FilterSpec::delta("tmpr4", s * 2.0, s),
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        FilterSpec::delta("tmpr4", s * 2.5, s * 1.2),
    ]
}

fn engine(trace: &Trace, algorithm: Algorithm, strategy: OutputStrategy) -> GroupEngine {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .output_strategy(strategy)
        .filters(specs(trace))
        .build()
        .unwrap()
}

/// Deterministic subset of the metrics (everything but wall-clock CPU).
fn metric_fingerprint(e: &GroupEngine) -> (u64, u64, u64, u64, u64, Vec<u64>) {
    let m = e.metrics();
    (
        m.input_tuples,
        m.output_tuples,
        m.emissions,
        m.recipient_labels,
        m.disordered_emissions,
        m.latencies_us.clone(),
    )
}

#[test]
fn sink_path_equals_legacy_wrappers_for_every_combination() {
    let trace = trace();
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");

            // Legacy path: per-push Vec wrappers.
            let mut legacy = engine(&trace, algorithm, strategy);
            let mut legacy_out: Vec<Emission> = Vec::new();
            for t in trace.tuples() {
                legacy_out.extend(legacy.push(t.clone()).unwrap());
            }
            legacy_out.extend(legacy.finish().unwrap());

            // Sink path: per-push push_into + finish_into.
            let mut streamed = engine(&trace, algorithm, strategy);
            let mut sink = VecSink::new();
            for t in trace.tuples() {
                streamed.push_into(t.clone(), &mut sink).unwrap();
            }
            streamed.finish_into(&mut sink).unwrap();

            assert_eq!(sink.as_slice(), &legacy_out[..], "{label}: emissions");
            assert_eq!(
                metric_fingerprint(&streamed),
                metric_fingerprint(&legacy),
                "{label}: metrics"
            );

            // Batch path: one run_into call over the whole trace.
            let mut batched = engine(&trace, algorithm, strategy);
            let mut batch_sink = VecSink::new();
            batched
                .run_into(trace.tuples().iter().cloned(), &mut batch_sink)
                .unwrap();
            assert_eq!(
                batch_sink.as_slice(),
                &legacy_out[..],
                "{label}: run_into emissions"
            );
            assert_eq!(
                metric_fingerprint(&batched),
                metric_fingerprint(&legacy),
                "{label}: run_into metrics"
            );

            assert!(!legacy_out.is_empty(), "{label}: trace must emit");
        }
    }
}

#[test]
fn tee_splits_identically_to_a_single_sink() {
    let trace = trace();
    for algorithm in ALGORITHMS {
        let mut single = engine(&trace, algorithm, OutputStrategy::Earliest);
        let mut single_sink = VecSink::new();
        single
            .run_into(trace.tuples().iter().cloned(), &mut single_sink)
            .unwrap();

        let mut teed = engine(&trace, algorithm, OutputStrategy::Earliest);
        let mut tee = Tee::new(VecSink::new(), Tee::new(VecSink::new(), NullSink));
        teed.run_into(trace.tuples().iter().cloned(), &mut tee)
            .unwrap();

        let (a, rest) = tee.into_inner();
        let (b, _) = rest.into_inner();
        assert_eq!(a.as_slice(), single_sink.as_slice());
        assert_eq!(b.as_slice(), single_sink.as_slice());
    }
}

#[test]
fn custom_sink_observes_the_same_stream_as_vec_sink() {
    #[derive(Default)]
    struct Audit {
        emissions: u64,
        labels: u64,
        last_emitted_at: u64,
        ordered: bool,
    }
    impl Audit {
        fn new() -> Self {
            Audit {
                ordered: true,
                ..Default::default()
            }
        }
    }
    impl EmissionSink for Audit {
        fn accept(&mut self, e: &Emission) {
            self.emissions += 1;
            self.labels += e.recipients.len() as u64;
            let at = e.emitted_at.as_micros();
            self.ordered &= at >= self.last_emitted_at;
            self.last_emitted_at = at;
        }
    }

    let trace = trace();
    let mut e = engine(&trace, Algorithm::RegionGreedy, OutputStrategy::Earliest);
    let mut audit = Audit::new();
    e.run_into(trace.tuples().iter().cloned(), &mut audit)
        .unwrap();
    assert_eq!(audit.emissions, e.metrics().emissions);
    assert_eq!(audit.labels, e.metrics().recipient_labels);
    assert!(audit.ordered, "release times must be monotone per stream");
}
