//! Connector-seam roundtrips: every [`SourceConnector`] must reproduce
//! the in-memory [`run_trace`](Middleware::run_trace) run **byte for
//! byte** — same engine metrics (per-emission latencies included), same
//! wire bytes and message count, same per-app delivery statistics.
//! The seam may change how tuples *arrive*; it must never change what
//! the engines *see*:
//!
//! - file replay ([`TraceReplay`]), both from an in-memory trace and
//!   from a CSV file on disk;
//! - the localhost socket connector ([`SocketSource`]) fed by a
//!   [`SocketFeeder`], including a producer crash mid-stream and the
//!   reconnect that resumes it;
//! - a disordered arrival stream ([`ArrivalReplay`]) through the
//!   event-time front end;
//! - property: ragged connector chunking (any `chunk_sizes` pattern ×
//!   any ingest `max_rows`) and any crash/burst schedule are invisible.

use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_core::event_time::EventTimeConfig;
use gasf_core::quality::FilterSpec;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{GrantPolicy, IngestOptions, Middleware, MiddlewareConfig, SourceId};
use gasf_sources::{to_csv, ArrivalReplay, Disorder, NamosBuoy, Trace, TraceReplay};
use gasf_wire::socket::{SocketFeeder, SocketSource};
use proptest::prelude::*;

fn trace(tuples: usize) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(23).generate()
}

fn specs(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        FilterSpec::delta("tmpr4", s * 2.0, s * 0.7),
        FilterSpec::delta("tmpr4", s * 3.5, s * 1.2),
        FilterSpec::delta("tmpr2", s * 2.4, s * 0.9),
        FilterSpec::reservoir("fluoro", Micros::from_millis(80), 3),
    ]
}

fn build(trace: &Trace, event_time: Option<EventTimeConfig>) -> (Middleware, SourceId) {
    let mut mw = Middleware::with_config(
        Overlay::new(Topology::ring(7).build()),
        MiddlewareConfig {
            algorithm: Algorithm::RegionGreedy,
            strategy: OutputStrategy::Earliest,
            parallelism: 2,
            event_time,
            ..MiddlewareConfig::default()
        },
    );
    let src = mw
        .register_source("buoy", NodeId(0), trace.schema().clone())
        .unwrap();
    for (i, spec) in specs(trace).iter().enumerate() {
        let _ = mw
            .subscribe(
                format!("app{i}"),
                NodeId(1 + (i as u32 % 6)),
                src,
                spec.clone(),
            )
            .unwrap();
    }
    mw.deploy().unwrap();
    (mw, src)
}

#[derive(Debug, PartialEq)]
struct RunFingerprint {
    input_tuples: u64,
    output_tuples: u64,
    emissions: u64,
    recipient_labels: u64,
    latencies_us: Vec<u64>,
    network_bytes: u64,
    messages: u64,
    per_app: Vec<(String, bool, u64, u64)>,
}

fn fingerprint(mw: &Middleware, src: SourceId) -> RunFingerprint {
    let report = mw.report(src).unwrap();
    RunFingerprint {
        input_tuples: report.engine.input_tuples,
        output_tuples: report.engine.output_tuples,
        emissions: report.engine.emissions,
        recipient_labels: report.engine.recipient_labels,
        latencies_us: report.engine.latencies_us.clone(),
        network_bytes: report.network_bytes,
        messages: report.messages,
        per_app: report
            .per_app
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    a.active,
                    a.tuples,
                    a.mean_e2e_latency.as_micros(),
                )
            })
            .collect(),
    }
}

/// The in-memory reference: the same deployment driven by `run_trace`.
fn reference(trace: &Trace, arrivals: impl IntoIterator<Item = Tuple>) -> RunFingerprint {
    let (mut mw, src) = build(trace, None);
    mw.run_trace(src, arrivals).unwrap();
    fingerprint(&mw, src)
}

fn options(max_rows: usize) -> IngestOptions {
    IngestOptions {
        max_rows,
        grant: GrantPolicy::Refill,
        finish: true,
    }
}

#[test]
fn file_replay_reproduces_the_trace_run() {
    let trace = trace(300);
    let want = reference(&trace, trace.tuples().iter().cloned());
    let (mut mw, src) = build(&trace, None);
    let mut replay = TraceReplay::new(trace.clone()).chunk_sizes([13, 1, 7]);
    let report = mw.ingest(src, &mut replay, options(16)).unwrap();
    assert_eq!(report.rows, trace.tuples().len() as u64);
    assert_eq!(report.accepted, report.rows, "ungated ingest accepts all");
    assert_eq!(report.throttled, 0);
    assert_eq!(report.dropped, 0);
    assert_eq!(fingerprint(&mw, src), want, "file replay diverged");
}

#[test]
fn csv_file_replay_reproduces_the_trace_run() {
    let trace = trace(240);
    let want = reference(&trace, trace.tuples().iter().cloned());
    let path = std::env::temp_dir().join(format!(
        "gasf-connector-roundtrip-{}.csv",
        std::process::id()
    ));
    std::fs::write(&path, to_csv(&trace)).unwrap();
    let mut replay = TraceReplay::from_csv_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let (mut mw, src) = build(&trace, None);
    let report = mw.ingest(src, &mut replay, options(32)).unwrap();
    assert_eq!(report.accepted, trace.tuples().len() as u64);
    assert_eq!(
        fingerprint(&mw, src),
        want,
        "the CSV encode/decode roundtrip leaked into the run"
    );
}

#[test]
fn socket_connector_reproduces_the_trace_run() {
    let trace = trace(260);
    let want = reference(&trace, trace.tuples().iter().cloned());
    let mut source = SocketSource::bind(trace.schema().clone()).unwrap();
    let addr = source.local_addr().unwrap();
    let rows = trace.tuples().to_vec();
    let feeder = std::thread::spawn(move || {
        let mut f = SocketFeeder::connect(addr).unwrap();
        for burst in rows.chunks(17) {
            f.send(burst).unwrap();
        }
        f.finish().unwrap();
    });
    let (mut mw, src) = build(&trace, None);
    let report = mw.ingest(src, &mut source, options(11)).unwrap();
    feeder.join().unwrap();
    assert_eq!(report.accepted, trace.tuples().len() as u64);
    assert_eq!(source.reconnects(), 0, "a clean stream never reconnects");
    assert_eq!(fingerprint(&mw, src), want, "socket framing diverged");
}

#[test]
fn socket_producer_crash_and_reconnect_reassembles_the_stream() {
    let trace = trace(200);
    let want = reference(&trace, trace.tuples().iter().cloned());
    let mut source = SocketSource::bind(trace.schema().clone()).unwrap();
    let addr = source.local_addr().unwrap();
    let rows = trace.tuples().to_vec();
    let feeder = std::thread::spawn(move || {
        // Producer one ships 80 rows in bursts and crashes (drop
        // without Finish); its replacement resumes at the exact row.
        let mut f1 = SocketFeeder::connect(addr).unwrap();
        for burst in rows[..80].chunks(19) {
            f1.send(burst).unwrap();
        }
        drop(f1);
        let mut f2 = SocketFeeder::connect(addr).unwrap();
        for burst in rows[80..].chunks(23) {
            f2.send(burst).unwrap();
        }
        f2.finish().unwrap();
    });
    let (mut mw, src) = build(&trace, None);
    let report = mw.ingest(src, &mut source, options(9)).unwrap();
    feeder.join().unwrap();
    assert_eq!(report.accepted, trace.tuples().len() as u64);
    assert_eq!(source.reconnects(), 1, "the crash must be counted");
    assert_eq!(
        fingerprint(&mw, src),
        want,
        "reconnect lost or reordered rows"
    );
}

#[test]
fn disordered_arrivals_through_the_connector_match_the_event_time_run() {
    let trace = trace(280);
    let bound = Micros::from_millis(150);
    let arrivals = Disorder::bounded(bound).seed(7).apply(&trace);
    // Reference: the same disordered stream through run_trace on an
    // identically-configured event-time deployment.
    let (mut ref_mw, ref_src) = build(&trace, Some(EventTimeConfig::bounded(bound)));
    ref_mw.run_trace(ref_src, arrivals.iter().cloned()).unwrap();
    let want = fingerprint(&ref_mw, ref_src);

    let (mut mw, src) = build(&trace, Some(EventTimeConfig::bounded(bound)));
    let mut replay = ArrivalReplay::new(trace.schema().clone(), arrivals).chunk_sizes([5, 1, 9]);
    let report = mw.ingest(src, &mut replay, options(8)).unwrap();
    assert_eq!(report.accepted, trace.tuples().len() as u64);
    assert_eq!(
        fingerprint(&mw, src),
        want,
        "the connector seam must be invisible to the event-time front end"
    );
    // And the front end did its job: the disordered connector run equals
    // the ordered in-order trace run byte for byte.
    assert_eq!(
        fingerprint(&mw, src),
        reference(&trace, trace.tuples().iter().cloned()),
        "bounded disorder within the reorder bound must be fully hidden"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any ragged chunk-size pattern composed with any ingest `max_rows`
    /// re-slices the stream but never changes the run.
    #[test]
    fn ragged_chunking_never_changes_the_run(
        pattern in proptest::collection::vec(1usize..24, 1..6),
        max_rows in 1usize..32,
    ) {
        let trace = trace(160);
        let want = reference(&trace, trace.tuples().iter().cloned());
        let (mut mw, src) = build(&trace, None);
        let mut replay = TraceReplay::new(trace.clone()).chunk_sizes(pattern);
        let report = mw.ingest(src, &mut replay, options(max_rows)).unwrap();
        prop_assert_eq!(report.accepted, trace.tuples().len() as u64);
        prop_assert_eq!(fingerprint(&mw, src), want);
    }

    /// Any crash point and any burst sizes: the reconnecting producer
    /// pair reassembles the identical run.
    #[test]
    fn any_crash_schedule_reassembles_byte_for_byte(
        split in 1usize..139,
        burst1 in 1usize..40,
        burst2 in 1usize..40,
        max_rows in 1usize..24,
    ) {
        let trace = trace(140);
        let want = reference(&trace, trace.tuples().iter().cloned());
        let mut source = SocketSource::bind(trace.schema().clone()).unwrap();
        let addr = source.local_addr().unwrap();
        let rows = trace.tuples().to_vec();
        let feeder = std::thread::spawn(move || {
            let mut f1 = SocketFeeder::connect(addr).unwrap();
            for burst in rows[..split].chunks(burst1) {
                f1.send(burst).unwrap();
            }
            drop(f1);
            let mut f2 = SocketFeeder::connect(addr).unwrap();
            for burst in rows[split..].chunks(burst2) {
                f2.send(burst).unwrap();
            }
            f2.finish().unwrap();
        });
        let (mut mw, src) = build(&trace, None);
        let report = mw.ingest(src, &mut source, options(max_rows)).unwrap();
        feeder.join().unwrap();
        prop_assert_eq!(report.accepted, trace.tuples().len() as u64);
        prop_assert_eq!(source.reconnects(), 1);
        prop_assert_eq!(fingerprint(&mw, src), want);
    }
}
