//! Pins the **recovery determinism contract**: crash-at-step-K + restore
//! from the last safe-point checkpoint + replay of the suffix is
//! **byte-identical** to the fault-free run with the same checkpoint
//! schedule — for the inline `GroupEngine` (snapshot/restore), for the
//! `ShardedEngine` at every parallelism (both the transparent worker
//! respawn after `kill_shard` and the full `EngineSnapshot` restore), and
//! for the middleware (`checkpoint`/`recover` continuing per-app reports
//! under stable handles).
//!
//! Covered exhaustively for every `Algorithm` × `OutputStrategy` and for
//! parallelism ∈ {1, 2, 4}, plus property-based random crash schedules
//! and a snapshot → restore state round-trip oracle. The overlay half of
//! the fault model is pinned too: a run with a failed interior tree node
//! still delivers to every live member (Scribe re-graft).

use gasf_core::candidate::FilterId;
use gasf_core::engine::{Algorithm, Emission, GroupEngine, GroupEngineBuilder, OutputStrategy};
use gasf_core::metrics::EngineMetrics;
use gasf_core::quality::FilterSpec;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::VecSink;
use gasf_core::snapshot::GroupSnapshot;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, MiddlewareConfig, RunReport};
use gasf_sources::{NamosBuoy, Trace};
use proptest::prelude::*;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

fn trace(tuples: usize, seed: u64) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(seed).generate()
}

fn base_specs(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        FilterSpec::delta("tmpr4", s * 2.0, s),
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        FilterSpec::delta("tmpr4", s * 2.5, s * 1.2),
    ]
}

fn builder(trace: &Trace, algorithm: Algorithm, strategy: OutputStrategy) -> GroupEngineBuilder {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .output_strategy(strategy)
}

/// Deterministic subset of the metrics (everything but wall-clock CPU).
fn fingerprint(m: &EngineMetrics) -> (u64, u64, u64, u64, u64, Vec<u64>) {
    (
        m.input_tuples,
        m.output_tuples,
        m.emissions,
        m.recipient_labels,
        m.disordered_emissions,
        m.latencies_us.clone(),
    )
}

/// Fault-free inline reference with a checkpoint at `ckpt`: returns the
/// pre-boundary emissions (including the boundary drain), the snapshot,
/// and the post-boundary emissions.
fn reference_inline(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    ckpt: usize,
) -> (Vec<Emission>, GroupSnapshot, Vec<Emission>, GroupEngine) {
    let mut engine = builder(trace, algorithm, strategy)
        .filters(base_specs(trace))
        .build()
        .unwrap();
    let mut pre = VecSink::new();
    for t in &trace.tuples()[..ckpt] {
        engine.push_into(t.clone(), &mut pre).unwrap();
    }
    let snap = engine.snapshot_into(&mut pre).unwrap();
    let mut post = VecSink::new();
    for t in &trace.tuples()[ckpt..] {
        engine.push_into(t.clone(), &mut post).unwrap();
    }
    engine.finish_into(&mut post).unwrap();
    (pre.into_vec(), snap, post.into_vec(), engine)
}

#[test]
fn inline_crash_restore_replay_equals_fault_free_for_every_combination() {
    let trace = trace(600, 42);
    const CKPT: usize = 211;
    const CRASH: usize = 387;
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");
            let (pre, snap, post, live) = reference_inline(&trace, algorithm, strategy, CKPT);
            assert!(!pre.is_empty(), "{label}: boundary must drain something");

            // Crash at step CRASH: the outputs delivered between the
            // checkpoint and the crash are recomputed by the replay —
            // byte-identically, so downstream consumers can dedup by
            // (tuple id, recipients) or simply re-consume the suffix.
            let mut crashed = GroupEngine::restore(&snap).unwrap();
            let mut lost = VecSink::new();
            for t in &trace.tuples()[CKPT..CRASH] {
                crashed.push_into(t.clone(), &mut lost).unwrap();
            }
            drop(crashed); // the crash: in-memory state is gone

            let mut restored = GroupEngine::restore(&snap).unwrap();
            // the restored engine refuses anything but the exact suffix
            assert!(restored
                .push_into(trace.tuples()[0].clone(), &mut VecSink::new())
                .is_err());
            let mut replayed = VecSink::new();
            for t in &trace.tuples()[CKPT..] {
                restored.push_into(t.clone(), &mut replayed).unwrap();
            }
            restored.finish_into(&mut replayed).unwrap();
            assert_eq!(replayed.into_vec(), post, "{label}: suffix bytes");

            // metrics history continues identically (modulo wall clock)
            assert_eq!(restored.epoch(), live.epoch(), "{label}");
            assert_eq!(
                restored.epoch_metrics().len(),
                live.epoch_metrics().len(),
                "{label}"
            );
            for (a, b) in restored.epoch_metrics().iter().zip(live.epoch_metrics()) {
                assert_eq!(fingerprint(a), fingerprint(b), "{label}: epoch archive");
            }
            assert_eq!(
                fingerprint(&restored.lifetime_metrics()),
                fingerprint(&live.lifetime_metrics()),
                "{label}: lifetime fold"
            );
        }
    }
}

/// One sharded run with a checkpoint at `ckpt`; optionally kills every
/// worker shard at step `kill_at`. Returns the emission bytes, respawn
/// count and final metrics.
fn sharded_run(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    parallelism: usize,
    batch: usize,
    ckpt: usize,
    kill_at: Option<usize>,
) -> (Vec<Emission>, u32, EngineMetrics) {
    let mut engine = ShardedEngine::builder()
        .parallelism(parallelism)
        .batch_size(batch)
        .route(
            "group",
            builder(trace, algorithm, strategy).filters(base_specs(trace)),
        )
        .build()
        .unwrap();
    let mut out = VecSink::new();
    for (i, t) in trace.tuples().iter().enumerate() {
        if i == ckpt {
            engine.checkpoint(&mut out).unwrap();
        }
        if kill_at == Some(i) {
            for shard in 0..engine.shards() {
                engine.kill_shard(shard).unwrap();
            }
        }
        engine.push_into(t.clone(), &mut out).unwrap();
    }
    engine.finish_into(&mut out).unwrap();
    let metrics = engine.metrics();
    (out.into_vec(), engine.respawns(), metrics)
}

#[test]
fn killed_shards_respawn_byte_identically_for_every_combination() {
    let trace = trace(600, 42);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");
            for n in [1usize, 2, 4] {
                let (expected, zero, m_ref) =
                    sharded_run(&trace, algorithm, strategy, n, 23, 200, None);
                assert_eq!(zero, 0, "{label}: fault-free run respawns nothing");
                let (killed, respawns, m_killed) =
                    sharded_run(&trace, algorithm, strategy, n, 23, 200, Some(377));
                assert!(respawns >= 1, "{label} n={n}: the kill must be detected");
                assert_eq!(killed, expected, "{label} n={n}: emission stream");
                assert_eq!(fingerprint(&m_killed), fingerprint(&m_ref), "{label} n={n}");
            }
        }
    }
}

#[test]
fn sharded_restore_replays_the_suffix_byte_identically() {
    let trace = trace(600, 42);
    const CKPT: usize = 250;
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");
            for n in [1usize, 2, 4] {
                // fault-free reference with the same checkpoint schedule
                let mut engine = ShardedEngine::builder()
                    .parallelism(n)
                    .batch_size(17)
                    .route(
                        "group",
                        builder(&trace, algorithm, strategy).filters(base_specs(&trace)),
                    )
                    .build()
                    .unwrap();
                let mut pre = VecSink::new();
                for t in &trace.tuples()[..CKPT] {
                    engine.push_into(t.clone(), &mut pre).unwrap();
                }
                let snap = engine.checkpoint(&mut pre).unwrap();
                assert_eq!(snap.input_tuples(), CKPT as u64);
                let mut post = VecSink::new();
                for t in &trace.tuples()[CKPT..] {
                    engine.push_into(t.clone(), &mut post).unwrap();
                }
                engine.finish_into(&mut post).unwrap();
                let expected = post.into_vec();

                // crash the whole engine after the checkpoint; restore and
                // replay the suffix from the (caller-side) log
                let mut restored = ShardedEngine::restore(&snap).unwrap();
                let mut replayed = VecSink::new();
                for t in &trace.tuples()[CKPT..] {
                    restored.push_into(t.clone(), &mut replayed).unwrap();
                }
                restored.finish_into(&mut replayed).unwrap();
                assert_eq!(replayed.into_vec(), expected, "{label} n={n}");
                assert_eq!(
                    restored.metrics().input_tuples,
                    engine.metrics().input_tuples,
                    "{label} n={n}: lifetime metrics continue"
                );
            }
        }
    }
}

#[test]
fn failed_interior_overlay_node_still_delivers_to_every_live_member() {
    // The acceptance pin: under a live middleware deployment, fail the
    // interior forwarder nodes of the multicast tree — every live member
    // keeps receiving, via re-grafted branches.
    let overlay = Overlay::new(Topology::ring(9).build());
    let mut mw = Middleware::new(overlay);
    let tr = trace(300, 7);
    let src = mw
        .register_source("buoy", NodeId(0), tr.schema().clone())
        .unwrap();
    let s = tr.stats("tmpr4").unwrap().mean_abs_delta;
    for (name, node) in [("a1", 2u32), ("a2", 4), ("a3", 6), ("a4", 8)] {
        let _ = mw
            .subscribe(
                name,
                NodeId(node),
                src,
                FilterSpec::delta("tmpr4", s * 2.0, s),
            )
            .unwrap();
    }
    mw.deploy().unwrap();
    mw.push_batch(src, tr.tuples()[..150].to_vec()).unwrap();
    let mid_deliveries: Vec<u64> = mw
        .report(src)
        .unwrap()
        .per_app
        .iter()
        .map(|a| a.tuples)
        .collect();
    // fail every pure forwarder (odd nodes host no source/subscriber)
    let mut regrafts = 0usize;
    for forwarder in [1u32, 3, 5, 7] {
        let report = mw.fail_node(NodeId(forwarder)).unwrap();
        regrafts += report.regrafts + report.reroots;
    }
    assert!(
        regrafts > 0,
        "at least one forwarder was on a delivery path"
    );
    mw.push_batch(src, tr.tuples()[150..].to_vec()).unwrap();
    mw.finish(src).unwrap();
    let report = mw.report(src).unwrap();
    for (app, before) in report.per_app.iter().zip(mid_deliveries) {
        assert!(
            app.tuples > before,
            "{} stopped receiving after the failures ({} vs {before})",
            app.name,
            app.tuples
        );
    }
}

#[test]
fn middleware_crash_recover_matches_fault_free_reports() {
    let tr = trace(400, 11);
    let s = tr.stats("tmpr4").unwrap().mean_abs_delta;
    let setup = |parallelism: usize| {
        let overlay = Overlay::new(Topology::ring(7).build());
        let mut mw = Middleware::with_config(
            overlay,
            MiddlewareConfig {
                parallelism,
                ..Default::default()
            },
        );
        let src = mw
            .register_source("buoy", NodeId(0), tr.schema().clone())
            .unwrap();
        for (name, node) in [("a1", 2u32), ("a2", 4), ("a3", 6)] {
            let _ = mw
                .subscribe(
                    name,
                    NodeId(node),
                    src,
                    FilterSpec::delta("tmpr4", s * 2.0, s),
                )
                .unwrap();
        }
        mw.deploy().unwrap();
        (mw, src)
    };
    let report_fp = |r: &RunReport| {
        (
            r.engine.input_tuples,
            r.engine.output_tuples,
            r.engine.emissions,
            r.per_app.clone(),
        )
    };
    for parallelism in [1usize, 2] {
        let expected = {
            let (mut mw, src) = setup(parallelism);
            mw.push_batch(src, tr.tuples()[..200].to_vec()).unwrap();
            let _snap = mw.checkpoint().unwrap();
            mw.push_batch(src, tr.tuples()[200..].to_vec()).unwrap();
            mw.finish(src).unwrap();
            mw.report(src).unwrap()
        };
        let recovered = {
            let (mut mw, src) = setup(parallelism);
            mw.push_batch(src, tr.tuples()[..200].to_vec()).unwrap();
            let snap = mw.checkpoint().unwrap();
            mw.push_batch(src, tr.tuples()[200..240].to_vec()).unwrap();
            drop(mw); // the crash
            let mut mw =
                Middleware::recover(Overlay::new(Topology::ring(7).build()), &snap).unwrap();
            mw.push_batch(src, tr.tuples()[200..].to_vec()).unwrap();
            mw.finish(src).unwrap();
            mw.report(src).unwrap()
        };
        assert_eq!(
            report_fp(&recovered),
            report_fp(&expected),
            "parallelism={parallelism}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random crash schedules: random checkpoint position, random kill
    /// step, random `Algorithm` × `OutputStrategy` × parallelism draw —
    /// the killed-and-respawned run must equal the fault-free run with
    /// the same checkpoint schedule, byte for byte.
    #[test]
    fn random_crash_schedules_recover_byte_identically(
        seed in 0u64..400,
        algo_idx in 0usize..3,
        strat_idx in 0usize..3,
        n_idx in 0usize..3,
        batch in 1usize..40,
        ckpt in 40usize..160,
        gap in 1usize..140,
    ) {
        let algorithm = ALGORITHMS[algo_idx];
        let strategy = STRATEGIES[strat_idx];
        let parallelism = [1usize, 2, 4][n_idx];
        let tr = trace(320, seed);
        let kill_at = ckpt + gap;
        let (expected, zero, _) =
            sharded_run(&tr, algorithm, strategy, parallelism, batch, ckpt, None);
        prop_assert_eq!(zero, 0);
        let (killed, respawns, _) =
            sharded_run(&tr, algorithm, strategy, parallelism, batch, ckpt, Some(kill_at));
        prop_assert!(respawns >= 1);
        prop_assert_eq!(killed, expected);
    }

    /// The satellite oracle: `snapshot()` → `restore()` at a random safe
    /// point round-trips the roster (vacancy holes included), the epoch
    /// archive and the metrics exactly — checked field-wise against the
    /// live engine after the same no-op churn (the boundary crossing both
    /// engines share), then byte-wise over the remaining suffix.
    #[test]
    fn snapshot_restore_round_trips_at_random_safe_points(
        seed in 0u64..400,
        algo_idx in 0usize..3,
        strat_idx in 0usize..3,
        cut in 20usize..260,
        hole in 0usize..3,
    ) {
        let algorithm = ALGORITHMS[algo_idx];
        let strategy = STRATEGIES[strat_idx];
        let tr = trace(320, seed);
        let mut live = builder(&tr, algorithm, strategy)
            .filters(base_specs(&tr))
            .build()
            .unwrap();
        let mut sink = VecSink::new();
        for t in &tr.tuples()[..cut] {
            live.push_into(t.clone(), &mut sink).unwrap();
        }
        // punch a vacancy hole into the roster at the same boundary
        live.remove_filter(FilterId::from_index(hole)).unwrap();
        let (snap, _boundary) = live.snapshot().unwrap();

        let restored = GroupEngine::restore(&snap).unwrap();
        // state round-trip: roster (with the hole), epoch archive, metrics
        prop_assert_eq!(restored.roster(), live.roster());
        prop_assert_eq!(restored.group_size(), 2);
        prop_assert_eq!(restored.epoch(), live.epoch());
        prop_assert_eq!(restored.time_constraint(), live.time_constraint());
        prop_assert_eq!(restored.epoch_metrics().len(), live.epoch_metrics().len());
        for (a, b) in restored.epoch_metrics().iter().zip(live.epoch_metrics()) {
            prop_assert_eq!(fingerprint(a), fingerprint(b));
        }
        prop_assert_eq!(
            fingerprint(&restored.lifetime_metrics()),
            fingerprint(&live.lifetime_metrics())
        );
        // the snapshot's own accessors agree with the engine
        prop_assert_eq!(snap.roster(), live.roster());
        prop_assert_eq!(snap.epoch(), live.epoch());
        prop_assert_eq!(snap.group_size(), 2);

        // and the continuation is byte-identical
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        let mut live = live;
        let mut restored = restored;
        for t in &tr.tuples()[cut..] {
            live.push_into(t.clone(), &mut a).unwrap();
            restored.push_into(t.clone(), &mut b).unwrap();
        }
        live.finish_into(&mut a).unwrap();
        restored.finish_into(&mut b).unwrap();
        prop_assert_eq!(a.into_vec(), b.into_vec());
    }
}
