//! Property tests for the greedy hitting-set solvers.

use gasf_core::candidate::{CandidateTuple, CloseCause, ClosedSet, FilterId};
use gasf_core::hitting_set::{brute_force_minimum, greedy_hitting_set};
use gasf_core::quality::Prescription;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleId;
use proptest::prelude::*;

fn mk_set(filter: usize, seqs: Vec<u64>, degree: usize, p: Prescription) -> ClosedSet {
    ClosedSet {
        filter: FilterId::from_index(filter),
        set_index: 0,
        candidates: seqs
            .iter()
            .map(|&s| CandidateTuple {
                id: TupleId::from_seq(s),
                timestamp: Micros::from_millis(s * 10),
                key: (s % 7) as f64,
            })
            .collect(),
        pick_degree: degree,
        prescription: p,
        si_choice: vec![],
        cause: CloseCause::Natural,
    }
}

/// 1..6 sets over a universe of 1..12 tuples, each set with 1..5 members.
fn instance_strategy() -> impl Strategy<Value = Vec<ClosedSet>> {
    proptest::collection::vec(proptest::collection::btree_set(0u64..12, 1..5), 1..6).prop_map(
        |sets| {
            sets.into_iter()
                .enumerate()
                .map(|(i, s)| mk_set(i, s.into_iter().collect(), 1, Prescription::Any))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn greedy_covers_every_set(sets in instance_strategy()) {
        let choices = greedy_hitting_set(&sets);
        for (si, set) in sets.iter().enumerate() {
            let covered = choices
                .iter()
                .any(|c| c.covers.contains(&si) && set.contains(c.id));
            prop_assert!(covered, "set {si} not covered");
        }
    }

    #[test]
    fn greedy_choices_are_distinct_and_useful(sets in instance_strategy()) {
        let choices = greedy_hitting_set(&sets);
        let mut seen = std::collections::HashSet::new();
        for c in &choices {
            prop_assert!(seen.insert(c.id), "tuple {} chosen twice", c.id);
            prop_assert!(!c.covers.is_empty(), "useless choice {}", c.id);
        }
    }

    #[test]
    fn greedy_within_harmonic_bound_of_optimum(sets in instance_strategy()) {
        let greedy = greedy_hitting_set(&sets).len() as f64;
        if let Some(best) = brute_force_minimum(&sets, 12) {
            let max_set = sets.iter().map(|s| s.len()).max().unwrap_or(1);
            let h: f64 = (1..=max_set).map(|k| 1.0 / k as f64).sum();
            prop_assert!(
                greedy <= best.len() as f64 * h + 1e-9,
                "greedy {} vs optimum {} (H = {h:.2})",
                greedy,
                best.len()
            );
        }
    }

    #[test]
    fn multi_degree_sets_get_required_count(
        seqs in proptest::collection::btree_set(0u64..20, 4..10),
        degree in 1usize..4,
    ) {
        let set = mk_set(0, seqs.into_iter().collect(), degree, Prescription::Any);
        let want = degree.min(set.len());
        let choices = greedy_hitting_set(std::slice::from_ref(&set));
        let covering = choices.iter().filter(|c| c.covers.contains(&0)).count();
        prop_assert_eq!(covering, want);
    }

    #[test]
    fn ranked_sets_never_reuse_a_rank(
        seqs in proptest::collection::btree_set(0u64..20, 3..10),
        degree in 1usize..4,
    ) {
        let set = mk_set(0, seqs.into_iter().collect(), degree, Prescription::Top);
        let ranks = set.eligible_ranks();
        let choices = greedy_hitting_set(std::slice::from_ref(&set));
        // each chosen tuple maps to a distinct rank
        let mut used = std::collections::HashSet::new();
        for c in &choices {
            let rank = ranks.iter().position(|r| r.contains(&c.id));
            prop_assert!(rank.is_some(), "chosen {} not eligible", c.id);
            prop_assert!(used.insert(rank.unwrap()), "rank reused");
        }
        prop_assert_eq!(choices.len(), degree.min(ranks.len()));
    }
}
