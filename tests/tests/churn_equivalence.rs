//! Pins the control plane's determinism contract: a run with dynamic
//! subscribe/unsubscribe/update events applied at epoch boundaries is
//! **byte-identical** to the equivalent sequence of static rebuilds — stop
//! the stream at each boundary (`finish_into`), rebuild an engine with the
//! post-churn roster (ids pinned via `GroupEngineBuilder::filter_at` so
//! vacancies survive), and continue on the remaining tuples.
//!
//! Covered exhaustively for every `Algorithm` × `OutputStrategy` and for
//! parallelism ∈ {1, 2, 4} (the sharded engine ships control ops
//! interleaved with the data batches), plus a property-based sweep over
//! random churn schedules. Per-epoch metrics are pinned against the
//! per-segment static engines, and a removed filter's stats must survive
//! in the epoch archive.

use gasf_core::candidate::FilterId;
use gasf_core::engine::{Algorithm, Emission, GroupEngine, GroupEngineBuilder, OutputStrategy};
use gasf_core::metrics::EngineMetrics;
use gasf_core::quality::FilterSpec;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::VecSink;
use gasf_sources::{NamosBuoy, Trace};
use proptest::prelude::*;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

/// One roster change, scheduled before the tuple at index `at`.
#[derive(Debug, Clone)]
enum ChurnOp {
    Add(FilterSpec),
    Remove(FilterId),
    Update(FilterId, FilterSpec),
}

#[derive(Debug, Clone)]
struct ChurnEvent {
    /// Stream index the op lands before (the epoch boundary).
    at: usize,
    op: ChurnOp,
}

fn trace(tuples: usize, seed: u64) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(seed).generate()
}

fn base_specs(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        FilterSpec::delta("tmpr4", s * 2.0, s),
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        FilterSpec::delta("tmpr4", s * 2.5, s * 1.2),
    ]
}

fn builder(trace: &Trace, algorithm: Algorithm, strategy: OutputStrategy) -> GroupEngineBuilder {
    GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .output_strategy(strategy)
}

/// Applies the events to a roster mirror, returning the post-event roster.
fn apply_to_roster(roster: &mut Vec<(FilterId, FilterSpec)>, next_id: &mut usize, op: &ChurnOp) {
    match op {
        ChurnOp::Add(spec) => {
            roster.push((FilterId::from_index(*next_id), spec.clone()));
            *next_id += 1;
        }
        ChurnOp::Remove(id) => roster.retain(|(i, _)| i != id),
        ChurnOp::Update(id, spec) => {
            for (i, s) in roster.iter_mut() {
                if i == id {
                    *s = spec.clone();
                }
            }
        }
    }
}

/// Runs the dynamic engine: push the stream, queuing each event's op just
/// before the tuple it is scheduled at. Returns emissions + the engine.
fn run_dynamic(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    events: &[ChurnEvent],
) -> (Vec<Emission>, GroupEngine) {
    let mut engine = builder(trace, algorithm, strategy)
        .filters(base_specs(trace))
        .build()
        .unwrap();
    let mut sink = VecSink::new();
    for (i, t) in trace.tuples().iter().enumerate() {
        for ev in events.iter().filter(|e| e.at == i) {
            match &ev.op {
                ChurnOp::Add(spec) => {
                    engine.add_filter(spec.clone()).unwrap();
                }
                ChurnOp::Remove(id) => engine.remove_filter(*id).unwrap(),
                ChurnOp::Update(id, spec) => engine.update_filter(*id, spec.clone()).unwrap(),
            }
        }
        engine.push_into(t.clone(), &mut sink).unwrap();
    }
    engine.finish_into(&mut sink).unwrap();
    (sink.into_vec(), engine)
}

/// Runs the equivalent static composite: one freshly built engine per
/// epoch segment (roster ids pinned), each fed its segment and finished.
/// Returns the concatenated emissions and each segment engine.
fn run_static_segments(
    trace: &Trace,
    algorithm: Algorithm,
    strategy: OutputStrategy,
    events: &[ChurnEvent],
) -> (Vec<Emission>, Vec<GroupEngine>) {
    let mut boundaries: Vec<usize> = events.iter().map(|e| e.at).collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    let mut segments = Vec::new(); // (start, end, roster)
    let mut roster: Vec<(FilterId, FilterSpec)> = base_specs(trace)
        .into_iter()
        .enumerate()
        .map(|(i, s)| (FilterId::from_index(i), s))
        .collect();
    let mut next_id = roster.len();
    let mut start = 0usize;
    for &b in &boundaries {
        if b > start {
            segments.push((start, b, roster.clone()));
            start = b;
        }
        for ev in events.iter().filter(|e| e.at == b) {
            apply_to_roster(&mut roster, &mut next_id, &ev.op);
        }
    }
    segments.push((start, trace.tuples().len(), roster));

    let mut sink = VecSink::new();
    let mut engines = Vec::new();
    for (lo, hi, roster) in segments {
        let mut b = builder(trace, algorithm, strategy);
        for (id, spec) in roster {
            b = b.filter_at(id, spec);
        }
        let mut engine = b.build().unwrap();
        for t in &trace.tuples()[lo..hi] {
            engine.push_into(t.clone(), &mut sink).unwrap();
        }
        engine.finish_into(&mut sink).unwrap();
        engines.push(engine);
    }
    (sink.into_vec(), engines)
}

/// Deterministic subset of the metrics (everything but wall-clock CPU).
fn fingerprint(m: &EngineMetrics) -> (u64, u64, u64, u64, u64, Vec<u64>) {
    (
        m.input_tuples,
        m.output_tuples,
        m.emissions,
        m.recipient_labels,
        m.disordered_emissions,
        m.latencies_us.clone(),
    )
}

/// The fixed churn schedule of the exhaustive pin: a join, then a
/// remove + retune at a later boundary.
fn standard_events(trace: &Trace) -> Vec<ChurnEvent> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        ChurnEvent {
            at: 200,
            op: ChurnOp::Add(FilterSpec::delta("tmpr4", s * 1.8, s * 0.8)),
        },
        ChurnEvent {
            at: 400,
            op: ChurnOp::Remove(FilterId::from_index(1)),
        },
        ChurnEvent {
            at: 400,
            op: ChurnOp::Update(
                FilterId::from_index(2),
                FilterSpec::delta("tmpr4", s * 4.0, s * 1.9),
            ),
        },
    ]
}

#[test]
fn dynamic_churn_equals_static_rebuilds_for_every_combination() {
    let trace = trace(600, 42);
    let events = standard_events(&trace);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");
            let (dynamic, engine) = run_dynamic(&trace, algorithm, strategy, &events);
            let (statics, segment_engines) =
                run_static_segments(&trace, algorithm, strategy, &events);
            assert_eq!(dynamic, statics, "{label}: emission stream");
            assert!(!dynamic.is_empty(), "{label}: churn trace must emit");

            // Per-epoch metrics match the per-segment engines exactly.
            assert_eq!(engine.epoch(), 2, "{label}");
            assert_eq!(engine.epoch_metrics().len(), 2, "{label}");
            assert_eq!(segment_engines.len(), 3, "{label}");
            for (k, seg) in segment_engines.iter().enumerate() {
                let epoch = if k < 2 {
                    &engine.epoch_metrics()[k]
                } else {
                    engine.metrics()
                };
                assert_eq!(
                    fingerprint(epoch),
                    fingerprint(seg.metrics()),
                    "{label}: epoch {k}"
                );
            }

            // The removed filter's stats survive in the archive, and the
            // lifetime fold accounts the whole stream.
            let lifetime = engine.lifetime_metrics();
            assert!(
                lifetime.per_filter[1].sets_closed > 0,
                "{label}: removed filter's history must survive"
            );
            assert_eq!(lifetime.input_tuples, 600, "{label}");
        }
    }
}

#[test]
fn sharded_churn_matches_inline_for_every_combination() {
    // The same schedule driven through the sharded control path (control
    // messages interleaved with the data channel) must reproduce the
    // inline dynamic run byte for byte at every parallelism.
    let trace = trace(600, 42);
    let events = standard_events(&trace);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            let label = format!("{algorithm:?}/{strategy:?}");
            let (expected, _) = run_dynamic(&trace, algorithm, strategy, &events);
            for n in [1usize, 2, 4] {
                let mut sharded = ShardedEngine::builder()
                    .parallelism(n)
                    .batch_size(23) // off the boundary indices, so control ops split batches
                    .route(
                        "group",
                        builder(&trace, algorithm, strategy).filters(base_specs(&trace)),
                    )
                    .build()
                    .unwrap();
                let mut out = VecSink::new();
                for (i, t) in trace.tuples().iter().enumerate() {
                    for ev in events.iter().filter(|e| e.at == i) {
                        match &ev.op {
                            ChurnOp::Add(spec) => {
                                sharded.add_filter(0, spec.clone()).unwrap();
                            }
                            ChurnOp::Remove(id) => sharded.remove_filter(0, *id).unwrap(),
                            ChurnOp::Update(id, spec) => {
                                sharded.update_filter(0, *id, spec.clone()).unwrap()
                            }
                        }
                    }
                    sharded.push_into(t.clone(), &mut out).unwrap();
                }
                sharded.finish_into(&mut out).unwrap();
                assert_eq!(out.as_slice(), &expected[..], "{label}: n={n}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomised churn schedules: random boundaries, random op kinds
    /// (add/remove/update over a tracked roster mirror), random
    /// `Algorithm` × `OutputStrategy` draw — dynamic must equal the
    /// static composite, and the sharded path must equal dynamic at
    /// parallelism 2.
    #[test]
    fn random_churn_schedules_stay_deterministic(
        seed in 0u64..500,
        algo_idx in 0usize..3,
        strat_idx in 0usize..3,
        b1 in 40usize..150,
        b2 in 160usize..280,
        kind1 in 0u8..3,
        kind2 in 0u8..3,
        batch in 1usize..40,
    ) {
        let algorithm = ALGORITHMS[algo_idx];
        let strategy = STRATEGIES[strat_idx];
        let trace = trace(320, seed);
        let s = trace.stats("tmpr4").unwrap().mean_abs_delta;

        // Build a valid schedule against a roster mirror.
        let mut roster: Vec<(FilterId, FilterSpec)> = base_specs(&trace)
            .into_iter()
            .enumerate()
            .map(|(i, sp)| (FilterId::from_index(i), sp))
            .collect();
        let mut next_id = roster.len();
        let mut events = Vec::new();
        for (at, kind) in [(b1, kind1), (b2, kind2)] {
            let op = match kind {
                0 => ChurnOp::Add(FilterSpec::delta("tmpr4", s * 1.7, s * 0.7)),
                1 if roster.len() > 1 => ChurnOp::Remove(roster[roster.len() / 2].0),
                _ => {
                    let target = roster[0].0;
                    ChurnOp::Update(target, FilterSpec::delta("tmpr4", s * 3.5, s * 1.6))
                }
            };
            apply_to_roster(&mut roster, &mut next_id, &op);
            events.push(ChurnEvent { at, op });
        }

        let (dynamic, _) = run_dynamic(&trace, algorithm, strategy, &events);
        let (statics, _) = run_static_segments(&trace, algorithm, strategy, &events);
        prop_assert_eq!(&dynamic, &statics);

        let mut sharded = ShardedEngine::builder()
            .parallelism(2)
            .batch_size(batch)
            .route(
                "group",
                builder(&trace, algorithm, strategy).filters(base_specs(&trace)),
            )
            .build()
            .unwrap();
        let mut out = VecSink::new();
        for (i, t) in trace.tuples().iter().enumerate() {
            for ev in events.iter().filter(|e| e.at == i) {
                match &ev.op {
                    ChurnOp::Add(spec) => {
                        sharded.add_filter(0, spec.clone()).unwrap();
                    }
                    ChurnOp::Remove(id) => sharded.remove_filter(0, *id).unwrap(),
                    ChurnOp::Update(id, spec) => {
                        sharded.update_filter(0, *id, spec.clone()).unwrap()
                    }
                }
            }
            sharded.push_into(t.clone(), &mut out).unwrap();
        }
        sharded.finish_into(&mut out).unwrap();
        prop_assert_eq!(out.as_slice(), &dynamic[..]);
    }
}
