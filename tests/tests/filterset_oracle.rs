//! Equivalence suite for the interned-id/bitset hitting-set data path.
//!
//! The production solver (`gasf_core::hitting_set::greedy_hitting_set`)
//! runs on dense `TupleId` indices with packed-bitset rank/coverage
//! tracking. This suite pins it against a deliberately naive *oracle*
//! implementation of the same greedy heuristic built on `HashSet`s and
//! `HashMap`s over raw sequence numbers — the representation the data path
//! used before the refactor. On random candidate-set families the two must
//! select covers of equal cardinality (with identical tie-break rules they
//! in fact pick the same tuples), and both must satisfy every set's
//! demand.

use gasf_core::candidate::{CandidateTuple, CloseCause, ClosedSet, FilterId};
use gasf_core::hitting_set::greedy_hitting_set;
use gasf_core::quality::Prescription;
use gasf_core::time::Micros;
use gasf_core::tuple::TupleId;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn mk_set(filter: usize, seqs: Vec<u64>, degree: usize) -> ClosedSet {
    ClosedSet {
        filter: FilterId::from_index(filter),
        set_index: 0,
        candidates: seqs
            .iter()
            .map(|&s| CandidateTuple {
                id: TupleId::from_seq(s),
                timestamp: Micros::from_millis(s * 10),
                key: s as f64,
            })
            .collect(),
        pick_degree: degree,
        prescription: Prescription::Any,
        si_choice: vec![],
        cause: CloseCause::Natural,
    }
}

/// Reference greedy hitting set over `HashSet`s of raw sequence numbers,
/// mirroring the paper's Fig. 2.7 rules exactly: pick the tuple useful to
/// the most unsatisfied sets, tie-break on freshest timestamp (== highest
/// seq for these fixtures), satisfy each set `min(degree, |set|)` times
/// with distinct tuples.
fn oracle_greedy(sets: &[ClosedSet]) -> Vec<u64> {
    let mut members: Vec<HashSet<u64>> = sets
        .iter()
        .map(|s| s.candidates.iter().map(|c| c.id.seq()).collect())
        .collect();
    let mut needed: Vec<usize> = sets.iter().map(|s| s.pick_degree.min(s.len())).collect();
    let mut pool: HashSet<u64> = members.iter().flatten().copied().collect();
    let mut chosen = Vec::new();
    while needed.iter().any(|&n| n > 0) {
        let mut best: Option<(usize, u64)> = None;
        for &seq in &pool {
            let usefulness = members
                .iter()
                .zip(&needed)
                .filter(|(m, &n)| n > 0 && m.contains(&seq))
                .count();
            if usefulness == 0 {
                continue;
            }
            let key = (usefulness, seq);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        let Some((_, seq)) = best else {
            unreachable!("demand is always satisfiable for unranked sets");
        };
        pool.remove(&seq);
        for (m, n) in members.iter_mut().zip(needed.iter_mut()) {
            if *n > 0 && m.remove(&seq) {
                *n -= 1;
            }
        }
        chosen.push(seq);
    }
    chosen
}

/// 1..7 degree-1 sets over a universe of 0..14, each with 1..6 members.
fn family() -> impl Strategy<Value = Vec<ClosedSet>> {
    proptest::collection::vec(proptest::collection::btree_set(0u64..14, 1..6), 1..7).prop_map(
        |sets| {
            sets.into_iter()
                .enumerate()
                .map(|(i, s)| mk_set(i, s.into_iter().collect(), 1))
                .collect()
        },
    )
}

/// Families that also exercise multi-degree sets (sampler-shaped demand).
fn multi_degree_family() -> impl Strategy<Value = Vec<ClosedSet>> {
    proptest::collection::vec(
        (proptest::collection::btree_set(0u64..14, 2..7), 1usize..4),
        1..6,
    )
    .prop_map(|sets| {
        sets.into_iter()
            .enumerate()
            .map(|(i, (s, d))| mk_set(i, s.into_iter().collect(), d))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitset_cover_matches_hashset_oracle_cardinality(sets in family()) {
        let bitset_cover = greedy_hitting_set(&sets);
        let oracle_cover = oracle_greedy(&sets);
        prop_assert_eq!(
            bitset_cover.len(),
            oracle_cover.len(),
            "bitset path chose {} tuples, oracle {}",
            bitset_cover.len(),
            oracle_cover.len()
        );
        // With identical tie-break rules the two greedy runs agree on the
        // actual tuples, not just the count.
        let mut got: Vec<u64> = bitset_cover.iter().map(|c| c.id.seq()).collect();
        let mut want = oracle_cover;
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn multi_degree_cover_matches_oracle_cardinality(sets in multi_degree_family()) {
        let bitset_cover = greedy_hitting_set(&sets);
        let oracle_cover = oracle_greedy(&sets);
        prop_assert_eq!(bitset_cover.len(), oracle_cover.len());
    }

    #[test]
    fn both_paths_satisfy_every_demand(sets in multi_degree_family()) {
        let choices = greedy_hitting_set(&sets);
        // Production path: per-set coverage count equals the clamped degree.
        let mut covered: HashMap<usize, usize> = HashMap::new();
        for c in &choices {
            for &si in &c.covers {
                prop_assert!(sets[si].contains(c.id), "cover by non-member tuple");
                *covered.entry(si).or_default() += 1;
            }
        }
        for (si, set) in sets.iter().enumerate() {
            let want = set.pick_degree.min(set.len());
            prop_assert_eq!(
                covered.get(&si).copied().unwrap_or(0), want,
                "set {} under/over-covered", si
            );
        }
        // Oracle path: every set sees `min(degree, |set|)` of its members.
        let oracle: HashSet<u64> = oracle_greedy(&sets).into_iter().collect();
        for (si, set) in sets.iter().enumerate() {
            let hit = set
                .candidates
                .iter()
                .filter(|c| oracle.contains(&c.id.seq()))
                .count();
            prop_assert!(
                hit >= set.pick_degree.min(set.len()),
                "oracle under-covered set {}",
                si
            );
        }
    }
}
