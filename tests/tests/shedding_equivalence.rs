//! Pins the quality-aware shedding contract (§4.8):
//!
//! 1. **Pressure-free neutrality** — a middleware deployed with the
//!    credit gate and the [`Shedder`](gasf_solar::Shedder) attached but
//!    never pressured is **byte-identical** to one deployed without
//!    them, across every `Algorithm` × `OutputStrategy` and parallelism
//!    ∈ {1, 2, 4}: same engine metrics (including per-emission
//!    latencies), same wire bytes and message count, same per-app
//!    delivery statistics — and every flow counter still zero.
//! 2. **Slack obedience under pressure** — a starvation schedule climbs
//!    the ladder to its cap; the specs the engines actually ran are
//!    oracle-checked against each subscription's declaration
//!    (unchanged delta, monotone slack under the declared ceiling and
//!    the Axiom-1 cap, `None` forever for no-headroom subscriptions),
//!    and every no-headroom subscription's delivered-set count equals
//!    the unpressured baseline exactly — degradation may never leak
//!    outside declared headroom.
//! 3. **Counter reconciliation** — throttle/degrade/restore/drop
//!    counters in [`FlowMonitor`](gasf_solar::FlowMonitor) reconcile
//!    exactly with what the driving loop observed at the call sites,
//!    and [`IngestReport`](gasf_solar::IngestReport) agrees with the
//!    monitor for connector-driven ingest.

use std::sync::Arc;

use gasf_core::batch::TupleBatch;
use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_core::quality::{FilterKind, FilterSpec};
use gasf_core::shed::{PushOutcome, ShedHeadroom};
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{GrantPolicy, IngestOptions, Middleware, MiddlewareConfig, ShedConfig, SourceId};
use gasf_sources::{NamosBuoy, Trace, TraceReplay};

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

fn trace(tuples: usize) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(11).generate()
}

/// Half the roster declares headroom (different ladders and ceilings),
/// half is a control population the shedder must never touch.
fn roster(trace: &Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    vec![
        FilterSpec::delta("tmpr4", s * 2.0, s * 0.6).with_shed_headroom(ShedHeadroom::rungs(2)),
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        FilterSpec::delta("tmpr4", s * 2.5, s * 0.5)
            .with_shed_headroom(ShedHeadroom::rungs(3).with_max_slack(s * 1.0)),
        FilterSpec::delta("tmpr2", s * 2.2, s * 0.9),
        FilterSpec::reservoir("fluoro", Micros::from_millis(70), 4)
            .with_shed_headroom(ShedHeadroom::rungs(2).with_floor_fraction(0.5)),
        FilterSpec::reservoir("fluoro", Micros::from_millis(90), 3),
    ]
}

fn build(
    trace: &Trace,
    specs: &[FilterSpec],
    algorithm: Algorithm,
    strategy: OutputStrategy,
    parallelism: usize,
    ingress: Option<u64>,
    shedding: Option<ShedConfig>,
) -> (Middleware, SourceId) {
    let mut mw = Middleware::with_config(
        Overlay::new(Topology::ring(9).build()),
        MiddlewareConfig {
            algorithm,
            strategy,
            parallelism,
            ingress_capacity: ingress,
            shedding,
            ..MiddlewareConfig::default()
        },
    );
    let src = mw
        .register_source("buoy", NodeId(0), trace.schema().clone())
        .unwrap();
    for (i, spec) in specs.iter().enumerate() {
        let _ = mw
            .subscribe(
                format!("app{i}"),
                NodeId(1 + (i as u32 % 8)),
                src,
                spec.clone(),
            )
            .unwrap();
    }
    mw.deploy().unwrap();
    (mw, src)
}

/// Every deterministic observable of one middleware run.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    input_tuples: u64,
    output_tuples: u64,
    emissions: u64,
    recipient_labels: u64,
    latencies_us: Vec<u64>,
    network_bytes: u64,
    messages: u64,
    per_app: Vec<(String, bool, u64, u64)>,
}

fn fingerprint(mw: &Middleware, src: SourceId) -> RunFingerprint {
    let report = mw.report(src).unwrap();
    RunFingerprint {
        input_tuples: report.engine.input_tuples,
        output_tuples: report.engine.output_tuples,
        emissions: report.engine.emissions,
        recipient_labels: report.engine.recipient_labels,
        latencies_us: report.engine.latencies_us.clone(),
        network_bytes: report.network_bytes,
        messages: report.messages,
        per_app: report
            .per_app
            .iter()
            .map(|a| {
                (
                    a.name.clone(),
                    a.active,
                    a.tuples,
                    a.mean_e2e_latency.as_micros(),
                )
            })
            .collect(),
    }
}

/// Drives every tuple through `try_push`, asserting nothing throttles.
fn drive_calm(mw: &mut Middleware, src: SourceId, tuples: &[Tuple]) {
    for t in tuples {
        let outcome = mw.try_push(src, t).unwrap();
        assert!(outcome.is_accepted(), "calm run must never throttle");
    }
    mw.finish(src).unwrap();
}

#[test]
fn pressure_free_shedder_on_matches_off_for_every_combination() {
    let trace = trace(400);
    let specs = roster(&trace);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            for parallelism in [1usize, 2, 4] {
                // Capacity covers the whole stream: the gate exists but
                // never bites, so the shedder sees only full admissions.
                let (mut with, src_a) = build(
                    &trace,
                    &specs,
                    algorithm,
                    strategy,
                    parallelism,
                    Some(trace.tuples().len() as u64),
                    Some(ShedConfig::default()),
                );
                let (mut without, src_b) =
                    build(&trace, &specs, algorithm, strategy, parallelism, None, None);
                drive_calm(&mut with, src_a, trace.tuples());
                drive_calm(&mut without, src_b, trace.tuples());
                assert_eq!(
                    fingerprint(&with, src_a),
                    fingerprint(&without, src_b),
                    "shedder-on diverged pressure-free at {algorithm:?}/{strategy:?}/x{parallelism}"
                );
                let flow = with.flow_monitor(src_a).unwrap();
                assert_eq!(flow.throttled(), 0);
                assert_eq!(flow.degrade_ops(), 0);
                assert_eq!(flow.restore_ops(), 0);
                assert_eq!(flow.shed_dropped(), 0);
                assert_eq!(with.shed_rung(src_a).unwrap(), 0);
            }
        }
    }
}

/// Starves the gate during the middle third: each pressured batch is
/// fed back one credit at a time, so the final retry is the only full
/// admission — a pure throttle streak the shedder must react to.
/// Returns the rungs the source occupied and the call-site throttle
/// count. No tuple is ever dropped: the driver keeps granting until
/// every row of every batch is admitted.
fn drive_pressured(
    mw: &mut Middleware,
    src: SourceId,
    batches: &[Arc<TupleBatch>],
    capacity: u64,
) -> (Vec<u8>, u64) {
    let mut rungs = vec![0u8];
    let mut throttles = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        // First third calm, middle third starved, final third calm.
        let calm = i < batches.len() / 3 || i >= 2 * batches.len() / 3;
        if calm {
            mw.grant_credits(src, capacity).unwrap();
        }
        let mut row = 0;
        while row < batch.rows() {
            let (n, outcome) = mw.try_push_columnar(src, batch, row).unwrap();
            row += n;
            let rung = mw.shed_rung(src).unwrap();
            if *rungs.last().unwrap() != rung {
                rungs.push(rung);
            }
            if outcome == PushOutcome::Throttled {
                throttles += 1;
                mw.grant_credits(src, 1).unwrap();
            }
        }
    }
    mw.finish(src).unwrap();
    (rungs, throttles)
}

#[test]
fn pressure_degrades_only_inside_declared_headroom() {
    let trace = trace(360);
    let specs = roster(&trace);
    // recover 3: the calm tail (a third of the batches, one full
    // admission each) must walk the ladder all the way back to 0.
    let shed = ShedConfig {
        trigger: 4,
        recover: 3,
        max_rung: 3,
    };
    let (mut pressured, src_p) = build(
        &trace,
        &specs,
        Algorithm::RegionGreedy,
        OutputStrategy::Earliest,
        2,
        Some(8),
        Some(shed),
    );
    let (mut baseline, src_b) = build(
        &trace,
        &specs,
        Algorithm::RegionGreedy,
        OutputStrategy::Earliest,
        2,
        None,
        None,
    );
    let batches: Vec<Arc<TupleBatch>> = trace.batches(8).into_iter().map(Arc::new).collect();
    let (rungs, throttles) = drive_pressured(&mut pressured, src_p, &batches, 8);
    drive_calm(&mut baseline, src_b, trace.tuples());

    let top = *rungs.iter().max().unwrap();
    assert!(throttles > 0, "the starvation schedule never throttled");
    assert!(top > 0, "pressure never climbed the ladder");
    assert!(top <= shed.max_rung, "rung {top} above the configured cap");
    assert_eq!(
        pressured.shed_rung(src_p).unwrap(),
        0,
        "the calm tail must restore rung 0"
    );

    // Oracle 1: every spec the engines actually ran stays inside the
    // subscription's declaration, rung by occupied rung.
    for spec in &specs {
        let mut prev_slack: Option<f64> = None;
        for r in 0..=top {
            match (spec.shed_headroom(), spec.degraded(r)) {
                (None, got) => {
                    if r == 0 {
                        assert_eq!(got.as_ref(), Some(spec), "rung 0 must be the spec itself");
                    } else {
                        assert_eq!(got, None, "no-headroom spec degraded at rung {r}");
                    }
                }
                (Some(headroom), got) => {
                    let got = got.expect("headroom spec has every rung");
                    got.validate().unwrap();
                    if let (
                        FilterKind::Delta {
                            delta, slack: s0, ..
                        },
                        FilterKind::Delta {
                            delta: delta_r,
                            slack: s_r,
                            ..
                        },
                    ) = (&spec.kind, &got.kind)
                    {
                        assert_eq!(delta, delta_r, "degradation must not move delta");
                        let cap = delta / 2.0;
                        let ceiling = headroom.max_slack.unwrap_or(cap).min(cap);
                        assert!(
                            *s_r <= ceiling.max(*s0) + 1e-12,
                            "rung {r} slack {s_r} above declared ceiling {ceiling}"
                        );
                        if let Some(prev) = prev_slack {
                            assert!(*s_r >= prev, "slack must widen monotonically");
                        }
                        prev_slack = Some(*s_r);
                    }
                }
            }
        }
    }

    // Oracle 2: backpressure itself loses nothing — the driver retried
    // every throttled row, so the engines saw the full input stream and
    // every subscription kept receiving data while degraded.
    let pressured_report = pressured.report(src_p).unwrap();
    let baseline_report = baseline.report(src_b).unwrap();
    assert_eq!(
        pressured_report.engine.input_tuples, baseline_report.engine.input_tuples,
        "backpressure must not lose tuples"
    );
    for got in &pressured_report.per_app {
        assert!(got.tuples > 0, "{} starved under pressure", got.name);
    }
}

/// Degradation must never leak outside declared headroom: with a roster
/// in which **no** subscription declares any, the same starvation
/// schedule — shedder climbing and descending the whole time — retunes
/// nothing, and the run stays byte-identical to an unpressured,
/// ungated one. (Exact per-app equality can't be asserted for the
/// *mixed* roster above: delta filters reference the last delivered
/// value, so a neighbour's degradation legitimately shifts shared
/// representative choices.)
#[test]
fn pressure_without_headroom_changes_nothing() {
    let trace = trace(360);
    let specs: Vec<FilterSpec> = roster(&trace)
        .into_iter()
        .filter(|s| s.shed_headroom().is_none())
        .collect();
    assert!(specs.len() >= 2, "roster lost its control population");
    let shed = ShedConfig {
        trigger: 4,
        recover: 3,
        max_rung: 3,
    };
    let (mut pressured, src_p) = build(
        &trace,
        &specs,
        Algorithm::PerCandidateSet,
        OutputStrategy::Earliest,
        2,
        Some(8),
        Some(shed),
    );
    let (mut baseline, src_b) = build(
        &trace,
        &specs,
        Algorithm::PerCandidateSet,
        OutputStrategy::Earliest,
        2,
        None,
        None,
    );
    let batches: Vec<Arc<TupleBatch>> = trace.batches(8).into_iter().map(Arc::new).collect();
    let (rungs, throttles) = drive_pressured(&mut pressured, src_p, &batches, 8);
    drive_calm(&mut baseline, src_b, trace.tuples());
    assert!(throttles > 0, "the starvation schedule never throttled");
    assert!(
        *rungs.iter().max().unwrap() > 0,
        "the shedder never climbed — the schedule is not exercising it"
    );
    assert_eq!(
        fingerprint(&pressured, src_p),
        fingerprint(&baseline, src_b),
        "a no-headroom roster must be untouched by pressure"
    );
    let flow = pressured.flow_monitor(src_p).unwrap();
    assert_eq!(flow.throttled(), throttles);
    assert_eq!(
        flow.degrade_ops(),
        0,
        "nothing declared headroom to degrade"
    );
    assert_eq!(flow.restore_ops(), 0);
    assert_eq!(flow.shed_dropped(), 0);
}

#[test]
fn flow_counters_reconcile_with_call_site_observations() {
    let trace = trace(240);
    let specs = roster(&trace);
    let shed = ShedConfig {
        trigger: 4,
        recover: 3,
        max_rung: 2,
    };
    let (mut mw, src) = build(
        &trace,
        &specs,
        Algorithm::RegionGreedy,
        OutputStrategy::Earliest,
        1,
        Some(8),
        Some(shed),
    );

    // Count eligible retunes per ladder move exactly as the middleware
    // defines them: active, headroom-declaring, and with actual room
    // between the two rungs.
    let eligible = |from: u8, to: u8| -> u64 {
        specs
            .iter()
            .filter(|spec| spec.shed_headroom().is_some())
            .filter(|spec| spec.degraded(to) != spec.degraded(from))
            .count() as u64
    };

    let batches: Vec<Arc<TupleBatch>> = trace.batches(8).into_iter().map(Arc::new).collect();
    let mut throttles = 0u64;
    let mut expect_degrades = 0u64;
    let mut expect_restores = 0u64;
    let mut rung = 0u8;
    for (i, batch) in batches.iter().enumerate() {
        let calm = i < batches.len() / 3 || i >= 2 * batches.len() / 3;
        if calm {
            mw.grant_credits(src, 8).unwrap();
        }
        let mut row = 0;
        while row < batch.rows() {
            let (n, outcome) = mw.try_push_columnar(src, batch, row).unwrap();
            row += n;
            let now = mw.shed_rung(src).unwrap();
            if now > rung {
                expect_degrades += eligible(rung, now);
            } else if now < rung {
                expect_restores += eligible(rung, now);
            }
            rung = now;
            if outcome == PushOutcome::Throttled {
                throttles += 1;
                mw.grant_credits(src, 1).unwrap();
            }
        }
    }
    mw.finish(src).unwrap();

    let flow = mw.flow_monitor(src).unwrap();
    assert!(throttles > 0 && expect_degrades > 0, "schedule never bit");
    assert_eq!(flow.throttled(), throttles, "throttle counter drifted");
    assert_eq!(
        flow.degrade_ops(),
        expect_degrades,
        "degrade counter drifted"
    );
    assert_eq!(
        flow.restore_ops(),
        expect_restores,
        "restore counter drifted"
    );
    assert_eq!(
        flow.shed_dropped(),
        0,
        "nothing was dropped at the call site"
    );
}

#[test]
fn ingest_report_reconciles_with_flow_monitor() {
    let trace = trace(300);
    let specs = roster(&trace);
    let (mut mw, src) = build(
        &trace,
        &specs,
        Algorithm::RegionGreedy,
        OutputStrategy::Earliest,
        1,
        Some(4),
        Some(ShedConfig::default()),
    );
    let mut replay = TraceReplay::new(trace.clone()).chunk_sizes([16, 3, 9]);
    let report = mw
        .ingest(
            src,
            &mut replay,
            IngestOptions {
                max_rows: 16,
                grant: GrantPolicy::Refill,
                finish: true,
            },
        )
        .unwrap();
    let flow = mw.flow_monitor(src).unwrap();
    assert_eq!(report.rows, trace.tuples().len() as u64);
    assert_eq!(
        report.accepted + report.dropped,
        report.rows,
        "ingest must account every row"
    );
    // A 4-credit gate against 16-row chunks exhausts the default ladder:
    // the last-resort drops must be counted, never silent.
    assert!(report.dropped > 0, "exhausted ladder must record its drops");
    assert_eq!(
        report.dropped,
        flow.shed_dropped(),
        "driver and monitor disagree on drops"
    );
    assert!(report.throttled > 0, "a 4-credit gate must throttle");
    assert_eq!(
        report.throttled,
        flow.throttled(),
        "driver and monitor disagree on throttles"
    );
    let run = mw.report(src).unwrap();
    assert_eq!(run.engine.input_tuples, report.accepted);
}
