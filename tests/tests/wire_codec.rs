//! Round-trip oracle for the `gasf-wire` codec: encode → decode is the
//! identity on `Emission`, `Delivery` and every control frame, including
//! the edge cases a length-prefixed binary format gets wrong first —
//! empty `FilterSet`s, empty value rows, non-finite floats (NaN, ±∞,
//! -0.0 must survive bit-for-bit via `to_bits`), high filter indices
//! (trailing-zero block trimming), and near-max frame sizes.

use gasf_core::bitset::FilterSet;
use gasf_core::candidate::FilterId;
use gasf_core::engine::Emission;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use gasf_net::{Delivery, GroupId, NodeId};
use gasf_wire::codec::{Reader, WireDecode, WireEncode};
use gasf_wire::frame::read_frame;
use gasf_wire::{Frame, NodeDigest, SubscriberReport, WireError, DEFAULT_MAX_FRAME};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn emission(seq: u64, ts: u64, values: Vec<f64>, recipients: &[usize]) -> Emission {
    Emission {
        tuple: Arc::new(Tuple::from_wire(seq, Micros(ts), values)),
        recipients: recipients
            .iter()
            .map(|&i| FilterId::from_index(i))
            .collect(),
        emitted_at: Micros(ts),
    }
}

fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: &T) -> T {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    let mut r = Reader::new(&buf);
    let back = T::decode(&mut r).expect("decodes");
    r.finish().expect("no trailing bytes");
    back
}

fn frame_round_trip(frame: &Frame) -> Frame {
    let mut wire = Vec::new();
    frame.encode_into(&mut wire);
    let mut cursor = &wire[..];
    let back = read_frame(&mut cursor, DEFAULT_MAX_FRAME)
        .expect("reads")
        .expect("not EOF");
    assert!(cursor.is_empty(), "frame consumed exactly");
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary emissions survive the codec exactly — values compared
    /// through `to_bits` equality by `Tuple`'s `PartialEq`.
    #[test]
    fn emission_round_trips(
        seq in 0u64..u64::MAX,
        ts in 0u64..u64::MAX,
        values in proptest::collection::vec(-1.0e12f64..1.0e12, 0..24),
        recipients in proptest::collection::vec(0usize..4096, 0..48),
    ) {
        let e = emission(seq, ts, values, &recipients);
        prop_assert_eq!(round_trip(&e), e);
    }

    /// Deliveries (the accounting half of the protocol) round trip.
    #[test]
    fn delivery_round_trips(
        nodes in proptest::collection::vec(0u32..10_000, 0..16),
        lat in 0u64..1_000_000,
        bytes in 0u64..u64::MAX,
        hops in 0usize..1000,
        repair in 0u64..u64::MAX,
    ) {
        let latencies: BTreeMap<NodeId, Micros> = nodes
            .iter()
            .map(|&n| (NodeId(n), Micros(lat + n as u64)))
            .collect();
        let d = Delivery { latencies, bytes_on_wire: bytes, overlay_hops: hops, repair_bytes: repair };
        prop_assert_eq!(round_trip(&d), d);
    }

    /// Every frame variant survives the framed stream path
    /// (`encode_into` → `read_frame`), not just body decode.
    #[test]
    fn frames_round_trip(
        process in 0u32..64,
        group in 0u64..u64::MAX,
        src in 0u32..1024,
        nodes in proptest::collection::vec(0u32..1024, 0..8),
        seq in 0u64..1_000_000,
        count in 0u64..1_000_000,
        hash in 0u64..u64::MAX,
    ) {
        let frames = [
            Frame::Hello { process, deployment: format!("d{group}") },
            Frame::Emission {
                group: GroupId::from_raw(group),
                src: NodeId(src),
                nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
                emission: emission(seq, seq * 3, vec![seq as f64], &[0, 9]),
            },
            Frame::Finish,
            Frame::StatusRequest,
            Frame::StatusReport(SubscriberReport {
                process,
                frames: count,
                emissions: count / 2,
                bytes: hash,
                done: count % 2 == 0,
                per_node: nodes
                    .iter()
                    .map(|&n| NodeDigest { node: NodeId(n), count, hash })
                    .collect(),
            }),
            Frame::Shutdown,
        ];
        for f in frames {
            prop_assert_eq!(frame_round_trip(&f), f);
        }
    }

    /// FilterSets round trip through the raw-block encoding whatever the
    /// bit pattern, with trailing-zero trimming canonical on both sides.
    #[test]
    fn filterset_round_trips(indices in proptest::collection::vec(0usize..8192, 0..64)) {
        let set: FilterSet = indices.iter().map(|&i| FilterId::from_index(i)).collect();
        prop_assert_eq!(round_trip(&set), set);
    }
}

/// An emission whose recipient set is empty — the engine never sends
/// one, but the codec must not conflate "no blocks" with corruption.
#[test]
fn empty_filterset_and_empty_values_round_trip() {
    let set = FilterSet::default();
    assert_eq!(round_trip(&set), set);

    let e = emission(0, 0, vec![], &[]);
    assert_eq!(round_trip(&e), e);
    let f = Frame::Emission {
        group: GroupId::from_raw(0),
        src: NodeId(0),
        nodes: vec![],
        emission: e,
    };
    assert_eq!(frame_round_trip(&f), f);
}

/// Non-finite and signed-zero floats must survive bit-for-bit; a codec
/// that routes f64 through text or comparisons loses all of these.
#[test]
fn non_finite_floats_round_trip_bit_for_bit() {
    let values = vec![
        f64::NAN,
        -f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        0.0,
    ];
    let bits: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
    let e = emission(7, 11, values, &[3]);
    let back = round_trip(&e);
    let back_bits: Vec<u64> = back.tuple.values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(back_bits, bits);
}

/// A frame just under the size cap round trips; one byte over the cap is
/// rejected *before* the body allocation.
#[test]
fn max_size_frames_round_trip_and_oversize_is_rejected() {
    // ~1.2 MiB emission: 150k values + a sparse high-index recipient set.
    let values: Vec<f64> = (0..150_000).map(|i| i as f64 * 0.5).collect();
    let recipients: Vec<usize> = (0..10_000).step_by(7).collect();
    let e = emission(u64::MAX, u64::MAX, values, &recipients);
    let f = Frame::Emission {
        group: GroupId::from_raw(u64::MAX),
        src: NodeId(u32::MAX),
        nodes: (0..512).map(NodeId).collect(),
        emission: e,
    };
    let mut wire = Vec::new();
    f.encode_into(&mut wire);
    assert!(wire.len() > 1 << 20, "frame is actually big");

    // Round trips under a cap just big enough.
    let mut cursor = &wire[..];
    let back = read_frame(&mut cursor, wire.len()).unwrap().unwrap();
    assert_eq!(back, f);

    // The same bytes under a smaller cap fail with Oversize, loudly.
    let mut cursor = &wire[..];
    let err = read_frame(&mut cursor, wire.len() - 5).unwrap_err();
    assert!(matches!(err, WireError::Oversize { .. }), "{err}");
}

/// Truncating an encoded emission anywhere produces an error, never a
/// silent partial decode.
#[test]
fn truncation_always_errors() {
    let e = emission(5, 9, vec![1.5, -2.5, 3.5], &[0, 63, 64, 200]);
    let mut buf = Vec::new();
    e.encode(&mut buf);
    for cut in 0..buf.len() {
        let mut r = Reader::new(&buf[..cut]);
        let result = Emission::decode(&mut r);
        assert!(result.is_err(), "decode succeeded on a {cut}-byte prefix");
    }
}
