//! Integration coverage for the framework extensions: reservoir sampling,
//! mixed-type groups under the region algorithm (multi-degree hitting
//! set), the benefit monitor + regrouping loop, and engine memory
//! boundedness on long streams.

use gasf_core::prelude::*;
use gasf_net::{NodeId, Topology};
use gasf_solar::{partition, GroupingStrategy};
use gasf_sources::{NamosBuoy, VolcanoSeismic};

#[test]
fn engine_memory_stays_bounded_on_long_streams() {
    let trace = NamosBuoy::new().tuples(20_000).seed(12).generate();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta * 2.0;
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .filter(FilterSpec::delta("tmpr4", s, s * 0.5))
        .filter(FilterSpec::delta("tmpr4", s * 2.0, s))
        .filter(FilterSpec::delta("tmpr4", s * 3.0, s * 1.5))
        .build()
        .unwrap();
    let mut peak = 0usize;
    for t in trace.into_tuples() {
        engine.push(t).unwrap();
        peak = peak.max(engine.buffered_tuples());
    }
    engine.finish().unwrap();
    assert!(
        peak < 2_000,
        "engine buffered {peak} tuples of 20k — region cleanup is broken"
    );
    assert_eq!(engine.buffered_tuples(), 0, "finish must drain everything");
}

#[test]
fn mixed_group_with_samplers_under_region_greedy() {
    // DC + SS + RS in one group, solved per region with the multi-degree
    // greedy: every sampler set must receive exactly its pick degree.
    let trace = VolcanoSeismic::new().tuples(3_000).seed(5).generate();
    let s = trace.stats("seis").unwrap().mean_abs_delta * 2.0;
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .algorithm(Algorithm::RegionGreedy)
        .filter(FilterSpec::delta("seis", s * 2.0, s))
        .filter(FilterSpec::stratified_sample(
            "seis",
            Micros::from_millis(500),
            0.002,
            40.0,
            10.0,
        ))
        .filter(FilterSpec::reservoir("seis", Micros::from_millis(800), 2))
        .build()
        .unwrap();
    let emissions = engine.run(trace.into_tuples()).unwrap();
    let m = engine.metrics();
    // every filter got at least one delivery
    for (i, f) in m.per_filter.iter().enumerate() {
        assert!(f.sets_closed > 0, "filter {i} closed no sets");
        assert!(f.chosen > 0, "filter {i} got nothing");
    }
    // reservoir deliveries: 2 per window (except possibly a short tail)
    let rs_deliveries: u64 = m.per_filter[2].chosen;
    let rs_sets = m.per_filter[2].sets_closed;
    assert!(
        rs_deliveries >= rs_sets * 2 - 1,
        "reservoir should get 2 tuples per window: {rs_deliveries} over {rs_sets} sets"
    );
    // sharing happened: distinct outputs below sum of per-filter choices
    let total_choices: u64 = m.per_filter.iter().map(|f| f.chosen).sum();
    assert!(m.output_tuples < total_choices);
    assert!(!emissions.is_empty());
}

#[test]
fn monitor_feeds_regrouping() {
    // Run a group with one greedy consumer; the monitor should isolate it
    // and the partition should reflect that.
    let trace = NamosBuoy::new().tuples(3_000).seed(3).generate();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .filter(FilterSpec::delta("tmpr4", s * 4.0, s * 2.0))
        .filter(FilterSpec::delta("tmpr4", s * 6.0, s * 3.0))
        // a "bad" filter: delta below the typical step -> wants most data
        .filter(FilterSpec::delta("tmpr4", s * 0.4, s * 0.05))
        .build()
        .unwrap();
    engine.run(trace.into_tuples()).unwrap();
    let report = BenefitMonitor::new().assess(engine.metrics());
    let Recommendation::IsolateFilters { filters } = &report.recommendation else {
        panic!("expected isolation advice, got {:?}", report.recommendation);
    };
    assert_eq!(filters, &vec![2]);

    // Feed the recommendation into the regrouping strategy.
    let rates: Vec<f64> = report
        .selectivity
        .iter()
        .map(|f| f.reference_rate)
        .collect();
    let topo = Topology::ring(7).build();
    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    let parts = partition(
        GroupingStrategy::BySelectivity { isolate_above: 0.6 },
        &topo,
        &nodes,
        &rates,
        3,
    );
    assert!(gasf_solar::is_valid_partition(&parts, 3));
    assert!(parts.contains(&vec![2]), "the greedy consumer is isolated");
    assert!(
        parts.contains(&vec![0, 1]),
        "the modest filters stay grouped"
    );
}

#[test]
fn watermark_is_monotone_and_bounded_by_stream_time() {
    let trace = NamosBuoy::new().tuples(2_000).seed(8).generate();
    let s = trace.stats("fluoro").unwrap().mean_abs_delta * 2.0;
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .algorithm(Algorithm::PerCandidateSet)
        .output_strategy(OutputStrategy::PerCandidateSet)
        .filter(FilterSpec::delta("fluoro", s, s * 0.5))
        .filter(FilterSpec::delta("fluoro", s * 2.0, s))
        .build()
        .unwrap();
    let mut last_watermark = Micros::ZERO;
    for t in trace.into_tuples() {
        let now = t.timestamp();
        engine.push(t).unwrap();
        let w = engine.watermark();
        assert!(w >= last_watermark, "watermark regressed");
        assert!(w <= now, "watermark ahead of stream time");
        last_watermark = w;
    }
    assert!(last_watermark > Micros::ZERO, "watermark never advanced");
}

#[test]
fn reservoir_bounds_subscriber_bandwidth() {
    // The RS use case: a subscriber capped at k tuples per second.
    let trace = NamosBuoy::new().tuples(5_000).seed(6).generate(); // 50 s
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .filter(FilterSpec::reservoir("tmpr4", Micros::from_secs(1), 3))
        .build()
        .unwrap();
    let emissions = engine.run(trace.into_tuples()).unwrap();
    // Timestamps run 10 ms..=50 s, so the stream touches 51 one-second
    // windows (the last contains a single tuple).
    let delivered: u64 = engine.metrics().per_filter[0].chosen;
    assert!(delivered <= 51 * 3, "cap violated: {delivered}");
    assert!(delivered >= 50 * 3, "windows under-served: {delivered}");
    assert!(!emissions.is_empty());
}
