//! End-to-end integration: sources → middleware → engines → overlay
//! multicast → applications, across crates.

use gasf_core::cuts::TimeConstraint;
use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_core::quality::FilterSpec;
use gasf_core::time::Micros;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, MiddlewareConfig};
use gasf_sources::{ChlorinePlume, NamosBuoy, SourceKind};

fn build(
    algorithm: Algorithm,
    topology: Topology,
    trace: &gasf_sources::Trace,
    specs: &[FilterSpec],
    app_nodes: &[u32],
) -> (Middleware, gasf_solar::SourceId) {
    let overlay = Overlay::new(topology);
    let mut mw = Middleware::with_config(
        overlay,
        MiddlewareConfig {
            algorithm,
            strategy: OutputStrategy::Earliest,
            constraint: Some(TimeConstraint::max_delay(Micros::from_millis(200))),
            ..Default::default()
        },
    );
    let src = mw
        .register_source("s", NodeId(0), trace.schema().clone())
        .unwrap();
    for (i, spec) in specs.iter().enumerate() {
        let _ = mw
            .subscribe(
                format!("app{i}"),
                NodeId(app_nodes[i % app_nodes.len()]),
                src,
                spec.clone(),
            )
            .unwrap();
    }
    mw.deploy().unwrap();
    (mw, src)
}

fn namos_specs(trace: &gasf_sources::Trace) -> Vec<FilterSpec> {
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta * 2.0;
    vec![
        FilterSpec::delta("tmpr4", s, s * 0.5),
        FilterSpec::delta("tmpr4", s * 2.0, s),
        FilterSpec::delta("tmpr4", s * 1.5, s * 0.75),
    ]
}

#[test]
fn full_pipeline_on_every_topology() {
    let trace = NamosBuoy::new().tuples(1_500).seed(5).generate();
    let specs = namos_specs(&trace);
    for topology in [
        Topology::ring(7).build(),
        Topology::star(6).build(),
        Topology::line(5).build(),
        Topology::grid(3, 3).build(),
    ] {
        let (mut mw, src) = build(
            Algorithm::RegionGreedy,
            topology,
            &trace,
            &specs,
            &[1, 2, 3, 4],
        );
        let report = mw.run_trace(src, trace.tuples().to_vec()).unwrap();
        assert_eq!(report.engine.input_tuples, 1_500);
        assert!(report.engine.output_tuples > 0);
        assert!(report.network_bytes > 0);
        for app in &report.per_app {
            assert!(app.tuples > 0, "{} starved", app.name);
            assert!(
                app.mean_e2e_latency >= Micros::from_millis(10),
                "{}: e2e latency {} implausibly low",
                app.name,
                app.mean_e2e_latency
            );
        }
    }
}

#[test]
fn bandwidth_ordering_ga_si_nofilter() {
    // The Fig. 1.3 ordering must hold through the whole stack.
    let trace = NamosBuoy::new().tuples(2_000).seed(9).generate();
    let specs = namos_specs(&trace);
    let bytes_of = |algorithm| {
        let (mut mw, src) = build(
            algorithm,
            Topology::ring(7).build(),
            &trace,
            &specs,
            &[2, 4, 6],
        );
        mw.run_trace(src, trace.tuples().to_vec())
            .unwrap()
            .network_bytes
    };
    let ga = bytes_of(Algorithm::RegionGreedy);
    let si = bytes_of(Algorithm::SelfInterested);
    assert!(ga <= si, "group-aware {ga} vs self-interested {si}");
}

#[test]
fn all_algorithms_and_strategies_deliver_everything() {
    let trace = ChlorinePlume::new().tuples(1_000).seed(3).generate();
    let s = trace.stats("chlorine").unwrap().mean_abs_delta * 2.0;
    let specs = [
        FilterSpec::delta("chlorine", s * 1.5, s * 0.7),
        FilterSpec::delta("chlorine", s * 3.0, s * 1.5),
    ];
    for algorithm in [
        Algorithm::RegionGreedy,
        Algorithm::PerCandidateSet,
        Algorithm::SelfInterested,
    ] {
        for strategy in [
            OutputStrategy::Earliest,
            OutputStrategy::PerCandidateSet,
            OutputStrategy::Batched(64),
        ] {
            let overlay = Overlay::new(Topology::ring(5).build());
            let mut mw = Middleware::with_config(
                overlay,
                MiddlewareConfig {
                    algorithm,
                    strategy,
                    constraint: None,
                    ..Default::default()
                },
            );
            let src = mw
                .register_source("c", NodeId(0), trace.schema().clone())
                .unwrap();
            let _ = mw
                .subscribe("a0", NodeId(2), src, specs[0].clone())
                .unwrap();
            let _ = mw
                .subscribe("a1", NodeId(4), src, specs[1].clone())
                .unwrap();
            mw.deploy().unwrap();
            let report = mw.run_trace(src, trace.tuples().to_vec()).unwrap();
            // per-app deliveries equal the engine's per-filter set counts
            for (i, app) in report.per_app.iter().enumerate() {
                assert_eq!(
                    app.tuples, report.engine.per_filter[i].sets_closed,
                    "{algorithm:?}/{strategy:?}: app{i}"
                );
            }
        }
    }
}

#[test]
fn every_source_kind_flows_through_the_stack() {
    for kind in [
        SourceKind::Namos,
        SourceKind::Cow,
        SourceKind::Volcano,
        SourceKind::Fire,
        SourceKind::Chlorine,
    ] {
        let trace = kind.generate(800, 4);
        let attr = kind.primary_attr();
        let s = trace.stats(attr).unwrap().mean_abs_delta * 2.0;
        let specs = vec![
            FilterSpec::delta(attr, s * 1.5, s * 0.7),
            FilterSpec::delta(attr, s * 2.5, s * 1.2),
        ];
        let (mut mw, src) = build(
            Algorithm::PerCandidateSet,
            Topology::ring(5).build(),
            &trace,
            &specs,
            &[1, 3],
        );
        let report = mw.run_trace(src, trace.tuples().to_vec()).unwrap();
        assert!(
            report.engine.output_tuples > 0,
            "{kind:?} produced no output"
        );
    }
}

#[test]
fn quality_propagation_matches_middleware_deployment() {
    let trace = NamosBuoy::new().tuples(100).seed(1).generate();
    let specs = namos_specs(&trace);
    let (mw, _) = build(
        Algorithm::RegionGreedy,
        Topology::ring(7).build(),
        &trace,
        &specs,
        &[1, 2, 3],
    );
    let graph = mw.operator_graph();
    let sites = graph.group_filter_sites();
    assert_eq!(sites.len(), 1);
    assert_eq!(sites[0].1.len(), specs.len());
    for spec in &specs {
        assert!(sites[0].1.contains(spec));
    }
}

#[test]
fn tighter_constraints_cut_more_and_lower_latency() {
    let trace = NamosBuoy::new().tuples(2_000).seed(7).generate();
    let specs = namos_specs(&trace);
    let run = |deadline_ms: u64| {
        let overlay = Overlay::new(Topology::ring(7).build());
        let mut mw = Middleware::with_config(
            overlay,
            MiddlewareConfig {
                algorithm: Algorithm::RegionGreedy,
                strategy: OutputStrategy::Earliest,
                constraint: Some(TimeConstraint::max_delay(Micros::from_millis(deadline_ms))),
                ..Default::default()
            },
        );
        let src = mw
            .register_source("s", NodeId(0), trace.schema().clone())
            .unwrap();
        for (i, spec) in specs.iter().enumerate() {
            let _ = mw
                .subscribe(format!("a{i}"), NodeId(1 + i as u32), src, spec.clone())
                .unwrap();
        }
        mw.deploy().unwrap();
        let r = mw.run_trace(src, trace.tuples().to_vec()).unwrap();
        (r.engine.cut_fraction(), r.engine.mean_latency())
    };
    let (loose_cuts, loose_latency) = run(500);
    let (tight_cuts, tight_latency) = run(30);
    assert!(tight_cuts >= loose_cuts, "{tight_cuts} vs {loose_cuts}");
    assert!(
        tight_latency <= loose_latency,
        "{tight_latency} vs {loose_latency}"
    );
}
