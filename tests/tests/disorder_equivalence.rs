//! Pins the **event-time determinism contract**: a stream delivered out
//! of order within a disorder bound, reordered by the middleware's
//! watermark-driven [`ReorderBuffer`] front end, is **byte-identical** to
//! the pre-sorted stream on the classic ordered path — same engine
//! metrics, same per-subscription deliveries — across every `Algorithm` ×
//! `OutputStrategy`, at parallelism ∈ {1, 2, 4}, for every disorder
//! bound, and through a mid-stream checkpoint → recover hop that carries
//! the watermark and the buffered-but-unreleased tuples.
//!
//! Also pinned here: the trivial front end (bound 0, in-order arrivals)
//! equals the path with no front end at all; late-tuple policies (`Drop`
//! counted, `EmitPatch` delivered and flagged) at every parallelism; and
//! the windowed aggregation filters against a scalar oracle under random
//! watermark schedules.
//!
//! The `GASF_TEST_DISORDER` environment knob (milliseconds) narrows the
//! bound sweep to one bound (CI shards the matrix with it); unset, the
//! suite covers 0, 16 and 1024 ms.

use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_core::event_time::{
    Aggregate, EventTimeConfig, LatePolicy, ReorderBuffer, WindowFilter, WindowKind,
};
use gasf_core::quality::FilterSpec;
use gasf_core::schema::Schema;
use gasf_core::time::Micros;
use gasf_core::tuple::{Tuple, TupleBuilder};
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{AppReport, Middleware, MiddlewareConfig, RunReport, SourceId};
use gasf_sources::{Disorder, NamosBuoy, Trace};
use proptest::prelude::*;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::RegionGreedy,
    Algorithm::PerCandidateSet,
    Algorithm::SelfInterested,
];

const STRATEGIES: [OutputStrategy; 3] = [
    OutputStrategy::Earliest,
    OutputStrategy::PerCandidateSet,
    OutputStrategy::Batched(7),
];

/// Disorder bounds under test. The `GASF_TEST_DISORDER` knob (in
/// milliseconds) pins one bound (CI matrix sharding); unset, the
/// canonical three are swept. Bound 0 is the trivial watermark: in-order
/// arrivals, immediate release.
fn disorder_bounds() -> Vec<Micros> {
    match std::env::var("GASF_TEST_DISORDER") {
        Ok(v) => vec![Micros::from_millis(v.parse().expect(
            "GASF_TEST_DISORDER must be a disorder bound in milliseconds",
        ))],
        Err(_) => vec![
            Micros::ZERO,
            Micros::from_millis(16),
            Micros::from_millis(1024),
        ],
    }
}

fn trace(tuples: usize, seed: u64) -> Trace {
    NamosBuoy::new().tuples(tuples).seed(seed).generate()
}

/// A middleware over a 7-ring with three overlapping subscriptions on
/// the NAMOS schema, deployed and ready to stream.
fn setup(config: MiddlewareConfig, trace: &Trace) -> (Middleware, SourceId) {
    let overlay = Overlay::new(Topology::ring(7).build());
    let mut mw = Middleware::with_config(overlay, config);
    let src = mw
        .register_source("buoy", NodeId(0), trace.schema().clone())
        .unwrap();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let _ = mw
        .subscribe("a1", NodeId(2), src, FilterSpec::delta("tmpr4", s * 2.0, s))
        .unwrap();
    let _ = mw
        .subscribe(
            "a2",
            NodeId(4),
            src,
            FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
        )
        .unwrap();
    let _ = mw
        .subscribe(
            "a3",
            NodeId(6),
            src,
            FilterSpec::delta("tmpr2", s * 2.2, s * 0.9),
        )
        .unwrap();
    mw.deploy().unwrap();
    (mw, src)
}

fn config(parallelism: usize, algorithm: Algorithm, strategy: OutputStrategy) -> MiddlewareConfig {
    MiddlewareConfig {
        algorithm,
        strategy,
        parallelism,
        ..Default::default()
    }
}

/// Deterministic slice of a run report (wall-clock-free): engine
/// counters plus the full per-subscription delivery statistics.
fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64, Vec<AppReport>) {
    (
        r.engine.input_tuples,
        r.engine.output_tuples,
        r.engine.emissions,
        r.engine.recipient_labels,
        r.per_app.clone(),
    )
}

/// The reference run: the pre-sorted trace through the classic ordered
/// path (no event-time front end).
fn run_ordered(cfg: MiddlewareConfig, trace: &Trace) -> (u64, u64, u64, u64, Vec<AppReport>) {
    let (mut mw, src) = setup(cfg, trace);
    let report = mw.run_trace(src, trace.tuples().iter().cloned()).unwrap();
    fingerprint(&report)
}

/// The run under test: `arrivals` (a bounded permutation of the trace)
/// through a middleware whose front end reorders with `bound`.
fn run_disordered(
    mut cfg: MiddlewareConfig,
    trace: &Trace,
    arrivals: Vec<Tuple>,
    bound: Micros,
) -> (u64, u64, u64, u64, Vec<AppReport>) {
    cfg.event_time = Some(EventTimeConfig::bounded(bound));
    let (mut mw, src) = setup(cfg, trace);
    let report = mw.run_trace(src, arrivals).unwrap();
    let stats = mw.event_time_stats(src).unwrap();
    assert_eq!(stats.late_dropped, 0, "within-bound jitter is never late");
    assert_eq!(stats.buffered, 0, "finish flushes the buffer");
    fingerprint(&report)
}

#[test]
fn reordered_arrivals_equal_presorted_for_every_combination() {
    let trace = trace(400, 11);
    for algorithm in ALGORITHMS {
        for strategy in STRATEGIES {
            for parallelism in [1usize, 2, 4] {
                let cfg = config(parallelism, algorithm, strategy);
                let expected = run_ordered(cfg, &trace);
                for bound in disorder_bounds() {
                    let label =
                        format!("{algorithm:?}/{strategy:?}/n={parallelism}/bound={bound:?}");
                    let arrivals = Disorder::bounded(bound).seed(7).apply(&trace);
                    let got = run_disordered(cfg, &trace, arrivals, bound);
                    assert_eq!(got, expected, "{label}");
                }
            }
        }
    }
}

#[test]
fn trivial_watermark_on_ordered_stream_equals_no_front_end() {
    // Contract (b): an in-order stream under a zero-bound watermark is
    // byte-identical to the path without any event-time front end — the
    // front end is pay-for-what-you-use.
    let trace = trace(400, 3);
    for parallelism in [1usize, 2, 4] {
        let cfg = config(
            parallelism,
            Algorithm::RegionGreedy,
            OutputStrategy::Earliest,
        );
        let expected = run_ordered(cfg, &trace);
        let got = run_disordered(cfg, &trace, trace.tuples().to_vec(), Micros::ZERO);
        assert_eq!(got, expected, "n={parallelism}");
    }
}

#[test]
fn checkpoint_recover_hop_carries_watermark_and_buffer_state() {
    // Contract (a), fault-tolerance leg: split the disordered arrival
    // sequence at an arbitrary point, checkpoint (tuples are still held
    // in the reorder buffer there), crash, recover on a fresh overlay,
    // stream the rest — byte-identical to the pre-sorted fault-free run
    // with the same checkpoint schedule. A checkpoint is a safe-point
    // boundary, so "same schedule" means the ordered reference
    // checkpoints after exactly the tuples the buffer had *released* by
    // the cut — the engines see identical prefixes either way.
    let trace = trace(400, 19);
    const CUT: usize = 213;
    for parallelism in [1usize, 2, 4] {
        for bound in disorder_bounds() {
            let label = format!("n={parallelism}/bound={bound:?}");
            let cfg = config(
                parallelism,
                Algorithm::RegionGreedy,
                OutputStrategy::Earliest,
            );

            let mut hop_cfg = cfg;
            hop_cfg.event_time = Some(EventTimeConfig::bounded(bound));
            let arrivals = Disorder::bounded(bound).seed(5).apply(&trace);
            let (mut mw, src) = setup(hop_cfg, &trace);
            let mut pipeline = mw.pipeline(src).unwrap();
            for t in &arrivals[..CUT] {
                pipeline.push(t.clone()).unwrap();
            }
            let snap = mw.checkpoint().unwrap();
            let before = mw.event_time_stats(src).unwrap();
            if bound > Micros::ZERO {
                assert!(
                    before.buffered > 0,
                    "{label}: the cut must catch the buffer non-empty"
                );
            }
            drop(mw); // the crash

            let mut mw =
                Middleware::recover(Overlay::new(Topology::ring(7).build()), &snap).unwrap();
            assert_eq!(
                mw.event_time_stats(src).unwrap(),
                before,
                "{label}: watermark + buffer survive the hop"
            );
            let mut pipeline = mw.pipeline(src).unwrap();
            for t in &arrivals[CUT..] {
                pipeline.push(t.clone()).unwrap();
            }
            pipeline.finish().unwrap();
            let got = fingerprint(&mw.report(src).unwrap());

            // Fault-free ordered reference with the matching schedule.
            let released = before.released as usize;
            let (mut mw, src) = setup(cfg, &trace);
            let mut pipeline = mw.pipeline(src).unwrap();
            for t in &trace.tuples()[..released] {
                pipeline.push(t.clone()).unwrap();
            }
            let _snap = mw.checkpoint().unwrap();
            let mut pipeline = mw.pipeline(src).unwrap();
            for t in &trace.tuples()[released..] {
                pipeline.push(t.clone()).unwrap();
            }
            pipeline.finish().unwrap();
            let expected = fingerprint(&mw.report(src).unwrap());

            assert_eq!(got, expected, "{label}");
        }
    }
}

#[test]
fn late_policies_hold_at_every_parallelism() {
    // Satellite: `Drop` counts the stragglers without the engines ever
    // seeing them; `EmitPatch` turns each one into a flagged correction
    // that reaches every active subscription, accounted by the
    // FlowMonitor and the multicast sink.
    let trace = trace(300, 23);
    let bound = Micros::from_millis(40);
    let spec = Disorder::bounded(bound)
        .seed(2)
        .stragglers(60, Micros::from_millis(400));
    let arrivals = spec.apply(&trace);

    // Count the stragglers the disorder spec actually produced late, via
    // a standalone buffer with the same bound.
    let mut oracle = ReorderBuffer::new(EventTimeConfig::bounded(bound));
    let mut sunk = Vec::new();
    let late_count = arrivals
        .iter()
        .filter(|t| oracle.push_into((*t).clone(), &mut sunk).is_some())
        .count() as u64;
    assert!(late_count > 0, "the spec must produce stragglers");

    for parallelism in [1usize, 2, 4] {
        let mut drop_cfg = config(
            parallelism,
            Algorithm::RegionGreedy,
            OutputStrategy::Earliest,
        );
        drop_cfg.event_time = Some(EventTimeConfig::bounded(bound).late(LatePolicy::Drop));
        let (mut mw, src) = setup(drop_cfg, &trace);
        let drop_report = mw.run_trace(src, arrivals.iter().cloned()).unwrap();
        let drop_stats = mw.event_time_stats(src).unwrap();
        assert_eq!(drop_stats.late_dropped, late_count, "n={parallelism}");
        assert_eq!(drop_stats.patches, 0);
        assert_eq!(
            drop_report.engine.input_tuples,
            trace.len() as u64 - late_count,
            "n={parallelism}: engines never see dropped stragglers"
        );

        let mut patch_cfg = drop_cfg;
        patch_cfg.event_time = Some(EventTimeConfig::bounded(bound).late(LatePolicy::EmitPatch));
        let (mut mw, src) = setup(patch_cfg, &trace);
        let patch_report = mw.run_trace(src, arrivals.iter().cloned()).unwrap();
        let patch_stats = mw.event_time_stats(src).unwrap();
        assert_eq!(patch_stats.patches, late_count, "n={parallelism}");
        assert_eq!(patch_stats.late_dropped, 0);
        assert_eq!(
            patch_report.engine.input_tuples, drop_report.engine.input_tuples,
            "n={parallelism}: patches bypass the engines too"
        );
        // Each patch reaches each of the three subscriptions, beyond the
        // regular deliveries (which are identical to the drop run).
        let drop_delivered: u64 = drop_report.per_app.iter().map(|a| a.tuples).sum();
        let patch_delivered: u64 = patch_report.per_app.iter().map(|a| a.tuples).sum();
        assert_eq!(
            patch_delivered,
            drop_delivered + late_count * 3,
            "n={parallelism}: every active subscription receives every patch"
        );
    }
}

// ---------------------------------------------------------------------
// windowed aggregation vs a scalar oracle
// ---------------------------------------------------------------------

/// Scalar oracle: assigns every `(ts, value)` to each window
/// `[k·slide, k·slide + size)` containing `ts` and aggregates per window;
/// returns `(start, value, count)` in window-start order.
fn window_oracle(
    points: &[(u64, f64)],
    size: u64,
    slide: u64,
    agg: Aggregate,
) -> Vec<(u64, f64, u64)> {
    use std::collections::BTreeMap;
    let mut windows: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for &(ts, v) in points {
        let hi = ts / slide;
        let lo = if ts >= size {
            (ts - size) / slide + 1
        } else {
            0
        };
        for k in lo..=hi {
            windows.entry(k * slide).or_default().push(v);
        }
    }
    windows
        .into_iter()
        .map(|(start, vs)| {
            let n = vs.len() as u64;
            let value = match agg {
                Aggregate::Min => vs.iter().copied().fold(f64::INFINITY, f64::min),
                Aggregate::Max => vs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                Aggregate::Mean => vs.iter().sum::<f64>() / n as f64,
                Aggregate::Count => n as f64,
            };
            (start, value, n)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random streams, random window geometry, random watermark
    /// schedules: the concatenation of everything the watermark closes
    /// (plus the end-of-stream flush) must equal the scalar oracle — and
    /// the schedule only decides *when* windows close, never what they
    /// contain.
    #[test]
    fn window_filters_match_the_scalar_oracle_under_random_watermarks(
        raw in proptest::collection::vec((0u64..20_000, -100.0f64..100.0), 1..80),
        size_ms in 1u64..40,
        slide_div in 1u64..4,
        agg_idx in 0usize..4,
        marks in proptest::collection::vec(0u64..25_000, 0..10),
    ) {
        let agg = [Aggregate::Min, Aggregate::Max, Aggregate::Mean, Aggregate::Count][agg_idx];
        let size = size_ms * 1000;
        let slide = (size / slide_div).max(1);
        let kind = if slide == size {
            WindowKind::Tumbling { size: Micros(size) }
        } else {
            WindowKind::Sliding { size: Micros(size), slide: Micros(slide) }
        };

        let schema = Schema::new(["t"]);
        let attr = schema.attr("t").unwrap();
        let mut b = TupleBuilder::new(&schema);
        let points: Vec<(u64, f64)> = raw;
        let tuples: Vec<Tuple> = points
            .iter()
            .map(|&(ts, v)| b.at(Micros(ts)).set("t", v).build().unwrap())
            .collect();

        // Watermark schedule: sorted, then driven monotonically.
        let mut schedule = marks;
        schedule.sort_unstable();

        let run = |schedule: &[u64]| {
            let mut wf = WindowFilter::new(attr, kind, agg);
            for t in &tuples {
                wf.observe(t);
            }
            let mut out = Vec::new();
            for &m in schedule {
                wf.advance_into(Micros(m), &mut out);
            }
            wf.finish_into(&mut out);
            out
        };

        let got = run(&schedule);
        // Equal watermark schedules ⇒ byte-equal window streams.
        prop_assert_eq!(&got, &run(&schedule));
        // Any schedule yields the same total content as closing
        // everything at end-of-stream.
        prop_assert_eq!(&got, &run(&[]));

        let expected = window_oracle(&points, size, slide, agg);
        prop_assert_eq!(got.len(), expected.len());
        for (o, (start, value, count)) in got.iter().zip(&expected) {
            prop_assert_eq!(o.start, Micros(*start));
            prop_assert_eq!(o.end, Micros(start + size));
            prop_assert_eq!(o.count, *count);
            prop_assert!(
                (o.value - value).abs() <= 1e-9 * value.abs().max(1.0),
                "window@{}: {} vs oracle {}", start, o.value, value
            );
        }
    }
}
