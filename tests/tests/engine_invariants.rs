//! Property tests for the core engine guarantees, on randomized streams.
//!
//! These pin the dissertation's formal claims:
//! * every filter receives exactly one tuple per logical output (its
//!   candidate sets are all "hit"),
//! * group-aware output never exceeds self-interested output (the
//!   guarantee of §3.3 extends to cuts),
//! * delivered tuples satisfy the quality slack (§2.1),
//! * region segmentation does not change the greedy solution (Theorem 2's
//!   operational consequence).

use gasf_core::prelude::*;
use proptest::prelude::*;

/// Builds a stream from arbitrary step increments (bounded so deltas stay
/// meaningful) at 10 ms intervals.
fn stream_from_steps(steps: &[i32]) -> (Schema, Vec<Tuple>) {
    let schema = Schema::new(["v"]);
    let mut b = TupleBuilder::new(&schema);
    let mut v = 0.0;
    let tuples = steps
        .iter()
        .enumerate()
        .map(|(i, s)| {
            v += *s as f64;
            b.at_millis(10 * (i as u64 + 1))
                .set("v", v)
                .build()
                .expect("fixture")
        })
        .collect();
    (schema, tuples)
}

fn engine(schema: &Schema, specs: &[FilterSpec], algorithm: Algorithm) -> GroupEngine {
    GroupEngine::builder(schema.clone())
        .algorithm(algorithm)
        .filters(specs.to_vec())
        .build()
        .expect("valid test config")
}

fn spec_strategy() -> impl Strategy<Value = Vec<FilterSpec>> {
    // 2..5 DC filters with deltas 8..40 and slack 10..50% of delta.
    proptest::collection::vec((8.0f64..40.0, 0.1f64..0.5), 2..5).prop_map(|params| {
        params
            .into_iter()
            .map(|(delta, frac)| FilterSpec::delta("v", delta, delta * frac))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ga_never_worse_than_si(
        steps in proptest::collection::vec(-12i32..12, 10..120),
        specs in spec_strategy(),
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        for algorithm in [Algorithm::RegionGreedy, Algorithm::PerCandidateSet] {
            let mut ga = engine(&schema, &specs, algorithm);
            ga.run(tuples.clone()).expect("run");
            let mut si = engine(&schema, &specs, Algorithm::SelfInterested);
            si.run(tuples.clone()).expect("run");
            prop_assert!(
                ga.metrics().output_tuples <= si.metrics().output_tuples,
                "{algorithm:?}: GA {} > SI {}",
                ga.metrics().output_tuples,
                si.metrics().output_tuples
            );
        }
    }

    #[test]
    fn every_logical_output_is_delivered(
        steps in proptest::collection::vec(-12i32..12, 10..120),
        specs in spec_strategy(),
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        for algorithm in [Algorithm::RegionGreedy, Algorithm::PerCandidateSet] {
            let mut e = engine(&schema, &specs, algorithm);
            let emissions = e.run(tuples.clone()).expect("run");
            let m = e.metrics();
            for (i, f) in m.per_filter.iter().enumerate() {
                let delivered = emissions
                    .iter()
                    .filter(|em| em.recipients.iter().any(|r| r.index() == i))
                    .count() as u64;
                prop_assert_eq!(
                    delivered, f.sets_closed,
                    "{:?}: filter {} got {} of {} outputs",
                    algorithm, i, delivered, f.sets_closed
                );
                prop_assert_eq!(f.chosen, f.sets_closed);
            }
        }
    }

    #[test]
    fn delivered_tuples_respect_slack(
        steps in proptest::collection::vec(-12i32..12, 10..120),
        specs in spec_strategy(),
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        // Reference values per filter come from the SI run.
        let mut si = engine(&schema, &specs, Algorithm::SelfInterested);
        let si_emissions = si.run(tuples.clone()).expect("run");
        let mut refs: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        for em in &si_emissions {
            for r in &em.recipients {
                refs[r.index()].push(em.tuple.values()[0]);
            }
        }
        let slack_of = |spec: &FilterSpec| match &spec.kind {
            FilterKind::Delta { slack, .. } => *slack,
            _ => unreachable!("test uses DC specs only"),
        };
        let mut ga = engine(&schema, &specs, Algorithm::RegionGreedy);
        for em in ga.run(tuples.clone()).expect("run") {
            for r in &em.recipients {
                let i = r.index();
                let v = em.tuple.values()[0];
                let ok = refs[i]
                    .iter()
                    .any(|rf| (v - rf).abs() <= slack_of(&specs[i]) + 1e-9);
                prop_assert!(
                    ok,
                    "filter {} received {} outside slack of references {:?}",
                    i, v, refs[i]
                );
            }
        }
    }

    #[test]
    fn determinism(
        steps in proptest::collection::vec(-12i32..12, 10..80),
        specs in spec_strategy(),
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        let run = |algorithm| {
            let mut e = engine(&schema, &specs, algorithm);
            e.run(tuples.clone()).expect("run")
        };
        for algorithm in [Algorithm::RegionGreedy, Algorithm::PerCandidateSet, Algorithm::SelfInterested] {
            prop_assert_eq!(run(algorithm), run(algorithm));
        }
    }

    #[test]
    fn cuts_preserve_delivery_and_si_bound(
        steps in proptest::collection::vec(-12i32..12, 10..120),
        specs in spec_strategy(),
        deadline_ms in 10u64..200,
    ) {
        let (schema, tuples) = stream_from_steps(&steps);
        let mut cut = GroupEngine::builder(schema.clone())
            .algorithm(Algorithm::RegionGreedy)
            .time_constraint(TimeConstraint::max_delay(Micros::from_millis(deadline_ms)))
            .filters(specs.clone())
            .build()
            .expect("valid");
        let emissions = cut.run(tuples.clone()).expect("run");
        let mut si = engine(&schema, &specs, Algorithm::SelfInterested);
        si.run(tuples.clone()).expect("run");
        prop_assert!(cut.metrics().output_tuples <= si.metrics().output_tuples);
        // every closed set still delivered under cuts
        for (i, f) in cut.metrics().per_filter.iter().enumerate() {
            let delivered = emissions
                .iter()
                .filter(|em| em.recipients.iter().any(|r| r.index() == i))
                .count() as u64;
            prop_assert_eq!(delivered, f.sets_closed);
        }
    }

    #[test]
    fn emissions_cover_all_algorithms_consistently(
        steps in proptest::collection::vec(-12i32..12, 10..80),
        specs in spec_strategy(),
    ) {
        // The per-candidate-set strategy may re-emit, but distinct output
        // accounting must match the set of distinct emitted seqs.
        let (schema, tuples) = stream_from_steps(&steps);
        let mut e = GroupEngine::builder(schema.clone())
            .algorithm(Algorithm::PerCandidateSet)
            .output_strategy(OutputStrategy::PerCandidateSet)
            .filters(specs.clone())
            .build()
            .expect("valid");
        let emissions = e.run(tuples.clone()).expect("run");
        let mut seqs: Vec<u64> = emissions.iter().map(|em| em.tuple.seq()).collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len() as u64, e.metrics().output_tuples);
    }
}
