//! Quickstart: the paper's §2.1 running example, end to end.
//!
//! **Paper scenario:** the nine-tuple temperature sequence of §2.1.1
//! (Fig. 2.1), the worked example the whole dissertation builds on.
//! Three applications share a temperature source. A tolerates 10-unit
//! slack at 50-unit granularity, B tolerates 5 at 40, C tolerates 25 at
//! 80. Group-aware filtering needs 3 tuples where self-interested
//! filtering needs 6.
//!
//! **Knobs exercised:** all three `Algorithm` variants over the same
//! fixture, `FilterSpec::delta` (granularity + slack), labelled specs,
//! and the sink-based `run_into` + `VecSink` collection path.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gasf_core::prelude::*;

fn run(algorithm: Algorithm, tuples: &[Tuple], schema: &Schema) -> Result<(), Error> {
    let mut engine = GroupEngine::builder(schema.clone())
        .algorithm(algorithm)
        .filter(FilterSpec::delta("temperature", 50.0, 10.0).with_label("A (10,50)"))
        .filter(FilterSpec::delta("temperature", 40.0, 5.0).with_label("B (5,40)"))
        .filter(FilterSpec::delta("temperature", 80.0, 25.0).with_label("C (25,80)"))
        .build()?;

    // The roster is compiled into a fused evaluator by default; the
    // interpreted per-filter path stays available via `.evaluator(...)`.
    println!("--- {algorithm:?} ({:?} tier) ---", engine.evaluator_tier());
    // Emissions stream into a sink; VecSink materialises them for printing.
    let mut out = VecSink::new();
    engine.run_into(tuples.iter().cloned(), &mut out)?;
    for emission in out.as_slice() {
        let recipients: Vec<String> = emission
            .recipients
            .iter()
            .map(|f| ["A", "B", "C"][f.index()].to_string())
            .collect();
        println!(
            "  t={:<9} value={:<6} -> {{{}}}",
            emission.emitted_at.to_string(),
            emission.tuple.values()[0],
            recipients.join(", ")
        );
    }
    let m = engine.metrics();
    println!(
        "  {} inputs, {} distinct outputs (O/I = {:.2}), {} regions\n",
        m.input_tuples,
        m.output_tuples,
        m.oi_ratio(),
        m.regions
    );
    Ok(())
}

fn main() -> Result<(), Error> {
    let schema = Schema::new(["temperature"]);
    // §2.1.1's nine-tuple sequence plus the closing tuple, 10 ms apart.
    let values = [0.0, 35.0, 29.0, 45.0, 50.0, 59.0, 80.0, 97.0, 100.0, 112.0];
    let mut b = TupleBuilder::new(&schema);
    let tuples: Vec<Tuple> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            b.at_millis(10 * (i as u64 + 1))
                .set("temperature", *v)
                .build()
                .expect("fixture")
        })
        .collect();

    println!("group-aware stream filtering: the paper's running example\n");
    run(Algorithm::SelfInterested, &tuples, &schema)?;
    run(Algorithm::RegionGreedy, &tuples, &schema)?;
    run(Algorithm::PerCandidateSet, &tuples, &schema)?;
    println!("group-awareness halves the multicast payload while every");
    println!("application still receives data within its quality slack.");
    Ok(())
}
