//! Sensor sampling for multiple queries (§5.5.3) — heterogeneous filter
//! types in one group.
//!
//! **Paper scenario:** Ch. 5's heterogeneous filter taxonomy applied to
//! the §5.5.3 sensor-sampling use case, on a §4.2-shaped NAMOS trace.
//! Three analysis queries share one buoy thermistor: a delta-compression
//! state tracker, a trend watcher and a stratified sampler that samples
//! high-dynamics windows harder. Group-aware filtering coordinates their
//! picks so the union shipped off the sensor shrinks.
//!
//! **Knobs exercised:** mixed `FilterSpec` kinds in one group (DC1
//! `delta`, DC2 `trend_delta`, SS `stratified_sample`), the
//! per-candidate-set algorithm stateful filters require, and
//! trace-derived srcStatistics calibration (§4.3).
//!
//! ```text
//! cargo run --example sensor_sampling
//! ```

use gasf_core::prelude::*;
use gasf_sources::NamosBuoy;

fn run(algorithm: Algorithm) -> Result<EngineMetrics, Error> {
    let trace = NamosBuoy::new().tuples(6_000).seed(33).generate();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta * 2.0;
    let range = trace.stats("tmpr4").unwrap().range();

    // srcStatistics of the trend series, for the DC2 query.
    let series = trace.series_of("tmpr4").unwrap();
    let trend_stat = {
        let mut acc = 0.0;
        for w in series.windows(2) {
            let dt = (w[1].0.as_secs_f64() - w[0].0.as_secs_f64()).max(1e-9);
            acc += ((w[1].1 - w[0].1) / dt).abs();
        }
        acc / (series.len() - 1) as f64 * 2.0
    };

    let mut engine = GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .filter(FilterSpec::delta("tmpr4", s * 2.0, s).with_label("state tracker (DC1)"))
        .filter(
            FilterSpec::trend_delta("tmpr4", trend_stat * 2.0, trend_stat)
                .with_label("trend watcher (DC2)"),
        )
        .filter(
            FilterSpec::stratified_sample("tmpr4", Micros::from_secs(1), range * 0.2, 40.0, 10.0)
                .with_label("dynamics sampler (SS)"),
        )
        .build()?;
    // Only the metrics matter here: NullSink rides the zero-alloc release
    // path without collecting a single emission.
    engine.run_into(trace.into_tuples(), &mut NullSink)?;
    Ok(engine.into_metrics())
}

fn main() -> Result<(), Error> {
    println!("sensor sampling for multiple queries (§5.5.3)\n");
    let si = run(Algorithm::SelfInterested)?;
    let ga = run(Algorithm::PerCandidateSet)?;

    println!("                         self-interested   group-aware");
    println!(
        "distinct tuples shipped  {:>15}   {:>11}",
        si.output_tuples, ga.output_tuples
    );
    println!(
        "O/I ratio                {:>15.3}   {:>11.3}",
        si.oi_ratio(),
        ga.oi_ratio()
    );
    for (i, name) in ["state tracker", "trend watcher", "dynamics sampler"]
        .iter()
        .enumerate()
    {
        println!(
            "{name:<16} outputs  {:>15}   {:>11}",
            si.per_filter[i].chosen, ga.per_filter[i].chosen
        );
    }
    println!(
        "\neach query still receives its full quality (same per-query output\n\
         counts), but the union shrank by {:.1}% — less radio time, longer\n\
         sensor life (§5.5.3).",
        (1.0 - ga.output_tuples as f64 / si.output_tuples as f64) * 100.0
    );
    Ok(())
}
