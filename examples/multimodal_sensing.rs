//! Multi-modal sensing: cheap sensors index expensive imagers (§5.5.2).
//!
//! **Paper scenario:** §5.5.2 / Fig. 5.5, on the §4.7.4 volcano-shaped
//! seismic trace. A surveillance site bundles low-cost motion/seismic
//! sensors with a high-cost imager. The cheap sensors sample fast; their
//! *filtered* output acts as an **index** selecting which images are worth
//! shipping over the constrained network. The smaller the group-aware
//! output, the fewer images transmitted — so the group-aware saving
//! multiplies with the image size.
//!
//! **Knobs exercised:** a custom `EmissionSink` implementation (the image
//! index) fed straight from the engine's release path, plus the
//! group-aware vs self-interested `Algorithm` comparison.
//!
//! ```text
//! cargo run --example multimodal_sensing
//! ```

use gasf_core::prelude::*;
use gasf_sources::VolcanoSeismic;
use std::collections::BTreeSet;

/// Bytes per image the co-located camera would ship for an indexed event.
const IMAGE_BYTES: u64 = 64 * 1024;
/// Bytes per raw sensor tuple.
const TUPLE_BYTES: u64 = 88;

/// The image index as a custom [`EmissionSink`]: each distinct output
/// tuple triggers one image upload; each image is shipped once regardless
/// of how many applications want it (multicast). Emissions stream straight
/// from the engine's release path into this accounting — no intermediate
/// `Vec<Emission>`.
#[derive(Debug, Default)]
struct ImageIndex {
    indexed: BTreeSet<u64>,
    sensor_tuples: u64,
}

impl ImageIndex {
    fn uplink_bytes(&self) -> u64 {
        self.indexed.len() as u64 * IMAGE_BYTES + self.sensor_tuples * TUPLE_BYTES
    }
}

impl EmissionSink for ImageIndex {
    fn accept(&mut self, emission: &Emission) {
        self.indexed.insert(emission.tuple.seq());
        self.sensor_tuples += 1;
    }
}

fn run(algorithm: Algorithm) -> Result<(u64, u64), Error> {
    let trace = VolcanoSeismic::new().tuples(8_000).seed(11).generate();
    let s = trace.stats("seis").unwrap().mean_abs_delta * 2.0;
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .algorithm(algorithm)
        .filter(FilterSpec::delta("seis", s * 1.5, s * 0.7).with_label("tripwire"))
        .filter(FilterSpec::delta("seis", s * 3.0, s * 1.5).with_label("tracker"))
        .filter(FilterSpec::delta("seis", s * 2.2, s * 1.1).with_label("archiver"))
        .build()?;

    let mut index = ImageIndex::default();
    engine.run_into(trace.into_tuples(), &mut index)?;
    Ok((index.indexed.len() as u64, index.uplink_bytes()))
}

fn main() -> Result<(), Error> {
    println!("multi-modal sensing with co-located sensors and imagers (§5.5.2)\n");
    let (si_images, si_bytes) = run(Algorithm::SelfInterested)?;
    let (ga_images, ga_bytes) = run(Algorithm::RegionGreedy)?;
    println!("self-interested index: {si_images} images  -> {si_bytes} bytes on the uplink");
    println!("group-aware index:     {ga_images} images  -> {ga_bytes} bytes on the uplink");
    println!(
        "\nthe index shrank by {:.1}%, and because every index entry drags a\n\
         {} KiB image behind it, the uplink saving is {:.1}% — group-aware\n\
         filtering also saves the robot's battery and local storage (§5.5.2).",
        (1.0 - ga_images as f64 / si_images as f64) * 100.0,
        IMAGE_BYTES / 1024,
        (1.0 - ga_bytes as f64 / si_bytes as f64) * 100.0,
    );
    Ok(())
}
