//! Subscriber churn: the live subscription control plane end to end.
//!
//! **Paper scenario:** the paper's premise is a *group* of subscribers
//! whose filters overlap — and its §4.8/§6.2 regrouping discussion
//! assumes membership that changes over time. A production system serving
//! millions of users is defined by churn: apps join mid-stream, greedy
//! consumers appear and must be isolated, requirements get retuned. This
//! demo drives one NAMOS buoy source through four phases *without ever
//! tearing the deployment down*: (1) two modest dashboards stream
//! steadily; (2) a greedy "raw-feed" app joins live and bloats the
//! multicast traffic; (3) `Middleware::regroup(BySelectivity)` isolates
//! it into its own engine at an epoch boundary (in-flight candidate sets
//! drain first); (4) one dashboard retunes its filter live and the greedy
//! app finally unsubscribes — its node leaves the Scribe tree, its
//! delivery stats survive in the report.
//!
//! **Knobs exercised:** `Middleware::{subscribe, unsubscribe,
//! resubscribe, regroup}` after `deploy()`, `SubscriptionHandle`-keyed
//! reports, `gasf::GroupingStrategy` via the facade re-export, and the
//! per-phase overlay byte accounting that shows the bandwidth recovered.
//!
//! ```text
//! cargo run --release --example subscriber_churn
//! ```

use gasf::GroupingStrategy;
use gasf_core::prelude::*;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, SolarError};
use gasf_sources::NamosBuoy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = NamosBuoy::new().tuples(4_000).seed(11).generate();
    let s = trace.stats("tmpr4").expect("buoy attr").mean_abs_delta;
    let tuples = trace.tuples();
    println!(
        "subscriber churn over one live deployment ({} tuples)\n",
        tuples.len()
    );

    let mut mw = Middleware::new(Overlay::new(Topology::ring(9).build()));
    let src = mw.register_source("buoy", NodeId(0), trace.schema().clone())?;
    let dash1 = mw.subscribe(
        "dash1",
        NodeId(2),
        src,
        FilterSpec::delta("tmpr4", s * 3.0, s * 1.4),
    )?;
    let _dash2 = mw.subscribe(
        "dash2",
        NodeId(4),
        src,
        FilterSpec::delta("tmpr4", s * 2.5, s * 1.2),
    )?;
    mw.deploy()?;

    let mut phase_start_bytes = 0u64;
    let mut phase = |mw: &Middleware, label: &str, n_tuples: usize| -> f64 {
        let bytes = mw.overlay().total_bytes() - phase_start_bytes;
        phase_start_bytes = mw.overlay().total_bytes();
        let per_tuple = bytes as f64 / n_tuples as f64;
        println!("  {label:<44} {per_tuple:>8.1} bytes/tuple on the wire");
        per_tuple
    };

    // --- phase 1: steady state ------------------------------------
    mw.push_batch(src, tuples[..1_000].to_vec())?;
    phase(&mw, "phase 1: two modest dashboards", 1_000);

    // --- phase 2: a greedy subscriber joins live --------------------
    let greedy = mw.subscribe(
        "raw-feed",
        NodeId(7),
        src,
        FilterSpec::delta("tmpr4", s * 0.3, s * 0.05),
    )?;
    mw.push_batch(src, tuples[1_000..2_000].to_vec())?;
    let before = phase(&mw, "phase 2: greedy `raw-feed` joined mid-stream", 1_000);

    // --- phase 3: isolate it via live regrouping --------------------
    let parts = mw.regroup(src, GroupingStrategy::BySelectivity { isolate_above: 0.5 })?;
    println!(
        "  regroup(BySelectivity): {} engine part(s), greedy isolated: {}",
        parts.len(),
        parts.iter().any(|p| p == &vec![greedy]),
    );
    mw.push_batch(src, tuples[2_000..3_000].to_vec())?;
    let isolated = phase(&mw, "phase 3: after BySelectivity regroup", 1_000);
    println!(
        "    -> regrouping recovered {:.0}% of the per-tuple bandwidth",
        (1.0 - isolated / before) * 100.0
    );

    // --- phase 4: retune one app, drop the greedy one ---------------
    mw.resubscribe(dash1, FilterSpec::delta("tmpr4", s * 5.0, s * 2.4))?;
    mw.unsubscribe(greedy)?;
    mw.push_batch(src, tuples[3_000..].to_vec())?;
    mw.finish(src)?;
    let calm = phase(&mw, "phase 4: dash1 retuned, raw-feed gone", 1_000);
    println!(
        "    -> unsubscribe + retune recovered {:.0}% vs the churn peak",
        (1.0 - calm / before) * 100.0
    );

    // --- the report follows the subscriptions ----------------------
    let report = mw.report(src)?;
    println!(
        "\n  engine lifetime: {} inputs, {} outputs (O/I {:.3}), {} multicast messages",
        report.engine.input_tuples,
        report.engine.output_tuples,
        report.engine.oi_ratio(),
        report.messages
    );
    for app in &report.per_app {
        println!(
            "  {:<10} {:<9} {:>6} tuples delivered, mean e2e {:>7}",
            app.name,
            if app.active { "(live)" } else { "(left)" },
            app.tuples,
            app.mean_e2e_latency
        );
    }
    let gone = report
        .per_app
        .iter()
        .find(|a| a.handle == greedy)
        .expect("stats keyed by handle survive unsubscribe");
    assert!(!gone.active && gone.tuples > 0);

    // churn on an unknown handle still fails loudly
    assert!(matches!(
        mw.unsubscribe(greedy),
        Err(SolarError::NotSubscribed(_))
    ));
    println!("\n  one deployment, four rosters, zero teardowns.");
    Ok(())
}
