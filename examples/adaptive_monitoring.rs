//! Adaptive monitoring: the paper's §4.8/§6.2 control loop.
//!
//! **Paper scenario:** the §4.8 overhead discussion and §6.2 future-work
//! proposal — monitor whether group-awareness still pays, and regroup
//! when it does not. Group-aware filtering only pays when applications'
//! candidate sets overlap. This demo runs two groups — a healthy one and
//! one polluted by a "bad" filter that wants most of the source — and
//! shows the online [`BenefitMonitor`] cost model recommending what the
//! paper proposes: keep group-awareness, or isolate the greedy consumer
//! via a regrouping strategy.
//!
//! **Knobs exercised:** `BenefitMonitor::assess` over engine metrics,
//! selectivity/benefit thresholds, and `gasf_solar::partition` with each
//! `GroupingStrategy`.
//!
//! ```text
//! cargo run --example adaptive_monitoring
//! ```

use gasf_core::prelude::*;
use gasf_net::{NodeId, Topology};
use gasf_solar::{partition, GroupingStrategy};
use gasf_sources::NamosBuoy;

fn assess(label: &str, specs: Vec<FilterSpec>) -> Result<BenefitReport, Error> {
    let trace = NamosBuoy::new().tuples(4_000).seed(21).generate();
    let mut engine = GroupEngine::builder(trace.schema().clone())
        .algorithm(Algorithm::RegionGreedy)
        .filters(specs)
        .build()?;
    engine.run_into(trace.into_tuples(), &mut NullSink)?;
    let report = BenefitMonitor::new().assess(engine.metrics());
    println!("{label}:");
    for f in &report.selectivity {
        println!(
            "  filter {}: admits {:>5.1}% of the source, references {:>5.1}%",
            f.filter,
            f.admission_rate * 100.0,
            f.reference_rate * 100.0
        );
    }
    println!(
        "  measured benefit over estimated SI: {:>5.1}%",
        report.benefit * 100.0
    );
    println!("  recommendation: {:?}\n", report.recommendation);
    Ok(report)
}

fn main() -> Result<(), Error> {
    println!("adaptive group-awareness: online cost model (§4.8/§6.2)\n");
    let trace = NamosBuoy::new().tuples(4_000).seed(21).generate();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;

    // A healthy group: moderate granularities with generous slack.
    assess(
        "healthy group",
        vec![
            FilterSpec::delta("tmpr4", s * 2.0, s),
            FilterSpec::delta("tmpr4", s * 4.0, s * 2.0),
            FilterSpec::delta("tmpr4", s * 3.0, s * 1.5),
        ],
    )?;

    // The same group polluted by a filter that wants nearly raw data.
    let report = assess(
        "group with a greedy consumer",
        vec![
            FilterSpec::delta("tmpr4", s * 2.0, s),
            FilterSpec::delta("tmpr4", s * 4.0, s * 2.0),
            FilterSpec::delta("tmpr4", s * 0.4, s * 0.05),
        ],
    )?;

    // Act on the advice: regroup.
    if let Recommendation::IsolateFilters { filters } = &report.recommendation {
        let rates: Vec<f64> = report
            .selectivity
            .iter()
            .map(|f| f.reference_rate)
            .collect();
        let parts = partition(
            GroupingStrategy::BySelectivity { isolate_above: 0.6 },
            &Topology::ring(7).build(),
            &[NodeId(1), NodeId(2), NodeId(3)],
            &rates,
            rates.len(),
        );
        println!("regrouping: isolate filter(s) {filters:?} -> engine groups {parts:?}");
        println!("the modest filters keep sharing; the greedy one runs self-interested.");
    }
    Ok(())
}
