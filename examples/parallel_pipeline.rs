//! Parallel pipeline: the sharded engine and shard-aware multicast.
//!
//! Reproduces the paper's ten-group workload shape (Ch. 5, Table 5.2) at
//! production scale: ten independent filter groups share one NAMOS buoy
//! stream, each group hosted by its own `GroupEngine` route inside a
//! [`ShardedEngine`] that hash-partitions the routes across worker
//! threads. The demo verifies the headline guarantee — merged output is
//! **byte-identical at every parallelism** — times the sweep, and sends
//! the merged emissions down a shard-aware multicast group
//! (`gasf_net::ShardedGroup`: one Scribe tree per producer shard, so
//! parallel shards don't serialise through a single rendezvous root).
//!
//! Knobs exercised: `ShardedEngineBuilder::{parallelism, route,
//! batch_size}`, `Overlay::{create_sharded_group,
//! multicast_emission_sharded}`.
//!
//! ```text
//! cargo run --release --example parallel_pipeline
//! ```

use gasf_core::prelude::*;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_sources::NamosBuoy;
use std::time::Instant;

/// Ten DC1 groups over the buoy channels, three filters each.
fn groups(trace: &gasf_sources::Trace) -> Vec<(String, Vec<FilterSpec>)> {
    let attrs = [
        "fluoro", "tmpr1", "tmpr2", "tmpr3", "tmpr4", "tmpr5", "tmpr6",
    ];
    (0..10)
        .map(|i| {
            let attr = attrs[i % attrs.len()];
            let s = trace.stats(attr).expect("buoy attr").mean_abs_delta;
            let specs = (1..=3)
                .map(|k| {
                    let delta = s * (1.5 + k as f64 + i as f64 * 0.2);
                    FilterSpec::delta(attr, delta, delta * 0.5)
                })
                .collect();
            (format!("G{} ({attr})", i + 1), specs)
        })
        .collect()
}

fn build(
    trace: &gasf_sources::Trace,
    groups: &[(String, Vec<FilterSpec>)],
    parallelism: usize,
) -> Result<ShardedEngine, Error> {
    let mut builder = ShardedEngine::builder().parallelism(parallelism);
    for (name, specs) in groups {
        builder = builder.route(
            name,
            GroupEngine::builder(trace.schema().clone()).filters(specs.clone()),
        );
    }
    builder.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = NamosBuoy::new().tuples(4_000).seed(7).generate();
    let groups = groups(&trace);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "ten groups x {} tuples, {} hardware thread(s)\n",
        trace.len(),
        cores
    );

    // --- determinism + scaling sweep -------------------------------
    let mut reference = VecSink::new();
    let mut baseline_ms = 0.0;
    for parallelism in [1usize, 2, 4, 8] {
        let mut engine = build(&trace, &groups, parallelism)?;
        let mut out = VecSink::new();
        let t0 = Instant::now();
        engine.run_into(trace.tuples().iter().cloned(), &mut out)?;
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        if parallelism == 1 {
            baseline_ms = wall;
            reference = out;
        } else {
            assert_eq!(
                out.as_slice(),
                reference.as_slice(),
                "sharded output must be byte-identical at every parallelism"
            );
        }
        let m = engine.metrics();
        println!(
            "  {parallelism} shard(s) ({} spawned): {wall:>7.1} ms wall, \
             {:>5.2}x vs 1 shard, {} emissions, O/I {:.3}",
            engine.shards(),
            baseline_ms / wall,
            m.emissions,
            m.oi_ratio(),
        );
    }
    println!("  merged emission streams identical across all parallelism levels\n");

    // --- shard-aware dissemination ---------------------------------
    // Ten subscriber nodes on a ring; the sharded source sends each
    // emission down the tree owned by its tuple's shard.
    let mut overlay = Overlay::new(Topology::ring(10).build());
    let members: Vec<NodeId> = (0..10).map(NodeId).collect();
    let sharded_group = overlay.create_sharded_group("buoy", &members, 4)?;
    let roots: Vec<String> = sharded_group
        .ids()
        .iter()
        .map(|&g| overlay.group_root(g).map(|r| r.to_string()))
        .collect::<Result<_, _>>()?;
    println!("  4 shard trees rooted at {}", roots.join(", "));

    let mut bytes = 0u64;
    for emission in reference.as_slice() {
        let d = overlay.multicast_emission_sharded(&sharded_group, NodeId(0), emission, |f| {
            // recipients of route r land on ring nodes by filter index
            NodeId((f.index() as u32 % 9) + 1)
        })?;
        bytes += d.bytes_on_wire;
    }
    println!(
        "  {} emissions multicast, {} messages, {bytes} bytes on wire",
        reference.len(),
        overlay.messages()
    );
    Ok(())
}
