//! Out-of-order ingestion: watermarks, bounded reordering, late tuples.
//!
//! **Paper scenario:** the prototype's filtering service assumes each
//! source proxy hands it an event-time-ordered stream (§4.1.1). Real
//! transports break that assumption — retries, parallel links and
//! sensor-side buffering jitter arrival order. This demo streams a
//! NAMOS buoy trace whose *arrival* order is shuffled within a disorder
//! bound (plus a few long stragglers) through the middleware's
//! event-time front end, and shows that:
//!
//! 1. every delivered tuple count matches the perfectly ordered run —
//!    the reorder buffer makes disorder invisible downstream,
//! 2. stragglers beyond the bound follow the configured late policy:
//!    counted-and-dropped, or disseminated as flagged patches,
//! 3. windowed aggregates close exactly when the watermark passes the
//!    window end — event time, not arrival time.
//!
//! **Knobs exercised:** `MiddlewareConfig::event_time`,
//! `Disorder::bounded`/`stragglers`, `LatePolicy::{Drop, EmitPatch}`,
//! `Middleware::event_time_stats`, `WindowFilter` over a watermark.
//!
//! ```text
//! cargo run --example out_of_order
//! ```

use gasf_core::event_time::{
    Aggregate, EventTimeConfig, LatePolicy, ReorderBuffer, WindowFilter, WindowKind,
};
use gasf_core::quality::FilterSpec;
use gasf_core::time::Micros;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, MiddlewareConfig, SourceId};
use gasf_sources::{Disorder, NamosBuoy, Trace};

const BOUND_MS: u64 = 40;

fn middleware(trace: &Trace, policy: LatePolicy) -> (Middleware, SourceId) {
    let config = MiddlewareConfig {
        event_time: Some(EventTimeConfig::bounded(Micros::from_millis(BOUND_MS)).late(policy)),
        ..Default::default()
    };
    let mut mw = Middleware::with_config(Overlay::new(Topology::ring(7).build()), config);
    let src = mw
        .register_source("buoy", NodeId(0), trace.schema().clone())
        .unwrap();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let _ = mw
        .subscribe(
            "lab",
            NodeId(3),
            src,
            FilterSpec::delta("tmpr4", s * 2.0, s),
        )
        .unwrap();
    let _ = mw
        .subscribe(
            "dashboard",
            NodeId(5),
            src,
            FilterSpec::delta("fluoro", s * 3.0, s),
        )
        .unwrap();
    mw.deploy().unwrap();
    (mw, src)
}

fn main() {
    let buoy = NamosBuoy::new().tuples(2_000).seed(42);
    let disorder = Disorder::bounded(Micros::from_millis(BOUND_MS))
        .seed(7)
        .stragglers(500, Micros::from_millis(300));
    let (trace, arrivals) = buoy.generate_arrivals(disorder);

    let moved = arrivals
        .iter()
        .zip(trace.tuples())
        .filter(|(a, t)| a.seq() != t.seq())
        .count();
    println!(
        "trace: {} tuples, {} arrive out of position (bound {BOUND_MS} ms + stragglers)\n",
        trace.len(),
        moved
    );

    // Reference: the same trace in perfect event-time order, no front end.
    let mut mw = Middleware::new(Overlay::new(Topology::ring(7).build()));
    let src = mw
        .register_source("buoy", NodeId(0), trace.schema().clone())
        .unwrap();
    let s = trace.stats("tmpr4").unwrap().mean_abs_delta;
    let _ = mw
        .subscribe(
            "lab",
            NodeId(3),
            src,
            FilterSpec::delta("tmpr4", s * 2.0, s),
        )
        .unwrap();
    let _ = mw
        .subscribe(
            "dashboard",
            NodeId(5),
            src,
            FilterSpec::delta("fluoro", s * 3.0, s),
        )
        .unwrap();
    mw.deploy().unwrap();
    let ordered = mw.run_trace(src, trace.tuples().iter().cloned()).unwrap();

    for policy in [LatePolicy::Drop, LatePolicy::EmitPatch] {
        let (mut mw, src) = middleware(&trace, policy);
        let report = mw.run_trace(src, arrivals.iter().cloned()).unwrap();
        let stats = mw.event_time_stats(src).unwrap();
        println!("late policy {policy:?}:");
        println!(
            "  released {} tuples in event-time order, watermark ended at {:?}",
            stats.released,
            stats.watermark.unwrap()
        );
        println!(
            "  late beyond the bound: {} dropped, {} patched",
            stats.late_dropped, stats.patches
        );
        for (app, ord) in report.per_app.iter().zip(&ordered.per_app) {
            println!(
                "  {:<9} delivered {:>3} tuples (ordered run: {:>3}{})",
                app.name,
                app.tuples,
                ord.tuples,
                if policy == LatePolicy::EmitPatch {
                    " + patches"
                } else {
                    ""
                }
            );
        }
        println!();
    }

    // Windowed aggregation under the same disorder: a 2 s tumbling mean
    // over tmpr4, windows closing as the watermark advances.
    let attr = trace.schema().attr("tmpr4").unwrap();
    let kind = WindowKind::Tumbling {
        size: Micros::from_millis(2_000),
    };
    let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::from_millis(BOUND_MS)));
    let mut wf = WindowFilter::new(attr, kind, Aggregate::Mean);
    let mut released = Vec::new();
    let mut windows = Vec::new();
    for t in &arrivals {
        let _ = buf.push_into(t.clone(), &mut released);
        for r in released.drain(..) {
            wf.observe(&r);
        }
        if let Some(w) = buf.watermark().current() {
            wf.advance_into(w, &mut windows);
        }
    }
    buf.flush_into(&mut released);
    for r in released.drain(..) {
        wf.observe(&r);
    }
    wf.finish_into(&mut windows);
    println!("2 s tumbling mean of tmpr4 (closed at watermark passage):");
    for w in windows.iter().take(5) {
        println!(
            "  [{:>5.1} s, {:>5.1} s)  mean {:.3}  ({} samples)",
            w.start.as_secs_f64(),
            w.end.as_secs_f64(),
            w.value,
            w.count
        );
    }
    println!("  … {} windows total", windows.len());
}
