//! Failover: checkpoint/restore fault tolerance, end to end.
//!
//! **Paper scenario:** the middleware is meant to run *long-lived* on a
//! Scribe-style overlay where brokers crash, subscriber hosts die and
//! filter workers get recycled — Solar's deployments measured in months,
//! not trace replays. This demo drives all three recovery layers without
//! losing determinism: (1) a sharded engine streams a NAMOS buoy trace,
//! takes a safe-point **checkpoint barrier**, then has every worker shard
//! **killed** mid-stream — the respawn + bounded replay log reproduces
//! the fault-free output byte for byte; (2) the same snapshot restores a
//! **whole new engine** after a simulated process crash, which replays
//! the suffix to the identical tail; (3) a live middleware deployment
//! survives a **failed interior overlay node** (Scribe re-graft; every
//! subscriber keeps receiving) and a middleware **crash + recover** that
//! continues per-app delivery reports under the same stable handles.
//!
//! **Knobs exercised:** `ShardedEngine::{checkpoint, kill_shard,
//! restore, respawns}`, `GroupEngine::{snapshot_into, restore}`,
//! `Overlay::{fail_node, recover_node}` + `Delivery::repair_bytes`,
//! `Middleware::{checkpoint, recover, fail_node}`.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use gasf_core::prelude::*;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, MiddlewareConfig};
use gasf_sources::NamosBuoy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = NamosBuoy::new().tuples(3_000).seed(13).generate();
    let s = trace.stats("tmpr4").expect("buoy attr").mean_abs_delta;
    let tuples = trace.tuples();
    let group = || {
        GroupEngine::builder(trace.schema().clone())
            .filter(FilterSpec::delta("tmpr4", s * 2.0, s))
            .filter(FilterSpec::delta("tmpr4", s * 3.0, s * 1.4))
            .filter(FilterSpec::delta("tmpr4", s * 2.5, s * 1.2))
    };

    // ------------------------------------------------------------------
    // 1. kill every worker shard mid-stream; output stays byte-identical
    // ------------------------------------------------------------------
    println!("1. worker crash + transparent respawn (2 shards, checkpoint @1000)");
    let run = |kill: bool| -> Result<(Vec<Emission>, u32), gasf_core::Error> {
        let mut engine = ShardedEngine::builder()
            .parallelism(2)
            .batch_size(64)
            .route("buoy", group())
            .build()?;
        let mut out = VecSink::new();
        for (i, t) in tuples.iter().enumerate() {
            if i == 1_000 {
                engine.checkpoint(&mut out)?;
            }
            if kill && i == 2_000 {
                for shard in 0..engine.shards() {
                    engine.kill_shard(shard)?;
                }
            }
            engine.push_into(t.clone(), &mut out)?;
        }
        engine.finish_into(&mut out)?;
        Ok((out.into_vec(), engine.respawns()))
    };
    let (fault_free, zero_respawns) = run(false)?;
    let (survived, respawns) = run(true)?;
    assert_eq!(zero_respawns, 0);
    assert_eq!(survived, fault_free, "respawned output must be identical");
    println!(
        "   killed every shard @2000 → {respawns} respawn(s), {} emissions, byte-identical ✔\n",
        survived.len()
    );

    // ------------------------------------------------------------------
    // 2. whole-process crash: persist the checkpoint, restore, replay
    // ------------------------------------------------------------------
    println!("2. process crash + EngineSnapshot restore (checkpoint @1500)");
    let mut engine = ShardedEngine::builder()
        .parallelism(2)
        .route("buoy", group())
        .build()?;
    let mut pre = VecSink::new();
    for t in &tuples[..1_500] {
        engine.push_into(t.clone(), &mut pre)?;
    }
    let snapshot = engine.checkpoint(&mut pre)?;
    let mut post = VecSink::new();
    for t in &tuples[1_500..] {
        engine.push_into(t.clone(), &mut post)?;
    }
    engine.finish_into(&mut post)?;
    drop(engine); // "the process dies" — only the snapshot survives

    let mut restored = ShardedEngine::restore(&snapshot)?;
    let mut replayed = VecSink::new();
    for t in &tuples[1_500..] {
        restored.push_into(t.clone(), &mut replayed)?;
    }
    restored.finish_into(&mut replayed)?;
    assert_eq!(replayed.as_slice(), post.as_slice());
    println!(
        "   snapshot @{} tuples ({} route(s)) → restored engine replayed {} emissions, \
         byte-identical ✔\n",
        snapshot.input_tuples(),
        snapshot.routes(),
        replayed.len()
    );

    // ------------------------------------------------------------------
    // 3. overlay node failure + middleware crash/recover
    // ------------------------------------------------------------------
    println!("3. overlay self-repair + middleware recover (ring of 9)");
    let mut mw = Middleware::with_config(
        Overlay::new(Topology::ring(9).build()),
        MiddlewareConfig::default(),
    );
    let src = mw.register_source("buoy", NodeId(0), trace.schema().clone())?;
    for (name, node) in [("dash", 2u32), ("logger", 4), ("alarm", 6)] {
        let _ = mw.subscribe(
            name,
            NodeId(node),
            src,
            FilterSpec::delta("tmpr4", s * 2.0, s),
        )?;
    }
    mw.deploy()?;
    mw.push_batch(src, tuples[..1_000].to_vec())?;

    // an interior forwarder dies; Scribe re-grafts its children
    let mut repair = gasf_net::RepairReport::default();
    for forwarder in [1u32, 3, 5] {
        let r = mw.fail_node(NodeId(forwarder))?;
        repair.regrafts += r.regrafts;
        repair.reroots += r.reroots;
        repair.control_bytes += r.control_bytes;
    }
    println!(
        "   failed forwarders n1/n3/n5 → {} re-graft(s), {} re-root(s), {} control bytes",
        repair.regrafts, repair.reroots, repair.control_bytes
    );
    mw.push_batch(src, tuples[1_000..2_000].to_vec())?;

    // checkpoint, crash, recover on a fresh overlay, finish the stream
    let snap = mw.checkpoint()?;
    drop(mw); // middleware process dies
    let mut mw = Middleware::recover(Overlay::new(Topology::ring(9).build()), &snap)?;
    mw.push_batch(src, tuples[2_000..].to_vec())?;
    mw.finish(src)?;
    let report = mw.report(src)?;
    println!(
        "   recovered middleware finished the stream: O/I {:.3}, {} subscriptions continued",
        report.engine.oi_ratio(),
        report.per_app.len()
    );
    for app in &report.per_app {
        assert!(app.tuples > 0, "{} lost its deliveries", app.name);
        println!(
            "     {:>6}  {:>5} tuples  mean e2e {:>7.1} ms  (handle {} preserved)",
            app.name,
            app.tuples,
            app.mean_e2e_latency.as_millis_f64(),
            app.handle
        );
    }
    println!("\nall three recovery layers held the determinism contract ✔");
    Ok(())
}
