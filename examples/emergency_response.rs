//! Emergency response: the §5.5.1 chlorine train-derailment scenario.
//!
//! **Paper scenario:** §5.5.1's Baton Rouge train-derailment exercise
//! (chlorine release), run through the full Fig. 4.1 middleware stack.
//! A chlorine-concentration source (Gaussian-puff plume model) feeds three
//! command-and-control applications over a wireless-mesh overlay:
//! fire prediction (finest granularity, tight latency), responder safety
//! assessment, and a situation-awareness web portal (coarsest). The demo
//! compares self-interested and group-aware dissemination end to end —
//! filtering, tuple-level multicast, bandwidth and latency — over the
//! middleware's sink-based pipeline (source → engine → multicast sink):
//! emissions stream from the filtering engine's release path straight down
//! the overlay's multicast trees.
//!
//! **Knobs exercised:** `Middleware` registration/subscription/deploy,
//! `MiddlewareConfig::algorithm`, per-filter latency tolerances, and a
//! bandwidth-constrained `Topology::grid` overlay.
//!
//! ```text
//! cargo run --example emergency_response
//! ```

use gasf_core::engine::Algorithm;
use gasf_core::quality::FilterSpec;
use gasf_core::time::Micros;
use gasf_net::{NodeId, Overlay, Topology};
use gasf_solar::{Middleware, MiddlewareConfig, RunReport, SolarError};
use gasf_sources::ChlorinePlume;

fn scenario(algorithm: Algorithm) -> Result<RunReport, SolarError> {
    // Mesh of routers on fire trucks / police cars / ambulances (§2.2.1):
    // a 3x3 grid, source proxy at a corner.
    let overlay = Overlay::new(Topology::grid(3, 3).bandwidth_bps(1_000_000).build());
    let mut mw = Middleware::with_config(
        overlay,
        MiddlewareConfig {
            algorithm,
            ..Default::default()
        },
    );

    let trace = ChlorinePlume::new().tuples(5_000).seed(2026).generate();
    let stats = trace.stats("chlorine").expect("chlorine attr");
    let s = stats.mean_abs_delta * 2.0;

    let src = mw.register_source("chlorine-sensors", NodeId(0), trace.schema().clone())?;
    let _ = mw.subscribe(
        "fire-prediction",
        NodeId(8),
        src,
        FilterSpec::delta("chlorine", s * 1.5, s * 0.7)
            .with_latency_tolerance(Micros::from_millis(100)),
    )?;
    let _ = mw.subscribe(
        "responder-safety",
        NodeId(4),
        src,
        FilterSpec::delta("chlorine", s * 2.5, s * 1.2),
    )?;
    let _ = mw.subscribe(
        "situation-portal",
        NodeId(6),
        src,
        FilterSpec::delta("chlorine", s * 4.0, s * 2.0),
    )?;
    mw.deploy()?;
    mw.run_trace(src, trace.into_tuples())
}

fn main() -> Result<(), SolarError> {
    println!("chlorine monitoring in a train-derail disaster (§5.5.1)\n");
    let si = scenario(Algorithm::SelfInterested)?;
    let ga = scenario(Algorithm::PerCandidateSet)?;

    for (name, r) in [("self-interested", &si), ("group-aware (PS)", &ga)] {
        println!("{name}:");
        println!("  O/I ratio            {:.3}", r.engine.oi_ratio());
        println!("  bytes on wire        {}", r.network_bytes);
        println!(
            "  mean e2e latency     {:.1} ms",
            r.mean_e2e_latency().as_millis_f64()
        );
        for app in &r.per_app {
            println!(
                "    {:<18} {:>5} tuples, {:>7.1} ms",
                app.name,
                app.tuples,
                app.mean_e2e_latency.as_millis_f64()
            );
        }
    }
    let saving = 1.0 - ga.network_bytes as f64 / si.network_bytes as f64;
    println!(
        "\ngroup-aware filtering saves a further {:.1}% of mesh bandwidth\n\
         (the paper's deployment measured ~15%), spending {:.2} ms of CPU\n\
         per 60 tuples (paper: < 250 ms on 2005 hardware).",
        saving * 100.0,
        ga.engine.cpu.as_secs_f64() * 1e3 / (ga.engine.input_tuples as f64 / 60.0)
    );
    Ok(())
}
