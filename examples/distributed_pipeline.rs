//! Distributed pipeline: the same middleware, a real wire underneath.
//!
//! Everything else in this workspace drains the engine's emissions into
//! the analytic overlay simulator. This demo swaps the transport under
//! the seam (`gasf_net::Transport`) for the `gasf-wire` length-prefixed
//! TCP transport and runs a whole deployment *inside one process*:
//! subscriber workers on threads, real localhost sockets between them,
//! per-peer connection multiplexing, and the distributed-equivalence
//! verdict at the end — every subscriber node received a stream
//! **byte-identical** to the in-process reference run, while per-link
//! bandwidth stays observable on both sides of the seam.
//!
//! For the multi-OS-process version of the same deployment, use the
//! control binary:
//!
//! ```text
//! cargo run --release -p gasf-wire --bin gasfctl -- \
//!     smoke examples/layouts/local3.toml --run-dir /tmp/gasf-local3
//! ```
//!
//! ```text
//! cargo run --release --example distributed_pipeline
//! ```

use gasf::wire::layout::HostLayout;
use gasf::wire::tcp::WireConfig;
use gasf::wire::worker::{run_source, run_subscriber};
use std::time::Duration;

const LAYOUT: &str = include_str!("layouts/local3.toml");

fn main() {
    let layout = HostLayout::from_toml(LAYOUT).expect("bundled layout parses");
    println!(
        "deployment {:?}: {} processes, {} overlay nodes, {} tuples",
        layout.name,
        layout.processes.len(),
        layout.total_nodes(),
        layout.workload.tuples,
    );

    let run_dir = std::env::temp_dir().join(format!("gasf-distributed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);

    // Subscriber workers: normally their own OS processes (gasfctl
    // spawns them); threads keep the demo self-contained. The protocol
    // between them is real TCP either way.
    let mut workers = Vec::new();
    for sub in layout.subscribers() {
        let (layout, id, dir) = (layout.clone(), sub.id, run_dir.clone());
        workers.push(std::thread::spawn(move || {
            run_subscriber(&layout, id, &dir, Duration::from_secs(120))
        }));
    }

    // The source: reference digest run, overlay baseline, then the wire
    // run + status collection + digest comparison.
    let outcome = run_source(&layout, &run_dir, WireConfig::default()).expect("deployment runs");
    for w in workers {
        w.join().expect("subscriber thread").expect("subscriber ok");
    }

    println!();
    println!(
        "wire transport: {} emission sends, {} bytes",
        outcome.wire_messages, outcome.wire_bytes
    );
    for link in &outcome.wire_links {
        println!("  {link}");
    }
    println!(
        "overlay baseline: {} bytes over {} simulated links",
        outcome.overlay_bytes,
        outcome.overlay_links.len()
    );

    println!();
    println!("per-node streams (count x chained-FNV hash), reference vs received:");
    for report in &outcome.received {
        for d in &report.per_node {
            let r = outcome.reference.get(&d.node).copied().unwrap_or_default();
            println!(
                "  node {} @ process {}: {} x {:016x}  |  {} x {:016x}",
                d.node, report.process, r.count, r.hash, d.count, d.hash
            );
        }
    }

    println!();
    assert!(outcome.equivalent, "mismatches: {:?}", outcome.mismatches);
    println!("EQUIVALENT: every subscriber node saw a byte-identical stream.");
    println!("full report: {}", run_dir.join("report.txt").display());
}
