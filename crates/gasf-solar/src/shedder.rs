//! Quality-aware load shedding: the degradation-ladder policy.
//!
//! §4.8 lists the remedies for a congested filtering stage in escalating
//! order; the paper's distinctive one is to *gracefully degrade the
//! quality requirements of the filters* — legal precisely because
//! group-aware applications already declared slack. The mechanism (the
//! per-spec ladder) lives in [`gasf_core::shed`]; this module is the
//! **policy**: a [`Shedder`] watches the credit gate's admission stream
//! and decides when each source climbs or descends its ladder.
//!
//! The rules are deliberately simple and deterministic:
//!
//! * `trigger` consecutive [`Throttled`](gasf_core::shed::PushOutcome)
//!   outcomes ⇒ climb one rung ([`ShedAction::Degrade`]). The middleware
//!   responds by retuning every headroom-declaring subscription of the
//!   source to `spec.degraded(rung)` — widening candidate sets /
//!   lowering `k` — through the ordinary epoch-based `update_filter`
//!   control path, so degradation lands at a safe point and is counted
//!   per subscription.
//! * `recover` consecutive accepted pushes ⇒ descend one rung
//!   ([`ShedAction::Restore`]); at rung 0 every subscription is back at
//!   its exact original spec — degradation is fully reversible.
//! * Only when the ladder is exhausted (top rung reached) does
//!   [`Shedder::should_drop`] permit the ingest driver to drop tuples,
//!   and every such drop is counted. Quality bends before data breaks.
//!
//! A shedder that never observes a `Throttled` outcome never issues any
//! action — the pressure-free run is byte-identical to a run without a
//! shedder, which `tests/tests/shedding_equivalence.rs` pins.

use serde::{Deserialize, Serialize};

/// Policy knobs for a per-source [`Shedder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedConfig {
    /// Consecutive throttled pushes that trigger one degradation rung.
    pub trigger: u32,
    /// Consecutive accepted pushes that restore one rung.
    pub recover: u32,
    /// Ladder cap across the source (individual subscriptions still
    /// clamp to their own declared `rungs`).
    pub max_rung: u8,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            trigger: 4,
            recover: 16,
            max_rung: 4,
        }
    }
}

/// What the policy wants done after an admission observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedAction {
    /// No change.
    None,
    /// Climb to this rung: retune headroom subscriptions to
    /// `spec.degraded(rung)`.
    Degrade(u8),
    /// Descend to this rung (0 = original specs).
    Restore(u8),
}

/// Per-source degradation-ladder state machine.
#[derive(Debug, Clone)]
pub struct Shedder {
    config: ShedConfig,
    rung: u8,
    throttled_streak: u32,
    accepted_streak: u32,
}

impl Shedder {
    /// A shedder at rung 0 (no degradation).
    pub fn new(config: ShedConfig) -> Self {
        Shedder {
            config,
            rung: 0,
            throttled_streak: 0,
            accepted_streak: 0,
        }
    }

    /// A shedder resuming at a captured rung (clamped to the ladder
    /// cap) with cleared streaks — the recovery path, where the restored
    /// engines already carry that rung's specs.
    pub fn restore_at(config: ShedConfig, rung: u8) -> Self {
        let mut s = Shedder::new(config);
        s.rung = rung.min(config.max_rung);
        s
    }

    /// The current ladder rung (0 = original quality).
    pub fn rung(&self) -> u8 {
        self.rung
    }

    /// The policy configuration.
    pub fn config(&self) -> ShedConfig {
        self.config
    }

    /// Observes a throttled push. Returns [`ShedAction::Degrade`] when
    /// the throttle streak warrants climbing a rung.
    pub fn on_throttled(&mut self) -> ShedAction {
        self.accepted_streak = 0;
        self.throttled_streak += 1;
        if self.throttled_streak >= self.config.trigger && self.rung < self.config.max_rung {
            self.throttled_streak = 0;
            self.rung += 1;
            return ShedAction::Degrade(self.rung);
        }
        ShedAction::None
    }

    /// Observes an accepted push. Returns [`ShedAction::Restore`] when
    /// the calm streak warrants descending a rung.
    pub fn on_accepted(&mut self) -> ShedAction {
        self.throttled_streak = 0;
        if self.rung == 0 {
            return ShedAction::None;
        }
        self.accepted_streak += 1;
        if self.accepted_streak >= self.config.recover {
            self.accepted_streak = 0;
            self.rung -= 1;
            return ShedAction::Restore(self.rung);
        }
        ShedAction::None
    }

    /// Whether the ladder is exhausted: the source sits at the top rung
    /// and is *still* being throttled. Only now may the ingest driver
    /// drop tuples (counting each one) — the paper's last resort.
    pub fn should_drop(&self) -> bool {
        self.rung >= self.config.max_rung && self.throttled_streak >= self.config.trigger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ShedConfig {
        ShedConfig {
            trigger: 2,
            recover: 3,
            max_rung: 2,
        }
    }

    #[test]
    fn climbs_on_sustained_throttle_only() {
        let mut s = Shedder::new(cfg());
        assert_eq!(s.on_throttled(), ShedAction::None);
        // an accepted push resets the streak
        assert_eq!(s.on_accepted(), ShedAction::None);
        assert_eq!(s.on_throttled(), ShedAction::None);
        assert_eq!(s.on_throttled(), ShedAction::Degrade(1));
        assert_eq!(s.rung(), 1);
        assert_eq!(s.on_throttled(), ShedAction::None);
        assert_eq!(s.on_throttled(), ShedAction::Degrade(2));
        // ladder capped
        assert_eq!(s.on_throttled(), ShedAction::None);
        assert_eq!(s.on_throttled(), ShedAction::None);
        assert_eq!(s.rung(), 2);
    }

    #[test]
    fn restores_on_sustained_calm_to_original() {
        let mut s = Shedder::new(cfg());
        for _ in 0..4 {
            s.on_throttled();
        }
        assert_eq!(s.rung(), 2);
        let mut actions = vec![];
        for _ in 0..6 {
            actions.push(s.on_accepted());
        }
        assert_eq!(
            actions,
            vec![
                ShedAction::None,
                ShedAction::None,
                ShedAction::Restore(1),
                ShedAction::None,
                ShedAction::None,
                ShedAction::Restore(0),
            ]
        );
        assert_eq!(s.rung(), 0);
        assert_eq!(s.on_accepted(), ShedAction::None, "idempotent at rung 0");
    }

    #[test]
    fn drops_only_when_ladder_exhausted_and_still_throttled() {
        let mut s = Shedder::new(cfg());
        assert!(!s.should_drop());
        for _ in 0..4 {
            s.on_throttled();
        }
        assert_eq!(s.rung(), 2);
        assert!(!s.should_drop(), "just reached top; streak was consumed");
        s.on_throttled();
        s.on_throttled();
        assert!(s.should_drop(), "top rung and still throttled");
        s.on_accepted();
        assert!(!s.should_drop(), "calm clears the drop state");
    }
}
