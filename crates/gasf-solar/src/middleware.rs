//! The Solar-like middleware: pub/sub + group-aware filtering service +
//! multicast dissemination (Fig. 4.1's software architecture).
//!
//! * the **quality specification manager** is the [`FilterSpec`] registry
//!   maintained through the subscription lifecycle
//!   ([`Middleware::subscribe`] / [`Middleware::unsubscribe`] /
//!   [`Middleware::resubscribe`]),
//! * the **group-aware filtering manager** instantiates the filtering
//!   engines — one or more *parts* per source — at
//!   [`Middleware::deploy`] time and keeps them in sync with live
//!   subscription churn afterwards,
//! * the **global state manager** lives inside the engines,
//! * the **output scheduler** is the engine's output strategy feeding the
//!   overlay's tuple-level multicast.
//!
//! The data path is a sink-based pipeline (Fig. 4.1 as an API): a
//! [`Pipeline`] wires source → engine(s) → [`MulticastSink`] — the
//! overlay dissemination implemented as an
//! [`EmissionSink`](gasf_core::sink::EmissionSink) — with
//! [`FlowMonitor`] accounting tee'd in via
//! [`Metered`](crate::flow::Metered).
//!
//! ## The subscription control plane
//!
//! Subscriptions are live: [`Middleware::subscribe`] returns a stable
//! [`SubscriptionHandle`] and — once deployed — attaches the application
//! mid-stream (the engine queues the filter for its next safe point and
//! the app's node joins the multicast tree in place).
//! [`Middleware::unsubscribe`] removes the filter at the same epoch
//! boundary, delivers everything already decided for the app, and prunes
//! the node from the tree once the boundary passes (on the sharded path,
//! where boundary emissions can trail by a few batches, the prune waits
//! for stream finish — a stale member costs nothing meanwhile, since
//! every send is pruned to its recipient subset);
//! [`Middleware::resubscribe`] retunes a live filter in place. Delivery
//! accounting follows the *subscription* (the handle), not the engine
//! slot: a removed app keeps its statistics in every report.
//! [`Middleware::regroup`] re-partitions a source's live subscribers with
//! [`crate::regroup::partition`] and migrates them across engines at an
//! epoch boundary — in-flight candidate sets are drained (and their
//! outputs disseminated) before the old engines are torn down, and their
//! metrics survive in the source's archive.
//!
//! The legacy one-shot protocol — subscribe everything, then
//! [`deploy`](Middleware::deploy), then stream — still works unchanged:
//! `deploy` is simply the static rebuild the live operations are defined
//! against.

use crate::backpressure::CreditGate;
use crate::flow::{FlowDecision, FlowMonitor, Metered};
use crate::graph::OperatorGraph;
use crate::regroup::{self, GroupingStrategy};
use crate::shedder::{ShedAction, ShedConfig, Shedder};
use gasf_core::batch::TupleBatch;
use gasf_core::bitset::FilterSet;
use gasf_core::candidate::FilterId;
use gasf_core::connector::{Chunk, SourceConnector};
use gasf_core::cuts::TimeConstraint;
use gasf_core::engine::{Algorithm, Emission, GroupEngine, OutputStrategy};
use gasf_core::event_time::{
    EventTimeConfig, LateOutcome, LateTuple, ReorderBuffer, ReorderSnapshot,
};
use gasf_core::metrics::{EngineMetrics, LatencyHistogram};
use gasf_core::quality::FilterSpec;
use gasf_core::schema::Schema;
use gasf_core::shard::ShardedEngine;
use gasf_core::shed::PushOutcome;
use gasf_core::sink::EmissionSink;
use gasf_core::snapshot::{EngineSnapshot, GroupSnapshot};
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use gasf_net::{GroupId, NodeId, Overlay, RepairReport, Transport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Identifier of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(usize);

/// Stable handle of one subscription, returned by
/// [`Middleware::subscribe`] and valid for the middleware's lifetime —
/// it keys delivery statistics even after
/// [`unsubscribe`](Middleware::unsubscribe), and is never recycled.
#[must_use = "the handle is the only way to unsubscribe/resubscribe or read per-app reports"]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionHandle(usize);

impl SubscriptionHandle {
    /// Dense index of the subscription (assignment order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

impl fmt::Display for SubscriptionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// Middleware errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum SolarError {
    /// A source name was registered twice.
    DuplicateSource(String),
    /// A referenced source/subscription id is unknown.
    UnknownId(String),
    /// A node id is outside the overlay's topology.
    UnknownNode(NodeId),
    /// The middleware was never deployed; call `deploy` first.
    NotDeployed,
    /// A source has no subscribers, so it cannot be run.
    NoSubscribers(String),
    /// The subscription is already unsubscribed.
    NotSubscribed(String),
    /// The node hosts a live source or subscription, so it cannot be
    /// failed from the middleware (detach it first).
    NodeInUse(NodeId),
    /// Error from the filtering engine.
    Core(gasf_core::Error),
    /// Error from the overlay network.
    Net(gasf_net::multicast::NetError),
}

impl fmt::Display for SolarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolarError::DuplicateSource(n) => write!(f, "source `{n}` already registered"),
            SolarError::UnknownId(what) => write!(f, "unknown id: {what}"),
            SolarError::UnknownNode(n) => write!(f, "node {n} is not in the topology"),
            SolarError::NotDeployed => write!(f, "middleware not deployed; call deploy()"),
            SolarError::NoSubscribers(n) => write!(f, "source `{n}` has no subscribers"),
            SolarError::NotSubscribed(h) => write!(f, "{h} is already unsubscribed"),
            SolarError::NodeInUse(n) => write!(
                f,
                "node {n} hosts a live source or subscription; detach it before failing the node"
            ),
            SolarError::Core(e) => write!(f, "filtering error: {e}"),
            SolarError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for SolarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolarError::Core(e) => Some(e),
            SolarError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gasf_core::Error> for SolarError {
    fn from(e: gasf_core::Error) -> Self {
        SolarError::Core(e)
    }
}

impl From<gasf_net::multicast::NetError> for SolarError {
    fn from(e: gasf_net::multicast::NetError) -> Self {
        SolarError::Net(e)
    }
}

/// Filtering-service configuration applied to every source engine.
#[derive(Debug, Clone, Copy)]
pub struct MiddlewareConfig {
    /// Second-stage algorithm.
    pub algorithm: Algorithm,
    /// Output strategy.
    pub strategy: OutputStrategy,
    /// Optional group time constraint (timely cuts).
    pub constraint: Option<TimeConstraint>,
    /// Worker shards per source engine (default 1 = inline). With more
    /// than one, each filter group runs behind a
    /// [`ShardedEngine`], moving filtering off the caller thread so it
    /// overlaps with multicast dissemination; output (and therefore all
    /// delivery accounting) is byte-identical to the inline path, and
    /// [`FlowMonitor`] samples are aggregated across the shards. (The
    /// byte-identical guarantee holds whenever the engine itself is
    /// input-deterministic; with a `constraint` set, timely-cut timing
    /// depends on measured wall clock on *both* paths, so no two runs —
    /// inline or sharded — are guaranteed identical there.)
    pub parallelism: usize,
    /// Event-time front end. `Some(cfg)` puts a per-source
    /// [`ReorderBuffer`] **ahead of** every part's engine: tuples may
    /// arrive in any order within `cfg.bound` of event time, the buffer
    /// releases them to the ordered path only once the source's watermark
    /// passes them, and tuples later than the bound are handled per
    /// `cfg.late` ([`LatePolicy`](gasf_core::event_time::LatePolicy)). `None` (the default) is the classic
    /// arrival-order contract: the stream must already be ordered.
    pub event_time: Option<EventTimeConfig>,
    /// Bounded ingress. `Some(capacity)` puts a [`CreditGate`] of that
    /// capacity in front of every source: the `try_push` family admits
    /// rows only while credits remain and returns
    /// [`PushOutcome::Throttled`] otherwise, leaving the input with the
    /// caller. `None` (the default) is the legacy unbounded contract —
    /// `try_push` always accepts.
    pub ingress_capacity: Option<u64>,
    /// Quality-aware load shedding. `Some(cfg)` attaches a per-source
    /// [`Shedder`]: sustained `Throttled` streaks climb the degradation
    /// ladder (subscriptions with declared
    /// [`ShedHeadroom`](gasf_core::shed::ShedHeadroom) are retuned to
    /// `spec.degraded(rung)` through the epoch-based control path),
    /// sustained calm restores them, and only an exhausted ladder lets
    /// the ingest driver drop tuples. A shedder that never observes
    /// pressure never changes anything — pressure-free runs are
    /// byte-identical to `None`.
    pub shedding: Option<ShedConfig>,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            algorithm: Algorithm::RegionGreedy,
            strategy: OutputStrategy::Earliest,
            constraint: None,
            parallelism: 1,
            event_time: None,
            ingress_capacity: None,
            shedding: None,
        }
    }
}

/// How [`Middleware::ingest`] replenishes a throttled source's credit
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantPolicy {
    /// Refill to capacity on every throttle. Filtering is synchronous,
    /// so everything admitted has fully drained by the time the driver
    /// regains control — this is the drain-barrier model, right for
    /// functional runs where the bound should never bite.
    Refill,
    /// Replenish according to the source's [`FlowDecision`]:
    /// [`Ok`](FlowDecision::Ok) refills the window,
    /// [`Shed`](FlowDecision::Shed) grants only the un-shed fraction,
    /// [`DegradeQuality`](FlowDecision::DegradeQuality) grants a
    /// one-credit trickle — keeping pressure on so the
    /// [`Shedder`] climbs the ladder. Always grants at least one
    /// credit: ingest never deadlocks.
    Adaptive,
}

/// Knobs for [`Middleware::ingest`].
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// Upper bound on rows per [`SourceConnector::next_chunk`] pull
    /// (clamped to at least 1).
    pub max_rows: usize,
    /// Credit replenishment under throttle.
    pub grant: GrantPolicy,
    /// Whether to [`finish`](Middleware::finish) the source at EOF.
    pub finish: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            max_rows: 1024,
            grant: GrantPolicy::Refill,
            finish: true,
        }
    }
}

/// What [`Middleware::ingest`] did with a connector's stream. Always
/// `rows == accepted + dropped` at EOF; `throttled` counts throttle
/// *events* (each may block many rows or one), reconciling exactly with
/// [`FlowMonitor::throttled`] minus any throttles observed outside the
/// driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Chunks pulled from the connector.
    pub chunks: u64,
    /// Rows pulled from the connector.
    pub rows: u64,
    /// Rows admitted through the gate and processed.
    pub accepted: u64,
    /// Rows shed after the ladder was exhausted (§4.8's last resort).
    pub dropped: u64,
    /// Throttle events the driver absorbed.
    pub throttled: u64,
}

/// A filter group's engine: inline, or behind the sharded path. Every
/// part hosts exactly one group (route 0 on the sharded path), so the
/// control plane addresses both uniformly.
#[derive(Debug)]
enum EngineHost {
    Single(Box<GroupEngine>),
    Sharded(Box<ShardedEngine>),
}

impl EngineHost {
    /// Lifetime engine metrics — every epoch folded together, aggregated
    /// across shards on the parallel path (complete once the stream is
    /// finished; see [`ShardedEngine::metrics`]).
    fn metrics(&self) -> EngineMetrics {
        match self {
            EngineHost::Single(e) => e.lifetime_metrics(),
            EngineHost::Sharded(e) => e.metrics(),
        }
    }

    fn add_filter(&mut self, spec: FilterSpec) -> Result<FilterId, gasf_core::Error> {
        match self {
            EngineHost::Single(e) => e.add_filter(spec),
            EngineHost::Sharded(e) => e.add_filter(0, spec),
        }
    }

    fn remove_filter(&mut self, id: FilterId) -> Result<(), gasf_core::Error> {
        match self {
            EngineHost::Single(e) => e.remove_filter(id),
            EngineHost::Sharded(e) => e.remove_filter(0, id),
        }
    }

    fn update_filter(&mut self, id: FilterId, spec: FilterSpec) -> Result<(), gasf_core::Error> {
        match self {
            EngineHost::Single(e) => e.update_filter(id, spec),
            EngineHost::Sharded(e) => e.update_filter(0, id, spec),
        }
    }
}

/// One filter group of a source: its engine, its multicast tree and the
/// stable [`FilterId`] → subscription mapping.
#[derive(Debug)]
struct PartEntry {
    engine: EngineHost,
    group: GroupId,
    /// The overlay group's creation name (kept so a checkpoint can
    /// recreate the identical tree on a fresh overlay).
    group_name: String,
    /// `filter_apps[id]` is the app index the engine's filter `id` serves.
    /// Append-only: vacated slots keep their mapping so emissions drained
    /// at an epoch boundary still resolve to the (now inactive) app.
    filter_apps: Vec<usize>,
    /// Nodes whose overlay membership should be dropped once the next
    /// epoch boundary has passed (their final deliveries are out).
    deferred_leaves: Vec<NodeId>,
}

#[derive(Debug)]
struct SourceEntry {
    name: String,
    node: NodeId,
    schema: Schema,
    /// Every subscription ever attached to this source (active or not).
    subscribers: Vec<usize>,
    /// Live filter groups (one in the common case; several after
    /// [`Middleware::regroup`]). Every part sees the full stream.
    parts: Vec<PartEntry>,
    /// Lifetime metrics of engines retired by regroup/unsubscribe, so
    /// their epochs survive in reports.
    archived: Vec<EngineMetrics>,
    /// Bumped by every regroup so retired multicast trees never collide
    /// with their replacements (reset by [`Middleware::deploy`]).
    generation: u64,
    flow: FlowMonitor,
    /// Event-time front end ([`MiddlewareConfig::event_time`]): one
    /// watermark + reorder buffer per source, sitting ahead of the part
    /// fan-out (every part sees the full stream, so reordering once ahead
    /// of all parts is equivalent to reordering per part).
    reorder: Option<ReorderBuffer>,
    /// Delivery-latency distribution across every subscriber of this
    /// source (filtering + overlay multicast), fixed-footprint so it
    /// stays cheap at soak scale.
    lat_hist: LatencyHistogram,
    /// Bounded ingress ([`MiddlewareConfig::ingress_capacity`]).
    gate: Option<CreditGate>,
    /// Quality-aware shedding policy ([`MiddlewareConfig::shedding`]).
    shedder: Option<Shedder>,
}

impl SourceEntry {
    /// The source's engine metrics, folded over every live part and
    /// every engine retired by churn — the single definition both
    /// [`Middleware::report`] and [`Pipeline::metrics`] present.
    fn folded_metrics(&self) -> EngineMetrics {
        let mut total = EngineMetrics::default();
        for m in &self.archived {
            total.merge(m);
        }
        for part in &self.parts {
            total.merge(&part.engine.metrics());
        }
        total
    }
}

#[derive(Debug)]
struct AppEntry {
    name: String,
    node: NodeId,
    /// Kept for introspection/debugging of multi-source deployments.
    #[allow(dead_code)]
    source: SourceId,
    /// The subscription's *declared* spec — always the rung-0 original.
    /// Shedding retunes the engine-side filter through `update_filter`
    /// without touching this, so restoration is exact.
    spec: FilterSpec,
    active: bool,
    tuples: u64,
    /// Aggregated end-to-end latency (mean = sum / tuples). An aggregate
    /// rather than per-delivery samples so a million-subscriber soak run
    /// doesn't grow memory per delivery.
    e2e_latency_sum_us: u64,
}

/// Per-subscription run statistics, keyed by the stable
/// [`SubscriptionHandle`] — entries survive
/// [`unsubscribe`](Middleware::unsubscribe) with their counters frozen.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// The subscription.
    pub handle: SubscriptionHandle,
    /// Its registered name.
    pub name: String,
    /// Whether the subscription is still live.
    pub active: bool,
    /// Tuples delivered to it.
    pub tuples: u64,
    /// Mean end-to-end latency (filtering + overlay multicast).
    pub mean_e2e_latency: Micros,
}

/// Event-time accounting of one source's reorder front end
/// ([`Middleware::event_time_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventTimeStats {
    /// Tuples currently held back waiting for the watermark.
    pub buffered: usize,
    /// Tuples released to the ordered path so far.
    pub released: u64,
    /// Late tuples dropped under [`LatePolicy::Drop`](gasf_core::event_time::LatePolicy::Drop).
    pub late_dropped: u64,
    /// Patch emissions produced under [`LatePolicy::EmitPatch`](gasf_core::event_time::LatePolicy::EmitPatch).
    pub patches: u64,
    /// The source's current watermark (`None` before the first tuple).
    pub watermark: Option<Micros>,
}

/// Result of running one trace through a source.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Engine metrics (O/I ratio, CPU, filtering latency, regions, …),
    /// folded over every epoch, part and retired engine of the source.
    pub engine: EngineMetrics,
    /// Bytes that crossed overlay links during this run.
    pub network_bytes: u64,
    /// Multicast messages sent during this run.
    pub messages: u64,
    /// Per-subscription delivery statistics (active and removed).
    pub per_app: Vec<AppReport>,
}

impl RunReport {
    /// Mean end-to-end latency across all applications.
    pub fn mean_e2e_latency(&self) -> Micros {
        let (sum, n) = self.per_app.iter().fold((0u64, 0u64), |(s, n), a| {
            (s + a.mean_e2e_latency.as_micros() * a.tuples, n + a.tuples)
        });
        match sum.checked_div(n) {
            Some(mean) => Micros(mean),
            None => Micros::ZERO,
        }
    }
}

/// A full middleware checkpoint: every part engine captured at its
/// safe-point boundary ([`Middleware::checkpoint`]), the subscription
/// roster with its per-app delivery statistics, the per-source
/// [`FlowMonitor`] accounting, and enough overlay membership to recreate
/// the multicast trees — everything [`Middleware::recover`] needs to
/// continue the deployment on a fresh overlay under the same stable
/// [`SubscriptionHandle`]s.
///
/// Derives the workspace serde markers; with the real `serde` crate this
/// is the unit of durable middleware state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiddlewareSnapshot {
    pub(crate) config: MiddlewareConfig,
    pub(crate) deployed: bool,
    pub(crate) sources: Vec<SourceState>,
    pub(crate) apps: Vec<AppState>,
}

impl MiddlewareSnapshot {
    /// Number of sources captured.
    pub fn sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of subscriptions captured (active and removed — handles and
    /// their statistics survive recovery).
    pub fn subscriptions(&self) -> usize {
        self.apps.len()
    }
}

/// One source's captured state (see [`MiddlewareSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SourceState {
    name: String,
    node: NodeId,
    schema: Schema,
    subscribers: Vec<usize>,
    archived: Vec<EngineMetrics>,
    generation: u64,
    flow: FlowMonitor,
    /// Watermark + reorder-buffer state (sources with an event-time
    /// front end): buffered-but-unreleased tuples survive the hop.
    reorder: Option<ReorderSnapshot>,
    /// Delivery-latency distribution (lifetime counters travel with the
    /// flow monitor).
    lat_hist: LatencyHistogram,
    /// The shedding ladder rung at the checkpoint boundary. The part
    /// engines' snapshots carry that rung's degraded specs, so recovery
    /// resumes the shedder at the same rung (streaks and the credit
    /// window restart fresh — a recovered node begins unpressured).
    shed_rung: u8,
    parts: Vec<PartState>,
}

/// One filter group's captured state (see [`MiddlewareSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PartState {
    engine: PartEngineState,
    group_name: String,
    /// Current multicast-tree membership; recreating the group with the
    /// full member list reproduces the identical tree (pinned by the
    /// overlay's join-equals-create property).
    members: Vec<NodeId>,
    filter_apps: Vec<usize>,
    deferred_leaves: Vec<NodeId>,
}

/// A part engine's safe-point snapshot, matching its execution host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum PartEngineState {
    Single(GroupSnapshot),
    Sharded(EngineSnapshot),
}

/// One subscription's captured state (see [`MiddlewareSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct AppState {
    name: String,
    node: NodeId,
    source: SourceId,
    spec: FilterSpec,
    active: bool,
    tuples: u64,
    e2e_latency_sum_us: u64,
}

/// The data-dissemination middleware.
///
/// ```rust
/// use gasf_solar::{Middleware, MiddlewareConfig};
/// use gasf_net::{Overlay, Topology, NodeId};
/// use gasf_core::prelude::*;
///
/// # fn main() -> Result<(), gasf_solar::SolarError> {
/// let overlay = Overlay::new(Topology::ring(7).build());
/// let mut mw = Middleware::new(overlay);
/// let schema = Schema::new(["t"]);
/// let src = mw.register_source("buoy", NodeId(0), schema.clone())?;
/// let ui = mw.subscribe("ui", NodeId(3), src, FilterSpec::delta("t", 1.0, 0.4))?;
/// mw.subscribe("log", NodeId(5), src, FilterSpec::delta("t", 2.0, 0.9))?;
/// mw.deploy()?;
/// let mut b = TupleBuilder::new(&schema);
/// let tuples: Vec<Tuple> = (0..20)
///     .map(|i| b.at_millis(10 * (i + 1)).set("t", i as f64).build().unwrap())
///     .collect();
/// // subscriptions stay live after deploy: retune `ui` mid-stream…
/// mw.push_batch(src, tuples[..10].to_vec())?;
/// mw.resubscribe(ui, FilterSpec::delta("t", 3.0, 1.2))?;
/// mw.push_batch(src, tuples[10..].to_vec())?;
/// mw.finish(src)?;
/// let report = mw.report(src)?;
/// assert!(report.engine.oi_ratio() <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Middleware {
    overlay: Overlay,
    config: MiddlewareConfig,
    sources: Vec<SourceEntry>,
    apps: Vec<AppEntry>,
    deployed: bool,
}

impl Middleware {
    /// Creates a middleware over an overlay with default configuration.
    pub fn new(overlay: Overlay) -> Self {
        Self::with_config(overlay, MiddlewareConfig::default())
    }

    /// Creates a middleware with explicit filtering configuration.
    pub fn with_config(overlay: Overlay, config: MiddlewareConfig) -> Self {
        Middleware {
            overlay,
            config,
            sources: Vec::new(),
            apps: Vec::new(),
            deployed: false,
        }
    }

    /// The overlay (traffic counters, topology).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Registers (advertises) a source at a node.
    ///
    /// # Errors
    /// [`SolarError::DuplicateSource`] / [`SolarError::UnknownNode`].
    pub fn register_source(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
        schema: Schema,
    ) -> Result<SourceId, SolarError> {
        let name = name.into();
        if self.sources.iter().any(|s| s.name == name) {
            return Err(SolarError::DuplicateSource(name));
        }
        if node.index() >= self.overlay.topology().len() {
            return Err(SolarError::UnknownNode(node));
        }
        self.sources.push(SourceEntry {
            name,
            node,
            schema,
            subscribers: Vec::new(),
            parts: Vec::new(),
            archived: Vec::new(),
            generation: 0,
            flow: FlowMonitor::default(),
            reorder: self.config.event_time.map(ReorderBuffer::new),
            lat_hist: LatencyHistogram::new(),
            gate: self.config.ingress_capacity.map(CreditGate::new),
            shedder: self.config.shedding.map(Shedder::new),
        });
        self.deployed = false;
        Ok(SourceId(self.sources.len() - 1))
    }

    /// Subscribes an application (at `node`) to a source with its quality
    /// requirement, returning a stable [`SubscriptionHandle`].
    ///
    /// Before [`deploy`](Self::deploy) the subscription is pending and
    /// the engine is built from the full roster at deploy time (the
    /// legacy one-shot path). After deploy the subscription goes **live**:
    /// the source's engine queues the filter for its next safe point and
    /// the app's node joins the multicast tree in place — no teardown, no
    /// replay.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] / [`SolarError::UnknownNode`]; on the
    /// live path additionally engine validation errors (the handle is
    /// *not* live when an error is returned).
    pub fn subscribe(
        &mut self,
        app_name: impl Into<String>,
        node: NodeId,
        source: SourceId,
        spec: FilterSpec,
    ) -> Result<SubscriptionHandle, SolarError> {
        if source.0 >= self.sources.len() {
            return Err(SolarError::UnknownId(source.to_string()));
        }
        if node.index() >= self.overlay.topology().len() {
            return Err(SolarError::UnknownNode(node));
        }
        let idx = self.apps.len();
        self.apps.push(AppEntry {
            name: app_name.into(),
            node,
            source,
            spec,
            active: true,
            tuples: 0,
            e2e_latency_sum_us: 0,
        });
        self.sources[source.0].subscribers.push(idx);
        if self.deployed {
            if let Err(e) = self.attach_live(source, idx) {
                self.apps[idx].active = false;
                return Err(e);
            }
        }
        Ok(SubscriptionHandle(idx))
    }

    /// Ends a subscription. Live (after deploy): the filter leaves its
    /// engine at the next safe point — outputs already decided for the
    /// app are still delivered at that boundary — and the node leaves the
    /// multicast tree once the boundary has passed (unless another active
    /// subscription still needs it). The handle keeps its statistics
    /// forever. The last subscriber of a part retires the whole part,
    /// draining its in-flight candidate sets through the multicast path.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] for a foreign handle,
    /// [`SolarError::NotSubscribed`] when already unsubscribed, engine
    /// errors on the live path.
    pub fn unsubscribe(&mut self, handle: SubscriptionHandle) -> Result<(), SolarError> {
        let idx = handle.0;
        if idx >= self.apps.len() {
            return Err(SolarError::UnknownId(handle.to_string()));
        }
        if !self.apps[idx].active {
            return Err(SolarError::NotSubscribed(handle.to_string()));
        }
        let source = self.apps[idx].source;
        let node = self.apps[idx].node;
        self.apps[idx].active = false;
        if !self.deployed {
            return Ok(());
        }
        let Some((part_idx, fid)) = self.locate(source, idx) else {
            return Ok(()); // source was never spawned
        };
        let part = &self.sources[source.0].parts[part_idx];
        let others_active = part
            .filter_apps
            .iter()
            .any(|&a| a != idx && self.apps[a].active);
        if !others_active {
            return self.retire_part(source.0, part_idx).map(|_| ());
        }
        let part = &mut self.sources[source.0].parts[part_idx];
        part.engine.remove_filter(fid)?;
        part.deferred_leaves.push(node);
        Ok(())
    }

    /// Retunes a live subscription: the same handle, a new quality spec.
    /// Live (after deploy) the filter restarts under the new spec at the
    /// engine's next safe point; pending it simply replaces the spec the
    /// next [`deploy`](Self::deploy) will use.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] / [`SolarError::NotSubscribed`], or
    /// engine validation errors (the old spec stays in force then).
    pub fn resubscribe(
        &mut self,
        handle: SubscriptionHandle,
        spec: FilterSpec,
    ) -> Result<(), SolarError> {
        let idx = handle.0;
        if idx >= self.apps.len() {
            return Err(SolarError::UnknownId(handle.to_string()));
        }
        if !self.apps[idx].active {
            return Err(SolarError::NotSubscribed(handle.to_string()));
        }
        let source = self.apps[idx].source;
        if self.deployed {
            if let Some((part_idx, fid)) = self.locate(source, idx) {
                // A source mid-shed installs the new spec at its current
                // rung; the declared original still lands in `apps` below.
                let rung = self.sources[source.0]
                    .shedder
                    .as_ref()
                    .map_or(0, Shedder::rung);
                let engine_spec = spec.degraded(rung).unwrap_or_else(|| spec.clone());
                self.sources[source.0].parts[part_idx]
                    .engine
                    .update_filter(fid, engine_spec)?;
            }
        }
        self.apps[idx].spec = spec;
        Ok(())
    }

    /// The live subscriptions of a source, in subscription order.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] for unknown sources.
    pub fn subscriptions(&self, source: SourceId) -> Result<Vec<SubscriptionHandle>, SolarError> {
        let s = self
            .sources
            .get(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        Ok(s.subscribers
            .iter()
            .copied()
            .filter(|&a| self.apps[a].active)
            .map(SubscriptionHandle)
            .collect())
    }

    /// Re-partitions a source's live subscribers with
    /// [`regroup::partition`] and migrates them across engines at an
    /// epoch boundary: every existing part is drained (in-flight
    /// candidate sets close, pending outputs are multicast) and retired —
    /// its metrics survive in the source's archive — then one fresh
    /// engine and multicast tree is spawned per non-empty partition part.
    /// The continuing stream flows through the new engines seamlessly.
    ///
    /// Reference rates for [`GroupingStrategy::BySelectivity`] come from
    /// the engines' own per-filter metrics (`references / input_tuples`).
    ///
    /// # Errors
    /// [`SolarError::NotDeployed`], [`SolarError::UnknownId`],
    /// [`SolarError::NoSubscribers`], or engine/overlay errors during the
    /// migration.
    pub fn regroup(
        &mut self,
        source: SourceId,
        strategy: GroupingStrategy,
    ) -> Result<Vec<Vec<SubscriptionHandle>>, SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        let s = self
            .sources
            .get(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        let active: Vec<usize> = s
            .subscribers
            .iter()
            .copied()
            .filter(|&a| self.apps[a].active)
            .collect();
        if active.is_empty() {
            return Err(SolarError::NoSubscribers(s.name.clone()));
        }
        let nodes: Vec<NodeId> = active.iter().map(|&a| self.apps[a].node).collect();
        // Remember where each live subscription sat before the drain.
        let table = self.locate_all(source);
        let locations: Vec<Option<(usize, FilterId)>> = active.iter().map(|&a| table[a]).collect();
        // Epoch boundary: drain and retire every live part, collecting
        // each engine's final-epoch metrics. Rates are computed *after*
        // the drain so they exist on every execution path (sharded
        // per-route metrics only materialise at finish).
        let mut recent: Vec<EngineMetrics> = Vec::new();
        while !self.sources[source.0].parts.is_empty() {
            recent.push(self.retire_part(source.0, 0)?);
        }
        let mut rates = vec![0.0; active.len()];
        for (k, loc) in locations.iter().enumerate() {
            let Some((part_idx, fid)) = loc else { continue };
            let Some(m) = recent.get(*part_idx) else {
                continue;
            };
            if m.input_tuples > 0 && fid.index() < m.per_filter.len() {
                rates[k] = m.per_filter[fid.index()].references as f64 / m.input_tuples as f64;
            }
        }
        let partition = regroup::partition(
            strategy,
            self.overlay.topology(),
            &nodes,
            &rates,
            active.len(),
        );
        self.sources[source.0].generation += 1;
        // …and spawn one fresh engine + tree per partition part.
        for part in &partition {
            if part.is_empty() {
                continue;
            }
            let app_idxs: Vec<usize> = part.iter().map(|&k| active[k]).collect();
            self.spawn_part(source.0, &app_idxs)?;
        }
        Ok(partition
            .into_iter()
            .map(|part| {
                part.into_iter()
                    .map(|k| SubscriptionHandle(active[k]))
                    .collect()
            })
            .collect())
    }

    /// Builds the operator graph implied by the current live
    /// subscriptions — the structure Fig. 2.2 propagates quality specs
    /// over.
    pub fn operator_graph(&self) -> OperatorGraph {
        let mut g = OperatorGraph::new();
        for s in &self.sources {
            let sid = g.add(s.name.clone(), crate::graph::OpKind::Source);
            for &app in &s.subscribers {
                let a = &self.apps[app];
                if !a.active {
                    continue;
                }
                let aid = g.add(
                    a.name.clone(),
                    crate::graph::OpKind::Application(a.spec.clone()),
                );
                g.connect(sid, aid).expect("source->app edge is acyclic");
            }
        }
        g
    }

    /// Instantiates the filtering engines and multicast groups from the
    /// live subscriptions — the *static rebuild* the dynamic lifecycle is
    /// defined against. Also the reset path: deploying again rebuilds
    /// every engine, clears the per-source archives and restarts the
    /// multicast generation.
    ///
    /// # Errors
    /// Propagates engine-construction and group-creation failures.
    pub fn deploy(&mut self) -> Result<(), SolarError> {
        for i in 0..self.sources.len() {
            let s = &mut self.sources[i];
            // Reclaim the previous deployment's trees before rebuilding
            // (post-regroup generations would otherwise leak forever).
            for part in s.parts.drain(..) {
                let _ = self.overlay.remove_group(part.group);
            }
            s.archived.clear();
            s.generation = 0;
            // Deploy restarts the stream, so the event-time front end
            // restarts with it (fresh watermark, empty buffer) — and so
            // do the ingress gate and the shedding ladder (engines are
            // rebuilt from the declared rung-0 specs below).
            s.reorder = self.config.event_time.map(ReorderBuffer::new);
            s.gate = self.config.ingress_capacity.map(CreditGate::new);
            s.shedder = self.config.shedding.map(Shedder::new);
            let active: Vec<usize> = s
                .subscribers
                .iter()
                .copied()
                .filter(|&a| self.apps[a].active)
                .collect();
            if active.is_empty() {
                continue;
            }
            self.spawn_part(i, &active)?;
        }
        self.deployed = true;
        Ok(())
    }

    /// Wires a source's dataflow — engine(s) → metered multicast sinks —
    /// and returns it ready to push tuples. This is the primary data
    /// path: emissions stream from each engine's release scratch straight
    /// into the overlay's multicast trees, with [`FlowMonitor`]
    /// accounting tee'd in, and no intermediate `Vec<Emission>` is ever
    /// built.
    ///
    /// # Errors
    /// [`SolarError::NotDeployed`] / [`SolarError::UnknownId`] /
    /// [`SolarError::NoSubscribers`].
    pub fn pipeline(&mut self, source: SourceId) -> Result<Pipeline<'_>, SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        let s = self
            .sources
            .get(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        if s.parts.is_empty() {
            return Err(SolarError::NoSubscribers(s.name.clone()));
        }
        Ok(Pipeline {
            mw: self,
            source: source.0,
            wire: None,
        })
    }

    /// Like [`pipeline`](Self::pipeline), but drains the source's
    /// emissions through an external [`Transport`] (e.g. the TCP wire in
    /// `gasf-wire`) instead of this middleware's in-process overlay.
    ///
    /// The overlay stays the *control plane* — groups, membership and
    /// subscription bookkeeping are unchanged — while the data plane
    /// (every emission the engines release) goes over the given wire.
    /// Per-subscription delivery statistics still accumulate locally;
    /// end-to-end latency contributions from the wire are measured by the
    /// receiving processes, so the transport's deliveries may report
    /// zero network latency.
    ///
    /// # Errors
    /// Same as [`pipeline`](Self::pipeline).
    pub fn pipeline_over<'m>(
        &'m mut self,
        source: SourceId,
        wire: &'m mut dyn Transport,
    ) -> Result<Pipeline<'m>, SolarError> {
        let mut p = self.pipeline(source)?;
        p.wire = Some(wire);
        Ok(p)
    }

    /// Pushes one tuple into a source's filtering service, disseminating
    /// any released outputs.
    ///
    /// Thin wrapper over [`pipeline`](Self::pipeline); prefer holding a
    /// pipeline (or calling [`push_batch`](Self::push_batch)) when feeding
    /// more than one tuple.
    ///
    /// # Errors
    /// [`SolarError::NotDeployed`], engine errors, network errors.
    pub fn process(&mut self, source: SourceId, tuple: Tuple) -> Result<(), SolarError> {
        self.pipeline(source)?.push(tuple)
    }

    /// Pushes a batch of tuples through a source's pipeline without
    /// re-wiring it per tuple.
    ///
    /// # Errors
    /// Same as [`process`](Self::process); stops at the first failure.
    pub fn push_batch(
        &mut self,
        source: SourceId,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), SolarError> {
        self.pipeline(source)?.push_batch(tuples)
    }

    /// Pushes columnar [`TupleBatch`]es through a source's pipeline — the
    /// batch-native feed (see [`Pipeline::push_columnar`]).
    ///
    /// # Errors
    /// Same as [`process`](Self::process); stops at the first failure.
    pub fn push_batches<'a>(
        &mut self,
        source: SourceId,
        batches: impl IntoIterator<Item = &'a Arc<TupleBatch>>,
    ) -> Result<(), SolarError> {
        let mut pipeline = self.pipeline(source)?;
        for b in batches {
            pipeline.push_columnar(b)?;
        }
        Ok(())
    }

    /// Ends a source's stream and disseminates the tail.
    ///
    /// # Errors
    /// Same as [`process`](Self::process).
    pub fn finish(&mut self, source: SourceId) -> Result<(), SolarError> {
        self.pipeline(source)?.finish()
    }

    /// The flow-control monitor's current advice for a source (§4.8:
    /// congested input buffers call for shedding or quality degradation).
    ///
    /// # Errors
    /// Returns [`SolarError::UnknownId`] for unknown sources.
    pub fn flow_decision(&self, source: SourceId) -> Result<FlowDecision, SolarError> {
        self.sources
            .get(source.0)
            .map(|s| s.flow.decision())
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))
    }

    /// Event-time statistics of a source's reorder front end. All zeros
    /// (with `buffered == 0`) for sources without
    /// [`MiddlewareConfig::event_time`].
    ///
    /// # Errors
    /// Returns [`SolarError::UnknownId`] for unknown sources.
    pub fn event_time_stats(&self, source: SourceId) -> Result<EventTimeStats, SolarError> {
        let s = self
            .sources
            .get(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        Ok(match &s.reorder {
            Some(buf) => EventTimeStats {
                buffered: buf.buffered(),
                released: buf.released(),
                late_dropped: buf.late_dropped(),
                patches: buf.patches(),
                watermark: buf.watermark().current(),
            },
            None => EventTimeStats::default(),
        })
    }

    // ------------------------------------------------------------------
    // bounded ingress: credit gate, quality-aware shedding, connectors
    // ------------------------------------------------------------------

    /// Pushes one tuple through the source's bounded ingress.
    ///
    /// Without [`MiddlewareConfig::ingress_capacity`] this is exactly
    /// [`pipeline`](Self::pipeline)`.push` and always returns
    /// [`PushOutcome::Accepted`]. With a credit gate the tuple is
    /// admitted only if a credit is available; otherwise the push
    /// returns [`PushOutcome::Throttled`] **without consuming the
    /// input** — the caller still owns the tuple and may retry after
    /// [`grant_credits`](Self::grant_credits) (or hold it, propagating
    /// the pressure outward).
    ///
    /// Each outcome is observed by the source's [`Shedder`] when one is
    /// configured: sustained throttling climbs the degradation ladder
    /// (headroom-declaring subscriptions are retuned to
    /// [`degraded`](FilterSpec::degraded) specs through the epoch-based
    /// control path), sustained acceptance restores it rung by rung.
    ///
    /// # Errors
    /// [`SolarError::NotDeployed`] / [`SolarError::UnknownId`], plus any
    /// pipeline error while the admitted tuple is processed.
    pub fn try_push(&mut self, source: SourceId, tuple: &Tuple) -> Result<PushOutcome, SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        if source.0 >= self.sources.len() {
            return Err(SolarError::UnknownId(source.to_string()));
        }
        if let Some(gate) = self.sources[source.0].gate.as_mut() {
            if gate.take(1) == 0 {
                self.note_throttled(source)?;
                return Ok(PushOutcome::Throttled);
            }
        }
        self.pipeline(source)?.push(tuple.clone())?;
        self.note_accepted(source)?;
        Ok(PushOutcome::Accepted)
    }

    /// Pushes the suffix of a columnar batch (rows `start_row..`)
    /// through the source's bounded ingress, returning how many rows
    /// were admitted together with the outcome.
    ///
    /// The gate may admit a *prefix* of the suffix (partial take): the
    /// admitted rows are processed, the outcome is `Throttled`, and the
    /// batch is **resumable at the exact rejected row** — call again
    /// with `start_row + admitted`. `Accepted` means every requested
    /// row went through. Admitting a sub-range goes through
    /// [`TupleBatch::slice`], so the engines observe the identical
    /// row stream an unbounded push would have produced.
    ///
    /// # Errors
    /// [`SolarError::NotDeployed`] / [`SolarError::UnknownId`], plus
    /// pipeline errors for the admitted slice.
    ///
    /// # Panics
    /// Panics if `start_row > batch.rows()`.
    pub fn try_push_columnar(
        &mut self,
        source: SourceId,
        batch: &Arc<TupleBatch>,
        start_row: usize,
    ) -> Result<(usize, PushOutcome), SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        if source.0 >= self.sources.len() {
            return Err(SolarError::UnknownId(source.to_string()));
        }
        let rows = batch.rows();
        assert!(start_row <= rows, "start_row out of range");
        let want = rows - start_row;
        if want == 0 {
            return Ok((0, PushOutcome::Accepted));
        }
        let admitted = match self.sources[source.0].gate.as_mut() {
            Some(gate) => gate.take(want as u64) as usize,
            None => want,
        };
        if admitted == 0 {
            self.note_throttled(source)?;
            return Ok((0, PushOutcome::Throttled));
        }
        let slice = if start_row == 0 && admitted == rows {
            Arc::clone(batch)
        } else {
            Arc::new(batch.slice(start_row, admitted))
        };
        self.pipeline(source)?.push_columnar(&slice)?;
        if admitted == want {
            self.note_accepted(source)?;
            Ok((admitted, PushOutcome::Accepted))
        } else {
            self.note_throttled(source)?;
            Ok((admitted, PushOutcome::Throttled))
        }
    }

    /// Grants ingress credits back to a source's gate (saturating at
    /// its capacity), returning how many were actually added. No-op
    /// (returning 0) for sources without a gate.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] for unknown sources.
    pub fn grant_credits(&mut self, source: SourceId, credits: u64) -> Result<u64, SolarError> {
        let s = self
            .sources
            .get_mut(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        Ok(s.gate.as_mut().map_or(0, |g| g.grant(credits)))
    }

    /// The source's `(available, capacity)` credit window, `None` when
    /// ingress is unbounded.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] for unknown sources.
    pub fn credit_window(&self, source: SourceId) -> Result<Option<(u64, u64)>, SolarError> {
        let s = self
            .sources
            .get(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        Ok(s.gate.as_ref().map(|g| (g.available(), g.capacity())))
    }

    /// The source's current degradation-ladder rung (0 = every
    /// subscription at its original quality; also 0 when no shedder is
    /// configured).
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] for unknown sources.
    pub fn shed_rung(&self, source: SourceId) -> Result<u8, SolarError> {
        let s = self
            .sources
            .get(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        Ok(s.shedder.as_ref().map_or(0, Shedder::rung))
    }

    /// The source's [`FlowMonitor`] — EWMA load accounting plus the
    /// lifetime throttle/shed/degrade/restore counters.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] for unknown sources.
    pub fn flow_monitor(&self, source: SourceId) -> Result<&FlowMonitor, SolarError> {
        self.sources
            .get(source.0)
            .map(|s| &s.flow)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))
    }

    /// The source's delivery-latency distribution: one sample per
    /// (emission, recipient) delivery, fixed footprint at any scale.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] for unknown sources.
    pub fn latency_histogram(&self, source: SourceId) -> Result<&LatencyHistogram, SolarError> {
        self.sources
            .get(source.0)
            .map(|s| &s.lat_hist)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))
    }

    /// Drives a [`SourceConnector`] through the bounded ingress until
    /// end-of-stream: the §4.8 escalation as a loop. Admitted rows flow
    /// through the ordinary pipeline; a `Throttled` answer first lets
    /// the configured [`GrantPolicy`] replenish the window, and only
    /// when the source's degradation ladder is exhausted *and* pressure
    /// persists is the blocked row dropped — counted in both the
    /// returned [`IngestReport`] and the [`FlowMonitor`].
    ///
    /// Ordered ([`Chunk::Batch`]) input takes the columnar path with
    /// row-exact resumption after partial admissions; disordered
    /// ([`Chunk::Rows`]) input is routed tuple-by-tuple through the
    /// event-time front end.
    ///
    /// # Errors
    /// Connector failures (as [`SolarError::Core`]) and any pipeline
    /// error; [`SolarError::NotDeployed`] / [`SolarError::UnknownId`]
    /// up front.
    pub fn ingest(
        &mut self,
        source: SourceId,
        connector: &mut dyn SourceConnector,
        options: IngestOptions,
    ) -> Result<IngestReport, SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        if source.0 >= self.sources.len() {
            return Err(SolarError::UnknownId(source.to_string()));
        }
        let mut report = IngestReport::default();
        let max_rows = options.max_rows.max(1);
        while let Some(chunk) = connector.next_chunk(max_rows).map_err(SolarError::from)? {
            report.chunks += 1;
            report.rows += chunk.rows() as u64;
            match chunk {
                Chunk::Batch(batch) => {
                    let batch = Arc::new(batch);
                    let mut row = 0;
                    while row < batch.rows() {
                        let (n, outcome) = self.try_push_columnar(source, &batch, row)?;
                        row += n;
                        report.accepted += n as u64;
                        if outcome == PushOutcome::Throttled && row < batch.rows() {
                            report.throttled += 1;
                            if self.ladder_exhausted(source) {
                                // §4.8's last resort: quality is already
                                // at every subscription's floor, so shed
                                // the blocked row — counted, never silent.
                                self.sources[source.0].flow.observe_shed_drop();
                                report.dropped += 1;
                                row += 1;
                            } else {
                                self.replenish(source, options.grant);
                            }
                        }
                    }
                }
                Chunk::Rows(tuples) => {
                    for tuple in tuples {
                        loop {
                            match self.try_push(source, &tuple)? {
                                PushOutcome::Accepted => {
                                    report.accepted += 1;
                                    break;
                                }
                                PushOutcome::Throttled => {
                                    report.throttled += 1;
                                    if self.ladder_exhausted(source) {
                                        self.sources[source.0].flow.observe_shed_drop();
                                        report.dropped += 1;
                                        break;
                                    }
                                    self.replenish(source, options.grant);
                                }
                            }
                        }
                    }
                }
            }
        }
        if options.finish {
            self.finish(source)?;
        }
        Ok(report)
    }

    /// Observes a throttled admission: counts it and lets the shedder
    /// react (possibly climbing the ladder).
    fn note_throttled(&mut self, source: SourceId) -> Result<(), SolarError> {
        self.sources[source.0].flow.observe_throttle();
        if let Some(shedder) = self.sources[source.0].shedder.as_mut() {
            let action = shedder.on_throttled();
            self.apply_shed_action(source, action)?;
        }
        Ok(())
    }

    /// Observes a fully-accepted admission (possibly descending the
    /// ladder).
    fn note_accepted(&mut self, source: SourceId) -> Result<(), SolarError> {
        if let Some(shedder) = self.sources[source.0].shedder.as_mut() {
            let action = shedder.on_accepted();
            self.apply_shed_action(source, action)?;
        }
        Ok(())
    }

    /// Retunes every headroom-declaring live subscription of the source
    /// to the action's rung, through the same epoch-based
    /// `update_filter` path [`resubscribe`](Self::resubscribe) uses.
    /// Subscriptions whose ladder has no room between the previous and
    /// the new rung are skipped (no gratuitous filter restarts), and
    /// `AppEntry::spec` is never touched — it stays the rung-0 original
    /// so restoration is exact by construction.
    fn apply_shed_action(
        &mut self,
        source: SourceId,
        action: ShedAction,
    ) -> Result<(), SolarError> {
        let (rung, prev, degrade) = match action {
            ShedAction::None => return Ok(()),
            ShedAction::Degrade(r) => (r, r - 1, true),
            ShedAction::Restore(r) => (r, r + 1, false),
        };
        let subs = self.sources[source.0].subscribers.clone();
        // One sweep for every lookup: a per-subscription `locate` scan
        // here would make each ladder move O(roster²).
        let locations = self.locate_all(source);
        for a in subs {
            if !self.apps[a].active || self.apps[a].spec.shed_headroom().is_none() {
                continue;
            }
            let Some(next) = self.apps[a].spec.degraded(rung) else {
                continue;
            };
            if self.apps[a].spec.degraded(prev).as_ref() == Some(&next) {
                continue; // this ladder has no room between these rungs
            }
            let Some((part_idx, fid)) = locations[a] else {
                continue;
            };
            self.sources[source.0].parts[part_idx]
                .engine
                .update_filter(fid, next)?;
            if degrade {
                self.sources[source.0].flow.observe_degrade();
            } else {
                self.sources[source.0].flow.observe_restore();
            }
        }
        Ok(())
    }

    /// Whether the source's ladder is exhausted (top rung, still
    /// throttled) — the only state in which ingest may drop.
    fn ladder_exhausted(&self, source: SourceId) -> bool {
        self.sources[source.0]
            .shedder
            .as_ref()
            .is_some_and(Shedder::should_drop)
    }

    /// Replenishes a source's credit window per the grant policy.
    fn replenish(&mut self, source: SourceId, policy: GrantPolicy) {
        let decision = self.sources[source.0].flow.decision();
        let Some(gate) = self.sources[source.0].gate.as_mut() else {
            return;
        };
        match policy {
            GrantPolicy::Refill => gate.refill(),
            GrantPolicy::Adaptive => {
                let window = gate.capacity();
                let credits = match decision {
                    FlowDecision::Ok => window,
                    FlowDecision::Shed { drop_fraction } => {
                        ((window as f64) * (1.0 - drop_fraction)).floor() as u64
                    }
                    FlowDecision::DegradeQuality => 1,
                };
                // Always at least one credit: ingest makes progress (and
                // the ladder keeps climbing) even under the worst verdict.
                gate.grant(credits.max(1));
            }
        }
    }

    /// Runs a full trace through a source's pipeline and reports the
    /// outcome. Resets per-app statistics and traffic counters first, so
    /// reports from consecutive runs are independent.
    ///
    /// # Errors
    /// Propagates any `process`/`finish` error.
    pub fn run_trace<I: IntoIterator<Item = Tuple>>(
        &mut self,
        source: SourceId,
        tuples: I,
    ) -> Result<RunReport, SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        // reset stats
        self.overlay.reset_stats();
        for app in &mut self.apps {
            app.tuples = 0;
            app.e2e_latency_sum_us = 0;
        }
        for s in &mut self.sources {
            s.lat_hist = LatencyHistogram::new();
        }
        let mut pipeline = self.pipeline(source)?;
        pipeline.push_batch(tuples)?;
        pipeline.finish()?;
        self.report(source)
    }

    /// Assembles the [`RunReport`] for a source's most recent run:
    /// lifetime metrics folded over every part (and every engine retired
    /// by churn), plus per-subscription delivery statistics keyed by
    /// [`SubscriptionHandle`] — removed subscriptions stay listed with
    /// their counters frozen.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] / [`SolarError::NoSubscribers`].
    pub fn report(&self, source: SourceId) -> Result<RunReport, SolarError> {
        let s = self
            .sources
            .get(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        if s.parts.is_empty() && s.archived.is_empty() {
            return Err(SolarError::NoSubscribers(s.name.clone()));
        }
        let engine = s.folded_metrics();
        let per_app = s
            .subscribers
            .iter()
            .map(|&a| {
                let app = &self.apps[a];
                let mean = Micros(app.e2e_latency_sum_us.checked_div(app.tuples).unwrap_or(0));
                AppReport {
                    handle: SubscriptionHandle(a),
                    name: app.name.clone(),
                    active: app.active,
                    tuples: app.tuples,
                    mean_e2e_latency: mean,
                }
            })
            .collect();
        Ok(RunReport {
            engine,
            network_bytes: self.overlay.total_bytes(),
            messages: self.overlay.messages(),
            per_app,
        })
    }

    // ------------------------------------------------------------------
    // fault tolerance: checkpoint / recover / node failure
    // ------------------------------------------------------------------

    /// Takes a full middleware checkpoint. Every part engine crosses its
    /// safe-point boundary — the boundary drain is disseminated through
    /// the normal multicast path and accounted to its subscriptions, so
    /// nothing decided is lost — and the returned
    /// [`MiddlewareSnapshot`] captures the engines, the subscription
    /// roster (with per-app delivery statistics), the [`FlowMonitor`]s
    /// and the multicast-tree memberships.
    ///
    /// Like the engine-level checkpoint, this perturbs the stream exactly
    /// like an empty control-op application: a deployment that
    /// checkpoints and keeps going is byte-identical to one that
    /// checkpoints, crashes, [`recover`](Self::recover)s and replays the
    /// suffix (pinned in `tests/tests/recovery_equivalence.rs`).
    ///
    /// # Errors
    /// Engine errors ([`gasf_core::Error::Finished`] for sources whose
    /// stream already ended), or network errors while disseminating the
    /// boundary drains.
    pub fn checkpoint(&mut self) -> Result<MiddlewareSnapshot, SolarError> {
        let mut sources = Vec::with_capacity(self.sources.len());
        for si in 0..self.sources.len() {
            let n_parts = self.sources[si].parts.len();
            let mut parts = Vec::with_capacity(n_parts);
            for p in 0..n_parts {
                let engine = self.checkpoint_part(si, p)?;
                // The boundary has passed: stale tree members may leave
                // before the membership is captured.
                Pipeline::process_deferred_leaves(self, si, p)?;
                let part = &self.sources[si].parts[p];
                let members = self.overlay.group_members(part.group)?.to_vec();
                parts.push(PartState {
                    engine,
                    group_name: part.group_name.clone(),
                    members,
                    filter_apps: part.filter_apps.clone(),
                    deferred_leaves: part.deferred_leaves.clone(),
                });
            }
            let s = &self.sources[si];
            sources.push(SourceState {
                name: s.name.clone(),
                node: s.node,
                schema: s.schema.clone(),
                subscribers: s.subscribers.clone(),
                archived: s.archived.clone(),
                generation: s.generation,
                flow: s.flow.clone(),
                reorder: s.reorder.as_ref().map(ReorderBuffer::snapshot),
                lat_hist: s.lat_hist.clone(),
                shed_rung: s.shedder.as_ref().map_or(0, Shedder::rung),
                parts,
            });
        }
        let apps = self
            .apps
            .iter()
            .map(|a| AppState {
                name: a.name.clone(),
                node: a.node,
                source: a.source,
                spec: a.spec.clone(),
                active: a.active,
                tuples: a.tuples,
                e2e_latency_sum_us: a.e2e_latency_sum_us,
            })
            .collect();
        Ok(MiddlewareSnapshot {
            config: self.config,
            deployed: self.deployed,
            sources,
            apps,
        })
    }

    /// Crosses one part engine's safe-point boundary, disseminating the
    /// drain, and returns its snapshot.
    fn checkpoint_part(&mut self, si: usize, p: usize) -> Result<PartEngineState, SolarError> {
        let src_node = self.sources[si].node;
        let s = &mut self.sources[si];
        let part = &mut s.parts[p];
        let sink = MulticastSink {
            transport: &mut self.overlay,
            apps: &mut self.apps,
            filter_apps: &part.filter_apps,
            group: part.group,
            src_node,
            lat_hist: &mut s.lat_hist,
            error: None,
        };
        let mut sink = Metered::new(sink, &mut s.flow);
        let engine = match &mut part.engine {
            EngineHost::Single(e) => PartEngineState::Single(e.snapshot_into(&mut sink)?),
            EngineHost::Sharded(e) => {
                let snap = e.checkpoint(&mut sink)?;
                for (arrival, cpu) in e.take_step_costs() {
                    sink.monitor().observe(arrival, cpu);
                }
                PartEngineState::Sharded(snap)
            }
        };
        sink.inner_mut().take_error()?;
        Ok(engine)
    }

    /// Rebuilds a middleware from a checkpoint on a fresh overlay — the
    /// full-process recovery path. Part engines restore at their snapshot
    /// boundaries, multicast trees are recreated with their captured
    /// memberships (identical shapes: creating a group with the full
    /// member list equals the original create-then-join history), and the
    /// subscription roster — including removed subscriptions and all
    /// per-app delivery statistics — continues under the **same stable
    /// [`SubscriptionHandle`]s**, so post-recovery reports extend
    /// pre-crash reports seamlessly. Overlay traffic counters start from
    /// zero (they belong to the dead process).
    ///
    /// The overlay must span the same topology (node ids are preserved).
    ///
    /// # Errors
    /// [`SolarError::UnknownNode`] when the overlay's topology is too
    /// small for a captured node, plus engine-restore and group-creation
    /// failures.
    pub fn recover(overlay: Overlay, snap: &MiddlewareSnapshot) -> Result<Middleware, SolarError> {
        let mut mw = Middleware {
            overlay,
            config: snap.config,
            sources: Vec::with_capacity(snap.sources.len()),
            apps: Vec::with_capacity(snap.apps.len()),
            deployed: snap.deployed,
        };
        for a in &snap.apps {
            if a.node.index() >= mw.overlay.topology().len() {
                return Err(SolarError::UnknownNode(a.node));
            }
            mw.apps.push(AppEntry {
                name: a.name.clone(),
                node: a.node,
                source: a.source,
                spec: a.spec.clone(),
                active: a.active,
                tuples: a.tuples,
                e2e_latency_sum_us: a.e2e_latency_sum_us,
            });
        }
        for s in &snap.sources {
            if s.node.index() >= mw.overlay.topology().len() {
                return Err(SolarError::UnknownNode(s.node));
            }
            let mut parts = Vec::with_capacity(s.parts.len());
            for p in &s.parts {
                let engine = match &p.engine {
                    PartEngineState::Single(g) => {
                        EngineHost::Single(Box::new(GroupEngine::restore(g)?))
                    }
                    PartEngineState::Sharded(e) => {
                        EngineHost::Sharded(Box::new(ShardedEngine::restore(e)?))
                    }
                };
                let group = mw.overlay.create_group(&p.group_name, &p.members)?;
                parts.push(PartEntry {
                    engine,
                    group,
                    group_name: p.group_name.clone(),
                    filter_apps: p.filter_apps.clone(),
                    deferred_leaves: p.deferred_leaves.clone(),
                });
            }
            mw.sources.push(SourceEntry {
                name: s.name.clone(),
                node: s.node,
                schema: s.schema.clone(),
                subscribers: s.subscribers.clone(),
                parts,
                archived: s.archived.clone(),
                generation: s.generation,
                flow: s.flow.clone(),
                reorder: s.reorder.as_ref().map(ReorderBuffer::restore),
                lat_hist: s.lat_hist.clone(),
                gate: snap.config.ingress_capacity.map(CreditGate::new),
                shedder: snap
                    .config
                    .shedding
                    .map(|cfg| Shedder::restore_at(cfg, s.shed_rung)),
            });
        }
        Ok(mw)
    }

    /// Fails an overlay node's process and lets the Scribe self-repair
    /// re-graft every multicast tree around it
    /// ([`Overlay::fail_node`]) — the chaos-drill entry point for
    /// interior forwarder nodes. Nodes hosting a registered source or a
    /// live subscription are refused: a dead subscriber must be
    /// [`unsubscribe`](Self::unsubscribe)d (and a dead source retired)
    /// explicitly, so delivery accounting stays truthful.
    ///
    /// # Errors
    /// [`SolarError::NodeInUse`] for source/subscriber nodes, plus the
    /// overlay's own failure errors.
    pub fn fail_node(&mut self, node: NodeId) -> Result<RepairReport, SolarError> {
        if self.sources.iter().any(|s| s.node == node)
            || self.apps.iter().any(|a| a.active && a.node == node)
        {
            return Err(SolarError::NodeInUse(node));
        }
        Ok(self.overlay.fail_node(node)?)
    }

    /// Revives a failed overlay node ([`Overlay::recover_node`]). Like a
    /// restarted Scribe node it holds no memberships; subscribers placed
    /// on it re-enter trees via [`subscribe`](Self::subscribe).
    ///
    /// # Errors
    /// [`SolarError::Net`] for unknown nodes.
    pub fn recover_node(&mut self, node: NodeId) -> Result<bool, SolarError> {
        Ok(self.overlay.recover_node(node)?)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Builds one part (engine + multicast tree) hosting `app_idxs`, in
    /// subscription order (filter ids are dense `0..n` within the part).
    fn spawn_part(&mut self, source_idx: usize, app_idxs: &[usize]) -> Result<(), SolarError> {
        let s = &self.sources[source_idx];
        let mut builder = GroupEngine::builder(s.schema.clone())
            .algorithm(self.config.algorithm)
            .output_strategy(self.config.strategy);
        if let Some(c) = self.config.constraint {
            builder = builder.time_constraint(c);
        }
        for &a in app_idxs {
            builder = builder.filter(self.apps[a].spec.clone());
        }
        let engine = if self.config.parallelism > 1 {
            EngineHost::Sharded(Box::new(
                ShardedEngine::builder()
                    .parallelism(self.config.parallelism)
                    .track_step_costs(true)
                    .route(format!("src:{source_idx}:{}", s.name), builder)
                    .build()?,
            ))
        } else {
            EngineHost::Single(Box::new(builder.build()?))
        };
        let mut members: BTreeSet<NodeId> = app_idxs.iter().map(|&a| self.apps[a].node).collect();
        members.insert(s.node); // the source proxy is always a member
        let members: Vec<NodeId> = members.into_iter().collect();
        let name = format!(
            "src:{source_idx}:{}:g{}:p{}",
            s.name,
            s.generation,
            s.parts.len()
        );
        let group = self.overlay.create_group(&name, &members)?;
        self.sources[source_idx].parts.push(PartEntry {
            engine,
            group,
            group_name: name,
            filter_apps: app_idxs.to_vec(),
            deferred_leaves: Vec::new(),
        });
        Ok(())
    }

    /// Attaches a freshly subscribed app to a live source: queue the
    /// filter on the first part's engine, join the multicast tree.
    fn attach_live(&mut self, source: SourceId, app_idx: usize) -> Result<(), SolarError> {
        if self.sources[source.0].parts.is_empty() {
            // First live subscriber of a source that deployed empty.
            return self.spawn_part(source.0, &[app_idx]);
        }
        let declared = self.apps[app_idx].spec.clone();
        // Joining a source mid-shed means joining at its current rung.
        let rung = self.sources[source.0]
            .shedder
            .as_ref()
            .map_or(0, Shedder::rung);
        let spec = declared.degraded(rung).unwrap_or(declared);
        let node = self.apps[app_idx].node;
        let part = &mut self.sources[source.0].parts[0];
        let id = part.engine.add_filter(spec)?;
        debug_assert_eq!(id.index(), part.filter_apps.len());
        part.filter_apps.push(app_idx);
        let group = part.group;
        self.overlay.join_group(group, node)?;
        Ok(())
    }

    /// Finds the part and live filter id serving a subscription.
    fn locate(&self, source: SourceId, app_idx: usize) -> Option<(usize, FilterId)> {
        for (pi, part) in self.sources[source.0].parts.iter().enumerate() {
            if let Some(fi) = part.filter_apps.iter().position(|&a| a == app_idx) {
                return Some((pi, FilterId::from_index(fi)));
            }
        }
        None
    }

    /// Every subscription's location in one sweep: `table[app]` is what
    /// [`locate`](Self::locate) would return for that app (first part,
    /// first slot — stale vacated slots lose to earlier entries exactly
    /// as `position` would find them). Bulk paths that touch the whole
    /// roster (ladder moves, regroup) use this instead of per-app scans.
    fn locate_all(&self, source: SourceId) -> Vec<Option<(usize, FilterId)>> {
        let mut table = vec![None; self.apps.len()];
        for (pi, part) in self.sources[source.0].parts.iter().enumerate() {
            for (fi, &a) in part.filter_apps.iter().enumerate() {
                if table[a].is_none() {
                    table[a] = Some((pi, FilterId::from_index(fi)));
                }
            }
        }
        table
    }

    /// Drains a part's engine through the multicast path (in-flight
    /// candidate sets close, pending outputs are delivered), archives its
    /// lifetime metrics, removes its multicast group from the overlay and
    /// drops the part. A part whose stream already finished has nothing
    /// in flight and archives directly.
    ///
    /// Returns the part's *final-epoch* metrics (full lifetime on the
    /// sharded path, where per-route metrics only exist at finish) — the
    /// recent-behavior sample regrouping heuristics judge.
    fn retire_part(
        &mut self,
        source_idx: usize,
        part_idx: usize,
    ) -> Result<EngineMetrics, SolarError> {
        let src_node = self.sources[source_idx].node;
        let s = &mut self.sources[source_idx];
        let part = &mut s.parts[part_idx];
        let sink = MulticastSink {
            transport: &mut self.overlay,
            apps: &mut self.apps,
            filter_apps: &part.filter_apps,
            group: part.group,
            src_node,
            lat_hist: &mut s.lat_hist,
            error: None,
        };
        let mut sink = Metered::new(sink, &mut s.flow);
        let drained = match &mut part.engine {
            EngineHost::Single(e) => e.finish_into(&mut sink),
            EngineHost::Sharded(e) => e.finish_into(&mut sink),
        };
        let net = sink.inner_mut().take_error();
        let lifetime = part.engine.metrics();
        let recent = match &part.engine {
            EngineHost::Single(e) => e.metrics().clone(),
            EngineHost::Sharded(_) => lifetime.clone(),
        };
        s.archived.push(lifetime);
        let group = part.group;
        s.parts.remove(part_idx);
        // The tree is dead — reclaim it so churn can't grow the overlay
        // without bound.
        let _ = self.overlay.remove_group(group);
        match drained {
            // already finished = already drained; nothing was in flight
            Ok(()) | Err(gasf_core::Error::Finished) => {}
            Err(e) => return Err(e.into()),
        }
        net?;
        Ok(recent)
    }
}

/// Transport dissemination as an [`EmissionSink`]: every accepted
/// emission is sent through a [`Transport`] — by default the in-process
/// overlay (the borrow-based
/// [`Overlay::multicast_emission`](gasf_net::Overlay::multicast_emission)
/// path, pruned to the emission's recipient subset), or a real wire when
/// the pipeline was built with [`Middleware::pipeline_over`] — and
/// per-subscription delivery statistics are updated in place. Recipient
/// [`FilterId`]s resolve through the part's append-only
/// id → subscription table, so labels drained at an epoch boundary still
/// reach (and are accounted to) apps that just unsubscribed.
///
/// Network failures cannot surface through [`accept`](EmissionSink::accept)
/// (the sink contract is infallible), so the sink latches the first error
/// and ignores later emissions; [`Pipeline`] re-raises it after every
/// engine step. Obtained via [`Middleware::pipeline`].
#[derive(Debug)]
pub struct MulticastSink<'a> {
    transport: &'a mut (dyn Transport + 'a),
    apps: &'a mut Vec<AppEntry>,
    filter_apps: &'a [usize],
    group: GroupId,
    src_node: NodeId,
    /// The source's delivery-latency histogram: one sample per
    /// (emission, recipient) delivery, same quantity the per-app means
    /// aggregate.
    lat_hist: &'a mut LatencyHistogram,
    error: Option<SolarError>,
}

impl MulticastSink<'_> {
    /// Re-raises (and clears) the first deferred network error.
    fn take_error(&mut self) -> Result<(), SolarError> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl EmissionSink for MulticastSink<'_> {
    fn accept(&mut self, emission: &Emission) {
        if self.error.is_some() {
            return;
        }
        // Map recipient filter ids to subscriber nodes; the transport
        // dedups nodes (the overlay additionally reuses its recipient
        // scratch buffer).
        let filter_apps = self.filter_apps;
        let apps = &*self.apps;
        let delivery =
            match self
                .transport
                .send_emission(self.group, self.src_node, emission, &mut |f| {
                    apps[filter_apps[f.index()]].node
                }) {
                Ok(d) => d,
                Err(e) => {
                    self.error = Some(e.into());
                    return;
                }
            };
        for f in emission.recipients.iter() {
            let entry = &mut self.apps[self.filter_apps[f.index()]];
            let net = delivery
                .latencies
                .get(&entry.node)
                .copied()
                .unwrap_or(Micros::ZERO);
            let e2e = emission.latency() + net;
            entry.tuples += 1;
            entry.e2e_latency_sum_us += e2e.as_micros();
            self.lat_hist.record(e2e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.transport.flush() {
            self.error = Some(e.into());
        }
    }
}

/// A wired dataflow for one source: engine(s) → [`Metered`] flow
/// accounting → [`MulticastSink`] dissemination (Fig. 4.1 as an API).
///
/// Borrow one from [`Middleware::pipeline`], feed it with
/// [`push`](Pipeline::push)/[`push_batch`](Pipeline::push_batch), and end
/// the stream with [`finish`](Pipeline::finish). Dropping the pipeline
/// without finishing leaves the source open for a later pipeline — which
/// is also how live subscription churn interleaves with streaming: drop
/// (or simply don't hold) the pipeline, call
/// `subscribe`/`unsubscribe`/`resubscribe`/`regroup`, and keep pushing.
///
/// With [`MiddlewareConfig::parallelism`] above one, each engine is a
/// [`ShardedEngine`]: filtering runs on worker threads and this pipeline's
/// caller thread only merges emissions and disseminates them — note that
/// on that path emissions released by a push may be multicast on a later
/// push (they are staged in shard batches), with
/// [`finish`](Pipeline::finish) always draining everything.
#[derive(Debug)]
pub struct Pipeline<'m> {
    mw: &'m mut Middleware,
    source: usize,
    /// External data-plane transport ([`Middleware::pipeline_over`]);
    /// `None` drains through the middleware's own overlay.
    wire: Option<&'m mut (dyn Transport + 'm)>,
}

impl Pipeline<'_> {
    /// Pushes one tuple through every part of the source; released
    /// emissions are multicast as they stream out of the release paths.
    ///
    /// With an event-time front end
    /// ([`MiddlewareConfig::event_time`]) the tuple first enters the
    /// source's [`ReorderBuffer`]: it may arrive out of event order
    /// (within the bound), and only the prefix the watermark has passed
    /// flows on to the engines — in event order, re-sequenced densely, so
    /// everything downstream runs exactly as on the ordered path. Tuples
    /// later than the bound never reach an engine; they are dropped (and
    /// counted) or turned into patch emissions per the [`LatePolicy`](gasf_core::event_time::LatePolicy).
    ///
    /// # Errors
    /// Engine errors first (ordering violations, finished streams), then
    /// any network error raised while disseminating this step's emissions.
    pub fn push(&mut self, tuple: Tuple) -> Result<(), SolarError> {
        let Some(mut buf) = self.mw.sources[self.source].reorder.take() else {
            return self.push_ordered(tuple);
        };
        let mut released = Vec::new();
        let outcome = buf.push_into(tuple, &mut released);
        let mut result = Ok(());
        for t in released {
            result = self.push_ordered(t);
            if result.is_err() {
                break;
            }
        }
        if result.is_ok() {
            result = self.settle_late(&buf, outcome);
        }
        self.mw.sources[self.source].reorder = Some(buf);
        result
    }

    /// The ordered fast path: fans one (already stream-ordered) tuple out
    /// to every part of the source.
    fn push_ordered(&mut self, tuple: Tuple) -> Result<(), SolarError> {
        let source = self.source;
        let n_parts = self.mw.sources[source].parts.len();
        for p in 0..n_parts {
            self.push_part(p, tuple.clone())?;
        }
        Ok(())
    }

    /// Applies a late-tuple outcome from the reorder buffer: count the
    /// drop, or multicast a patch emission to every part.
    fn settle_late(
        &mut self,
        buf: &ReorderBuffer,
        outcome: Option<LateOutcome>,
    ) -> Result<(), SolarError> {
        match outcome {
            None => Ok(()),
            Some(LateOutcome::Dropped) => {
                self.mw.sources[self.source].flow.observe_late_drop();
                Ok(())
            }
            Some(LateOutcome::Patch(late)) => {
                // A patch is stamped at the watermark frontier, not at the
                // tuple's (long-passed) event time — deterministic under
                // equal watermark schedules, and its measured latency is
                // exactly how late the tuple was.
                let emitted_at = buf
                    .watermark()
                    .max_seen()
                    .unwrap_or_else(|| late.tuple.timestamp());
                self.patch_all_parts(late, emitted_at)
            }
        }
    }

    /// Disseminates one patch emission through every part's multicast
    /// sink ([`EmissionSink::accept_patch`]), addressed to the part's
    /// currently active subscriptions. The engines are bypassed: the
    /// ordered stream (and all state built from it) never sees the late
    /// tuple.
    fn patch_all_parts(&mut self, late: LateTuple, emitted_at: Micros) -> Result<(), SolarError> {
        let payload = Arc::new(late.tuple);
        let n_parts = self.mw.sources[self.source].parts.len();
        for p in 0..n_parts {
            let wire = self.wire.as_deref_mut();
            let mw = &mut *self.mw;
            let src_node = mw.sources[self.source].node;
            let s = &mut mw.sources[self.source];
            let part = &mut s.parts[p];
            let mut recipients = FilterSet::new();
            for (i, &a) in part.filter_apps.iter().enumerate() {
                if mw.apps[a].active {
                    recipients.insert(FilterId::from_index(i));
                }
            }
            if recipients.is_empty() {
                continue;
            }
            let transport: &mut dyn Transport = match wire {
                Some(w) => w,
                None => &mut mw.overlay,
            };
            let sink = MulticastSink {
                transport,
                apps: &mut mw.apps,
                filter_apps: &part.filter_apps,
                group: part.group,
                src_node,
                lat_hist: &mut s.lat_hist,
                error: None,
            };
            let mut sink = Metered::new(sink, &mut s.flow);
            let emission = Emission {
                tuple: Arc::clone(&payload),
                recipients,
                emitted_at,
            };
            sink.accept_patch(&emission);
            sink.inner_mut().take_error()?;
        }
        Ok(())
    }

    fn push_part(&mut self, p: usize, tuple: Tuple) -> Result<(), SolarError> {
        let wire = self.wire.as_deref_mut();
        let mw = &mut *self.mw;
        let src_node = mw.sources[self.source].node;
        let s = &mut mw.sources[self.source];
        let part = &mut s.parts[p];
        // A pending op means this push crosses the epoch boundary (the
        // engine applies queued ops, and delivers the boundary drain,
        // first) — afterwards stale tree members can safely leave.
        let at_boundary =
            matches!(&part.engine, EngineHost::Single(e) if e.pending_control_ops() > 0);
        let transport: &mut dyn Transport = match wire {
            Some(w) => w,
            None => &mut mw.overlay,
        };
        let sink = MulticastSink {
            transport,
            apps: &mut mw.apps,
            filter_apps: &part.filter_apps,
            group: part.group,
            src_node,
            lat_hist: &mut s.lat_hist,
            error: None,
        };
        let mut sink = Metered::new(sink, &mut s.flow);
        match &mut part.engine {
            EngineHost::Single(engine) => {
                let arrival = tuple.timestamp();
                let cpu_before = engine.metrics().cpu;
                engine.push_into(tuple, &mut sink)?;
                let cpu_spent = engine.metrics().cpu.saturating_sub(cpu_before);
                sink.monitor().observe(arrival, cpu_spent);
            }
            EngineHost::Sharded(engine) => {
                engine.push_into(tuple, &mut sink)?;
                for (arrival, cpu) in engine.take_step_costs() {
                    sink.monitor().observe(arrival, cpu);
                }
            }
        }
        sink.inner_mut().take_error()?;
        if at_boundary {
            Self::process_deferred_leaves(mw, self.source, p)?;
        }
        Ok(())
    }

    /// Executes a part's deferred overlay leaves: nodes with no remaining
    /// active subscription in the part are pruned from its tree. Until
    /// this runs a stale member costs nothing — the tuple-level multicast
    /// prunes every send to its recipient subset.
    fn process_deferred_leaves(
        mw: &mut Middleware,
        source: usize,
        p: usize,
    ) -> Result<(), SolarError> {
        if mw.sources[source].parts[p].deferred_leaves.is_empty() {
            return Ok(());
        }
        let src_node = mw.sources[source].node;
        let leaves = std::mem::take(&mut mw.sources[source].parts[p].deferred_leaves);
        for node in leaves {
            if node == src_node {
                continue;
            }
            let part = &mw.sources[source].parts[p];
            let still_needed = part
                .filter_apps
                .iter()
                .any(|&a| mw.apps[a].active && mw.apps[a].node == node);
            if still_needed {
                continue;
            }
            match mw.overlay.leave_group(part.group, node) {
                Ok(()) | Err(gasf_net::multicast::NetError::NotAMember(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Pushes a batch of tuples, stopping at the first failure.
    ///
    /// # Errors
    /// Same as [`push`](Self::push).
    pub fn push_batch(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), SolarError> {
        for t in tuples {
            self.push(t)?;
        }
        Ok(())
    }

    /// Pushes one columnar [`TupleBatch`] through every part of the
    /// source — the batch-native data path. Every part shares the same
    /// `Arc` (no per-part copy of the columns), each engine consumes it
    /// through its columnar hot path, and the flow monitor observes the
    /// batch as per-row samples with the batch cost amortised across
    /// them, so flow decisions stay comparable to per-tuple feeding.
    ///
    /// Emission bytes on the wire are identical to
    /// [`push`](Self::push)ing the rows one at a time.
    ///
    /// With an event-time front end the batch's rows pass through the
    /// source's [`ReorderBuffer`] first (batches may arrive disordered
    /// within the bound); whatever the watermark releases is re-packed
    /// into a fresh ordered batch and fed to the engines' columnar path.
    ///
    /// # Errors
    /// Same as [`push`](Self::push).
    pub fn push_columnar(&mut self, batch: &Arc<TupleBatch>) -> Result<(), SolarError> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.mw.sources[self.source].reorder.is_some() {
            return self.push_columnar_buffered(batch);
        }
        let source = self.source;
        let n_parts = self.mw.sources[source].parts.len();
        for p in 0..n_parts {
            self.push_part_columnar(p, batch)?;
        }
        Ok(())
    }

    /// The event-time columnar path: rows → reorder buffer → one
    /// re-packed ordered batch per released run.
    fn push_columnar_buffered(&mut self, batch: &Arc<TupleBatch>) -> Result<(), SolarError> {
        let mut buf = self.mw.sources[self.source]
            .reorder
            .take()
            .expect("checked");
        let mut released = Vec::new();
        let mut outcomes = Vec::new();
        for row in batch.materialize() {
            if let Some(o) = buf.push_into(row, &mut released) {
                outcomes.push(o);
            }
        }
        let mut result = Ok(());
        if !released.is_empty() {
            // The released run is ordered with dense seqs by the buffer's
            // contract, so re-packing cannot fail.
            let schema = self.mw.sources[self.source].schema.clone();
            let ordered = TupleBatch::from_tuples(&schema, &released)
                .map(Arc::new)
                .map_err(SolarError::from);
            result = ordered.and_then(|b| {
                let n_parts = self.mw.sources[self.source].parts.len();
                for p in 0..n_parts {
                    self.push_part_columnar(p, &b)?;
                }
                Ok(())
            });
        }
        if result.is_ok() {
            for o in outcomes {
                result = self.settle_late(&buf, Some(o));
                if result.is_err() {
                    break;
                }
            }
        }
        self.mw.sources[self.source].reorder = Some(buf);
        result
    }

    fn push_part_columnar(&mut self, p: usize, batch: &Arc<TupleBatch>) -> Result<(), SolarError> {
        let wire = self.wire.as_deref_mut();
        let mw = &mut *self.mw;
        let src_node = mw.sources[self.source].node;
        let s = &mut mw.sources[self.source];
        let part = &mut s.parts[p];
        // A pending op means this batch crosses the epoch boundary at its
        // head (columnar batches are never split by a safe point) —
        // afterwards stale tree members can safely leave.
        let at_boundary =
            matches!(&part.engine, EngineHost::Single(e) if e.pending_control_ops() > 0);
        let transport: &mut dyn Transport = match wire {
            Some(w) => w,
            None => &mut mw.overlay,
        };
        let sink = MulticastSink {
            transport,
            apps: &mut mw.apps,
            filter_apps: &part.filter_apps,
            group: part.group,
            src_node,
            lat_hist: &mut s.lat_hist,
            error: None,
        };
        let mut sink = Metered::new(sink, &mut s.flow);
        match &mut part.engine {
            EngineHost::Single(engine) => {
                let cpu_before = engine.metrics().cpu;
                engine.push_batch_columnar(batch, &mut sink)?;
                let cpu_spent = engine.metrics().cpu.saturating_sub(cpu_before);
                let per_row = cpu_spent / batch.rows().max(1) as u32;
                for r in 0..batch.rows() {
                    sink.monitor().observe(batch.timestamp(r), per_row);
                }
            }
            EngineHost::Sharded(engine) => {
                engine.push_batch_columnar(batch, &mut sink)?;
                for (arrival, cpu) in engine.take_step_costs() {
                    sink.monitor().observe(arrival, cpu);
                }
            }
        }
        sink.inner_mut().take_error()?;
        if at_boundary {
            Self::process_deferred_leaves(mw, self.source, p)?;
        }
        Ok(())
    }

    /// Ends the stream on every part, disseminating the tails. An
    /// event-time front end is flushed first: everything still buffered
    /// is released in event order (end-of-stream is the final watermark).
    ///
    /// # Errors
    /// Same as [`push`](Self::push).
    pub fn finish(mut self) -> Result<(), SolarError> {
        if let Some(mut buf) = self.mw.sources[self.source].reorder.take() {
            let mut released = Vec::new();
            buf.flush_into(&mut released);
            let mut result = Ok(());
            for t in released {
                result = self.push_ordered(t);
                if result.is_err() {
                    break;
                }
            }
            self.mw.sources[self.source].reorder = Some(buf);
            result?;
        }
        let source = self.source;
        let n_parts = self.mw.sources[source].parts.len();
        for p in 0..n_parts {
            self.finish_part(p)?;
        }
        Ok(())
    }

    fn finish_part(&mut self, p: usize) -> Result<(), SolarError> {
        let wire = self.wire.as_deref_mut();
        let mw = &mut *self.mw;
        let src_node = mw.sources[self.source].node;
        let s = &mut mw.sources[self.source];
        let part = &mut s.parts[p];
        let transport: &mut dyn Transport = match wire {
            Some(w) => w,
            None => &mut mw.overlay,
        };
        let sink = MulticastSink {
            transport,
            apps: &mut mw.apps,
            filter_apps: &part.filter_apps,
            group: part.group,
            src_node,
            lat_hist: &mut s.lat_hist,
            error: None,
        };
        let mut sink = Metered::new(sink, &mut s.flow);
        match &mut part.engine {
            EngineHost::Single(engine) => {
                engine.finish_into(&mut sink)?;
            }
            EngineHost::Sharded(engine) => {
                engine.finish_into(&mut sink)?;
                for (arrival, cpu) in engine.take_step_costs() {
                    sink.monitor().observe(arrival, cpu);
                }
            }
        }
        sink.inner_mut().take_error()?;
        Self::process_deferred_leaves(mw, self.source, p)
    }

    /// Metrics of the engines this pipeline feeds: lifetime metrics
    /// folded over every part and every engine retired by churn
    /// (aggregated across shards on the parallel path).
    pub fn metrics(&self) -> EngineMetrics {
        self.mw.sources[self.source].folded_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_core::tuple::TupleBuilder;
    use gasf_net::Topology;

    fn stream(schema: &Schema, n: usize) -> Vec<Tuple> {
        let mut b = TupleBuilder::new(schema);
        (0..n)
            .map(|i| {
                let v = (i as f64 * 0.7).sin() * 10.0 + i as f64 * 0.05;
                b.at_millis(10 * (i as u64 + 1))
                    .set("t", v)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    fn setup(config: MiddlewareConfig) -> (Middleware, SourceId, Schema) {
        let overlay = Overlay::new(Topology::ring(7).build());
        let mut mw = Middleware::with_config(overlay, config);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        let _ = mw
            .subscribe("a1", NodeId(2), src, FilterSpec::delta("t", 2.0, 0.9))
            .unwrap();
        let _ = mw
            .subscribe("a2", NodeId(4), src, FilterSpec::delta("t", 3.0, 1.4))
            .unwrap();
        let _ = mw
            .subscribe("a3", NodeId(6), src, FilterSpec::delta("t", 2.5, 1.2))
            .unwrap();
        mw.deploy().unwrap();
        (mw, src, schema)
    }

    #[test]
    fn end_to_end_delivery() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let report = mw.run_trace(src, stream(&schema, 300)).unwrap();
        assert_eq!(report.engine.input_tuples, 300);
        assert!(report.engine.output_tuples > 0);
        assert!(report.network_bytes > 0);
        assert_eq!(report.per_app.len(), 3);
        for app in &report.per_app {
            assert!(app.tuples > 0, "{} received nothing", app.name);
            assert!(app.mean_e2e_latency > Micros::ZERO);
            assert!(app.active);
        }
        // network latency beyond filtering latency
        assert!(report.mean_e2e_latency() > report.engine.mean_latency());
    }

    #[test]
    fn group_aware_uses_less_bandwidth_than_si() {
        let ga = {
            let (mut mw, src, schema) = setup(MiddlewareConfig::default());
            mw.run_trace(src, stream(&schema, 500)).unwrap()
        };
        let si = {
            let (mut mw, src, schema) = setup(MiddlewareConfig {
                algorithm: Algorithm::SelfInterested,
                ..Default::default()
            });
            mw.run_trace(src, stream(&schema, 500)).unwrap()
        };
        assert!(
            ga.engine.output_tuples <= si.engine.output_tuples,
            "group-aware {} vs SI {}",
            ga.engine.output_tuples,
            si.engine.output_tuples
        );
        assert!(
            ga.network_bytes <= si.network_bytes,
            "group-aware bytes {} vs SI {}",
            ga.network_bytes,
            si.network_bytes
        );
    }

    #[test]
    fn requires_deploy() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        let _ = mw
            .subscribe("a", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        let mut b = TupleBuilder::new(&schema);
        let t = b.at_millis(10).set("t", 0.0).build().unwrap();
        assert!(matches!(mw.process(src, t), Err(SolarError::NotDeployed)));
    }

    #[test]
    fn live_subscribe_joins_mid_stream() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let tuples = stream(&schema, 200);
        mw.push_batch(src, tuples[..100].to_vec()).unwrap();
        // a fourth app joins while the stream is live — no redeploy
        let late = mw
            .subscribe("late", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        mw.push_batch(src, tuples[100..].to_vec()).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        assert_eq!(report.per_app.len(), 4);
        let late_report = report.per_app.iter().find(|a| a.handle == late).unwrap();
        assert!(late_report.active);
        assert!(
            late_report.tuples > 0,
            "late joiner must receive post-join traffic"
        );
        assert_eq!(mw.subscriptions(src).unwrap().len(), 4);
    }

    #[test]
    fn unsubscribe_freezes_stats_and_prunes_the_tree() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let handle = mw.subscriptions(src).unwrap()[1];
        let tuples = stream(&schema, 300);
        mw.push_batch(src, tuples[..150].to_vec()).unwrap();
        mw.unsubscribe(handle).unwrap();
        assert!(matches!(
            mw.unsubscribe(handle),
            Err(SolarError::NotSubscribed(_))
        ));
        let frozen_at_boundary = {
            // one more push crosses the boundary and delivers the drain
            mw.push_batch(src, tuples[150..151].to_vec()).unwrap();
            mw.report(src).unwrap()
        };
        let frozen = frozen_at_boundary
            .per_app
            .iter()
            .find(|a| a.handle == handle)
            .unwrap()
            .tuples;
        assert!(frozen > 0, "pre-churn deliveries kept");
        mw.push_batch(src, tuples[151..].to_vec()).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        let entry = report.per_app.iter().find(|a| a.handle == handle).unwrap();
        assert!(!entry.active);
        assert_eq!(entry.tuples, frozen, "stats frozen after removal");
        assert_eq!(mw.subscriptions(src).unwrap().len(), 2);
        // the app's node left the multicast tree once the boundary passed
        let group = mw.sources[src.0].parts[0].group;
        assert!(!mw
            .overlay
            .group_members(group)
            .unwrap()
            .contains(&NodeId(4)));
        // the others kept receiving
        for other in report.per_app.iter().filter(|a| a.handle != handle) {
            assert!(other.tuples > frozen / 2);
        }
    }

    #[test]
    fn resubscribe_retunes_in_place() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let handle = mw.subscriptions(src).unwrap()[0];
        let tuples = stream(&schema, 200);
        mw.push_batch(src, tuples[..100].to_vec()).unwrap();
        // retune to a much looser delta: fewer reference points
        mw.resubscribe(handle, FilterSpec::delta("t", 8.0, 3.0))
            .unwrap();
        mw.push_batch(src, tuples[100..].to_vec()).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        assert_eq!(report.per_app.len(), 3);
        assert!(report.per_app.iter().all(|a| a.active));
        // the engine crossed exactly one epoch boundary
        match &mw.sources[src.0].parts[0].engine {
            EngineHost::Single(e) => assert_eq!(e.epoch(), 1),
            EngineHost::Sharded(_) => unreachable!("default config is inline"),
        }
    }

    #[test]
    fn regroup_isolates_and_migrates_live() {
        let overlay = Overlay::new(Topology::ring(7).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        // two modest apps and one greedy one (tiny delta = dense refs)
        let _ = mw
            .subscribe("calm1", NodeId(2), src, FilterSpec::delta("t", 6.0, 2.5))
            .unwrap();
        let _ = mw
            .subscribe("calm2", NodeId(4), src, FilterSpec::delta("t", 5.0, 2.0))
            .unwrap();
        let greedy = mw
            .subscribe("greedy", NodeId(6), src, FilterSpec::delta("t", 0.05, 0.02))
            .unwrap();
        mw.deploy().unwrap();
        let tuples = stream(&schema, 400);
        mw.push_batch(src, tuples[..200].to_vec()).unwrap();
        let parts = mw
            .regroup(src, GroupingStrategy::BySelectivity { isolate_above: 0.5 })
            .unwrap();
        assert_eq!(parts.len(), 2, "greedy consumer isolated: {parts:?}");
        assert!(parts.iter().any(|p| p == &vec![greedy]));
        assert_eq!(mw.sources[src.0].parts.len(), 2);
        // the stream continues through the new engines
        mw.push_batch(src, tuples[200..].to_vec()).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        // every engine generation is accounted: the retired engine saw
        // 200 tuples x 3 filters... actually input counts per engine; the
        // archive plus both live parts must cover the whole stream.
        assert_eq!(mw.sources[src.0].archived.len(), 1);
        assert!(report.engine.input_tuples >= 400);
        for app in &report.per_app {
            assert!(app.tuples > 0, "{} starved across the migration", app.name);
        }
    }

    #[test]
    fn regroup_isolates_on_the_sharded_path_too() {
        // Selectivity rates come from the drained engines' metrics, which
        // on the sharded path only materialise at finish — the regroup
        // drain must surface them.
        let overlay = Overlay::new(Topology::ring(7).build());
        let mut mw = Middleware::with_config(
            overlay,
            MiddlewareConfig {
                parallelism: 2,
                ..Default::default()
            },
        );
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        let _ = mw
            .subscribe("calm", NodeId(2), src, FilterSpec::delta("t", 6.0, 2.5))
            .unwrap();
        let greedy = mw
            .subscribe("greedy", NodeId(6), src, FilterSpec::delta("t", 0.05, 0.02))
            .unwrap();
        mw.deploy().unwrap();
        let tuples = stream(&schema, 300);
        mw.push_batch(src, tuples[..150].to_vec()).unwrap();
        let parts = mw
            .regroup(src, GroupingStrategy::BySelectivity { isolate_above: 0.5 })
            .unwrap();
        assert!(
            parts.iter().any(|p| p == &vec![greedy]),
            "sharded regroup must still isolate: {parts:?}"
        );
        mw.push_batch(src, tuples[150..].to_vec()).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        assert!(report.per_app.iter().all(|a| a.tuples > 0));
    }

    #[test]
    fn retired_trees_are_reclaimed_from_the_overlay() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        mw.push_batch(src, stream(&schema, 100)).unwrap();
        let old_group = mw.sources[src.0].parts[0].group;
        mw.regroup(src, GroupingStrategy::MaxSize(1)).unwrap();
        assert!(
            mw.overlay.group_members(old_group).is_err(),
            "retired tree must be removed from the overlay"
        );
        assert_eq!(mw.sources[src.0].parts.len(), 3);
        mw.push_batch(src, stream(&schema, 150)[100..].to_vec())
            .unwrap();
        mw.finish(src).unwrap();
    }

    #[test]
    fn regroup_requires_deploy_and_subscribers() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        assert!(matches!(
            mw.regroup(src, GroupingStrategy::Single),
            Err(SolarError::NotDeployed)
        ));
        mw.deploy().unwrap();
        assert!(matches!(
            mw.regroup(src, GroupingStrategy::Single),
            Err(SolarError::NoSubscribers(_))
        ));
    }

    #[test]
    fn unsubscribing_last_app_retires_the_part() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        let only = mw
            .subscribe("only", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        mw.deploy().unwrap();
        mw.push_batch(src, stream(&schema, 50)).unwrap();
        mw.unsubscribe(only).unwrap();
        assert!(mw.sources[src.0].parts.is_empty());
        // the drained deliveries are still accounted to the handle
        let report = mw.report(src).unwrap();
        assert!(report.per_app[0].tuples > 0);
        assert!(!report.per_app[0].active);
        // and the source can come back to life
        let again = mw
            .subscribe("again", NodeId(2), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        let more: Vec<Tuple> = stream(&schema, 80)[50..].to_vec();
        mw.push_batch(src, more).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        let entry = report.per_app.iter().find(|a| a.handle == again).unwrap();
        assert!(entry.tuples > 0);
    }

    #[test]
    fn duplicate_source_and_bad_nodes_rejected() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        assert!(matches!(
            mw.register_source("s", NodeId(1), schema.clone()),
            Err(SolarError::DuplicateSource(_))
        ));
        assert!(matches!(
            mw.register_source("s2", NodeId(9), schema.clone()),
            Err(SolarError::UnknownNode(_))
        ));
        let src = SourceId(0);
        assert!(matches!(
            mw.subscribe("a", NodeId(9), src, FilterSpec::delta("t", 1.0, 0.4)),
            Err(SolarError::UnknownNode(_))
        ));
        assert!(matches!(
            mw.subscribe(
                "a",
                NodeId(0),
                SourceId(5),
                FilterSpec::delta("t", 1.0, 0.4)
            ),
            Err(SolarError::UnknownId(_))
        ));
        assert!(matches!(
            mw.unsubscribe(SubscriptionHandle(9)),
            Err(SolarError::UnknownId(_))
        ));
        assert!(matches!(
            mw.resubscribe(SubscriptionHandle(9), FilterSpec::delta("t", 1.0, 0.4)),
            Err(SolarError::UnknownId(_))
        ));
    }

    #[test]
    fn operator_graph_reflects_live_subscriptions() {
        let (mut mw, src, _) = setup(MiddlewareConfig::default());
        let g = mw.operator_graph();
        let sites = g.group_filter_sites();
        assert_eq!(sites.len(), 1, "one source serving three specs");
        assert_eq!(sites[0].1.len(), 3);
        let handle = mw.subscriptions(src).unwrap()[0];
        mw.unsubscribe(handle).unwrap();
        let g = mw.operator_graph();
        assert_eq!(g.group_filter_sites()[0].1.len(), 2);
    }

    #[test]
    fn consecutive_runs_reset_counters() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let r1 = mw.run_trace(src, stream(&schema, 100)).unwrap();
        // engine is finished after run 1; redeploy for run 2
        mw.deploy().unwrap();
        let r2 = mw.run_trace(src, stream(&schema, 100)).unwrap();
        assert_eq!(r1.per_app[0].tuples, r2.per_app[0].tuples);
        assert_eq!(r1.network_bytes, r2.network_bytes);
    }

    #[test]
    fn explicit_pipeline_matches_run_trace() {
        // Driving the pipeline by hand must be exactly the run_trace path.
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let via_run_trace = mw.run_trace(src, stream(&schema, 200)).unwrap();

        let (mut mw2, src2, schema2) = setup(MiddlewareConfig::default());
        {
            let mut p = mw2.pipeline(src2).unwrap();
            for t in stream(&schema2, 200) {
                p.push(t).unwrap();
            }
            assert!(p.metrics().input_tuples == 200);
            p.finish().unwrap();
        }
        let report = mw2.report(src2).unwrap();
        assert_eq!(via_run_trace.network_bytes, report.network_bytes);
        assert_eq!(via_run_trace.messages, report.messages);
        assert_eq!(via_run_trace.per_app, report.per_app);
        assert_eq!(
            via_run_trace.engine.output_tuples,
            report.engine.output_tuples
        );
    }

    #[test]
    fn push_batch_feeds_whole_slice() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        mw.push_batch(src, stream(&schema, 150)).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        assert_eq!(report.engine.input_tuples, 150);
        assert!(report.per_app.iter().all(|a| a.tuples > 0));
    }

    #[test]
    fn pipeline_requires_deploy_and_known_source() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        let _ = mw
            .subscribe("a", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        assert!(matches!(mw.pipeline(src), Err(SolarError::NotDeployed)));
        mw.deploy().unwrap();
        assert!(matches!(
            mw.pipeline(SourceId(7)),
            Err(SolarError::UnknownId(_))
        ));
        assert!(mw.pipeline(src).is_ok());
    }

    #[test]
    fn flow_monitor_sees_emissions_via_metered_sink() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let report = mw.run_trace(src, stream(&schema, 200)).unwrap();
        let s = &mw.sources[src.0];
        assert_eq!(s.flow.emitted(), report.engine.emissions);
        assert_eq!(s.flow.emitted_labels(), report.engine.recipient_labels);
        assert_eq!(s.flow.samples(), 200);
    }

    #[test]
    fn sharded_pipeline_is_byte_identical_to_inline() {
        // Deliveries, byte counts and per-app stats must not change when
        // the engine moves onto the sharded path — only who runs it does.
        let inline = {
            let (mut mw, src, schema) = setup(MiddlewareConfig::default());
            mw.run_trace(src, stream(&schema, 400)).unwrap()
        };
        for parallelism in [2usize, 4] {
            let sharded = {
                let (mut mw, src, schema) = setup(MiddlewareConfig {
                    parallelism,
                    ..Default::default()
                });
                mw.run_trace(src, stream(&schema, 400)).unwrap()
            };
            assert_eq!(sharded.per_app, inline.per_app, "n={parallelism}");
            assert_eq!(sharded.network_bytes, inline.network_bytes);
            assert_eq!(sharded.messages, inline.messages);
            assert_eq!(sharded.engine.output_tuples, inline.engine.output_tuples);
            assert_eq!(sharded.engine.emissions, inline.engine.emissions);
            assert_eq!(sharded.engine.latencies_us, inline.engine.latencies_us);
        }
    }

    #[test]
    fn sharded_live_churn_matches_inline() {
        // The control plane rides the data channel on the sharded path;
        // deliveries with mid-stream churn must match the inline path
        // delivery-for-delivery.
        let run = |parallelism: usize| {
            let (mut mw, src, schema) = setup(MiddlewareConfig {
                parallelism,
                ..Default::default()
            });
            let tuples = stream(&schema, 300);
            mw.push_batch(src, tuples[..120].to_vec()).unwrap();
            let late = mw
                .subscribe("late", NodeId(1), src, FilterSpec::delta("t", 1.5, 0.6))
                .unwrap();
            let first = mw.subscriptions(src).unwrap()[0];
            mw.push_batch(src, tuples[120..200].to_vec()).unwrap();
            mw.unsubscribe(first).unwrap();
            mw.resubscribe(late, FilterSpec::delta("t", 2.2, 0.8))
                .unwrap();
            mw.push_batch(src, tuples[200..].to_vec()).unwrap();
            mw.finish(src).unwrap();
            mw.report(src).unwrap()
        };
        let inline = run(1);
        for parallelism in [2usize, 4] {
            let sharded = run(parallelism);
            assert_eq!(sharded.per_app, inline.per_app, "n={parallelism}");
            assert_eq!(sharded.engine.emissions, inline.engine.emissions);
            assert_eq!(sharded.engine.output_tuples, inline.engine.output_tuples);
        }
    }

    #[test]
    fn sharded_flow_monitor_aggregates_across_shards() {
        let (mut mw, src, schema) = setup(MiddlewareConfig {
            parallelism: 2,
            ..Default::default()
        });
        let report = mw.run_trace(src, stream(&schema, 200)).unwrap();
        let s = &mw.sources[src.0];
        // output-side accounting flows through the same Metered sink …
        assert_eq!(s.flow.emitted(), report.engine.emissions);
        assert_eq!(s.flow.emitted_labels(), report.engine.recipient_labels);
        // … and the input side sees one (arrival, cpu) sample per tuple,
        // reconstructed from the shards' step costs.
        assert_eq!(s.flow.samples(), 200);
        assert_eq!(mw.flow_decision(src).unwrap(), FlowDecision::Ok);
    }

    mod fault_tolerance {
        use super::*;

        /// Deterministic slice of a report (wall-clock-free).
        pub(super) fn fingerprint(r: &RunReport) -> (u64, u64, u64, u64, Vec<AppReport>) {
            (
                r.engine.input_tuples,
                r.engine.output_tuples,
                r.engine.emissions,
                r.engine.recipient_labels,
                r.per_app.clone(),
            )
        }

        #[test]
        fn recover_continues_reports_under_the_same_handles() {
            for parallelism in [1usize, 2] {
                let config = MiddlewareConfig {
                    parallelism,
                    ..Default::default()
                };
                let tuples = {
                    let (_, _, schema) = setup(config);
                    stream(&schema, 400)
                };
                // Fault-free arm: checkpoint at 200 and keep going.
                let expected = {
                    let (mut mw, src, _) = setup(config);
                    mw.push_batch(src, tuples[..200].to_vec()).unwrap();
                    let snap = mw.checkpoint().unwrap();
                    assert_eq!(snap.sources(), 1);
                    assert_eq!(snap.subscriptions(), 3);
                    mw.push_batch(src, tuples[200..].to_vec()).unwrap();
                    mw.finish(src).unwrap();
                    mw.report(src).unwrap()
                };
                // Crash arm: checkpoint at 200, lose the process (some
                // post-checkpoint pushes included), recover on a fresh
                // overlay, replay the suffix.
                let recovered = {
                    let (mut mw, src, _) = setup(config);
                    mw.push_batch(src, tuples[..200].to_vec()).unwrap();
                    let snap = mw.checkpoint().unwrap();
                    mw.push_batch(src, tuples[200..260].to_vec()).unwrap();
                    drop(mw); // the crash
                    let overlay = Overlay::new(Topology::ring(7).build());
                    let mut mw = Middleware::recover(overlay, &snap).unwrap();
                    mw.push_batch(src, tuples[200..].to_vec()).unwrap();
                    mw.finish(src).unwrap();
                    mw.report(src).unwrap()
                };
                assert_eq!(
                    fingerprint(&recovered),
                    fingerprint(&expected),
                    "parallelism={parallelism}"
                );
                // handles stayed stable and stats continued (not restarted)
                for (a, b) in recovered.per_app.iter().zip(&expected.per_app) {
                    assert_eq!(a.handle, b.handle);
                    assert_eq!(a.tuples, b.tuples);
                }
            }
        }

        #[test]
        fn recovered_middleware_keeps_the_live_control_plane() {
            let (mut mw, src, schema) = setup(MiddlewareConfig::default());
            let tuples = stream(&schema, 300);
            mw.push_batch(src, tuples[..150].to_vec()).unwrap();
            let snap = mw.checkpoint().unwrap();
            let mut mw =
                Middleware::recover(Overlay::new(Topology::ring(7).build()), &snap).unwrap();
            // subscribe/unsubscribe/regroup still work post-recovery
            let late = mw
                .subscribe("late", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
                .unwrap();
            let first = mw.subscriptions(src).unwrap()[0];
            mw.unsubscribe(first).unwrap();
            mw.push_batch(src, tuples[150..].to_vec()).unwrap();
            mw.finish(src).unwrap();
            let report = mw.report(src).unwrap();
            assert_eq!(report.per_app.len(), 4);
            let entry = report.per_app.iter().find(|a| a.handle == late).unwrap();
            assert!(entry.active && entry.tuples > 0);
            let removed = report.per_app.iter().find(|a| a.handle == first).unwrap();
            assert!(!removed.active);
            assert!(removed.tuples > 0, "pre-crash stats survive recovery");
        }

        #[test]
        fn checkpoint_boundary_drain_is_disseminated_and_accounted() {
            let (mut mw, src, schema) = setup(MiddlewareConfig::default());
            let tuples = stream(&schema, 200);
            mw.push_batch(src, tuples[..100].to_vec()).unwrap();
            let before: u64 = mw
                .report(src)
                .unwrap()
                .per_app
                .iter()
                .map(|a| a.tuples)
                .sum();
            mw.checkpoint().unwrap();
            let after: u64 = mw
                .report(src)
                .unwrap()
                .per_app
                .iter()
                .map(|a| a.tuples)
                .sum();
            assert!(after >= before, "drain cannot lose deliveries");
            // the engines crossed exactly one epoch boundary
            match &mw.sources[src.0].parts[0].engine {
                EngineHost::Single(e) => assert_eq!(e.epoch(), 1),
                EngineHost::Sharded(_) => unreachable!("default config is inline"),
            }
            mw.push_batch(src, tuples[100..].to_vec()).unwrap();
            mw.finish(src).unwrap();
        }

        #[test]
        fn failed_forwarder_node_keeps_every_subscriber_delivering() {
            // ring(9) with subscribers on 2/4/6 and the source on 0: the
            // odd nodes are pure forwarders. Failing one exercises the
            // Scribe re-graft under a live middleware deployment.
            let (mut mw, src, schema) = setup_ring9();
            let tuples = stream(&schema, 300);
            mw.push_batch(src, tuples[..150].to_vec()).unwrap();
            // nodes hosting sources/subscribers are protected
            assert!(matches!(
                mw.fail_node(NodeId(0)),
                Err(SolarError::NodeInUse(_))
            ));
            assert!(matches!(
                mw.fail_node(NodeId(2)),
                Err(SolarError::NodeInUse(_))
            ));
            let mut repaired = false;
            for forwarder in [1u32, 3, 5, 7] {
                let report = mw.fail_node(NodeId(forwarder)).unwrap();
                repaired |= report.regrafts > 0 || report.reroots > 0;
            }
            assert!(repaired, "some forwarder was load-bearing");
            mw.push_batch(src, tuples[150..].to_vec()).unwrap();
            mw.finish(src).unwrap();
            let report = mw.report(src).unwrap();
            for app in &report.per_app {
                assert!(
                    app.tuples > 0,
                    "{} starved after forwarder failures",
                    app.name
                );
            }
            assert!(mw.recover_node(NodeId(1)).unwrap());
        }

        fn setup_ring9() -> (Middleware, SourceId, Schema) {
            let overlay = Overlay::new(Topology::ring(9).build());
            let mut mw = Middleware::new(overlay);
            let schema = Schema::new(["t"]);
            let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
            for (name, node) in [("a1", 2u32), ("a2", 4), ("a3", 6)] {
                let _ = mw
                    .subscribe(name, NodeId(node), src, FilterSpec::delta("t", 2.0, 0.9))
                    .unwrap();
            }
            mw.deploy().unwrap();
            (mw, src, schema)
        }
    }

    #[test]
    fn error_display_covers_variants() {
        let e = SolarError::DuplicateSource("x".into());
        assert!(e.to_string().contains('x'));
        let e = SolarError::NotDeployed;
        assert!(e.to_string().contains("deploy"));
        let e = SolarError::NotSubscribed("sub3".into());
        assert!(e.to_string().contains("sub3"));
    }

    /// Shuffles a stream within `bound` of event time, deterministically.
    fn shuffle_within(tuples: &[Tuple], bound: Micros, salt: u64) -> Vec<Tuple> {
        let mut keyed: Vec<(Micros, u64, Tuple)> = tuples
            .iter()
            .map(|t| {
                // Cheap deterministic jitter in [0, bound): splitmix64
                // finalizer over (seq, salt).
                let mut x = t.seq().wrapping_add(salt);
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                let j = x % bound.as_micros().max(1);
                (
                    t.timestamp().checked_add(Micros(j)).unwrap(),
                    t.seq(),
                    t.clone(),
                )
            })
            .collect();
        keyed.sort_by_key(|&(d, s, _)| (d, s));
        keyed.into_iter().map(|(_, _, t)| t).collect()
    }

    #[test]
    fn event_time_front_end_matches_ordered_run() {
        use gasf_core::event_time::EventTimeConfig;
        let bound = Micros::from_millis(50);
        let config = MiddlewareConfig {
            event_time: Some(EventTimeConfig::bounded(bound)),
            ..Default::default()
        };
        let ordered = {
            let (mut mw, src, schema) = setup(MiddlewareConfig::default());
            mw.run_trace(src, stream(&schema, 400)).unwrap()
        };
        let disordered = {
            let (mut mw, src, schema) = setup(config);
            let tuples = stream(&schema, 400);
            let shuffled = shuffle_within(&tuples, bound, 17);
            assert_ne!(shuffled, tuples, "the shuffle must actually disorder");
            let report = mw.run_trace(src, shuffled).unwrap();
            let stats = mw.event_time_stats(src).unwrap();
            assert_eq!(stats.late_dropped, 0, "jitter within bound is never late");
            assert_eq!(stats.released, 400);
            assert_eq!(stats.buffered, 0, "finish flushes the buffer");
            report
        };
        assert_eq!(
            fault_tolerance::fingerprint(&ordered),
            fault_tolerance::fingerprint(&disordered),
            "reordered arrivals must reproduce the ordered run byte for byte"
        );
    }

    #[test]
    fn late_tuples_drop_or_patch_per_policy() {
        use gasf_core::event_time::{EventTimeConfig, LatePolicy};
        let bound = Micros::from_millis(20);
        let run = |late: LatePolicy| {
            let (mut mw, src, schema) = setup(MiddlewareConfig {
                event_time: Some(EventTimeConfig::bounded(bound).late(late)),
                ..Default::default()
            });
            let tuples = stream(&schema, 200);
            let mut arrivals = shuffle_within(&tuples, Micros::from_millis(10), 3);
            // Hold one early tuple back to the end: a guaranteed straggler.
            let straggler = arrivals.remove(5);
            arrivals.push(straggler);
            mw.run_trace(src, arrivals).unwrap();
            let stats = mw.event_time_stats(src).unwrap();
            let report = mw.report(src).unwrap();
            (stats, report)
        };

        let (drop_stats, drop_report) = run(LatePolicy::Drop);
        assert_eq!(drop_stats.late_dropped, 1, "the straggler is dropped");
        assert_eq!(drop_stats.patches, 0);
        assert_eq!(drop_report.engine.input_tuples, 199, "engines never see it");

        let (patch_stats, patch_report) = run(LatePolicy::EmitPatch);
        assert_eq!(patch_stats.late_dropped, 0);
        assert_eq!(patch_stats.patches, 1, "the straggler becomes a patch");
        assert_eq!(patch_report.engine.input_tuples, 199);
        // The patch was delivered to subscribers beyond the engine output.
        let drop_delivered: u64 = drop_report.per_app.iter().map(|a| a.tuples).sum();
        let patch_delivered: u64 = patch_report.per_app.iter().map(|a| a.tuples).sum();
        assert_eq!(
            patch_delivered,
            drop_delivered + 3,
            "one patch reaches each of the three subscriptions"
        );
    }

    #[test]
    fn event_time_state_survives_checkpoint_recover() {
        use gasf_core::event_time::EventTimeConfig;
        let bound = Micros::from_millis(100);
        let (mut mw, src, schema) = setup(MiddlewareConfig {
            event_time: Some(EventTimeConfig::bounded(bound)),
            ..Default::default()
        });
        let tuples = stream(&schema, 100);
        // Push an in-order prefix: the last few tuples sit in the buffer
        // (the watermark trails max_seen by the bound).
        let mut pipeline = mw.pipeline(src).unwrap();
        for t in &tuples[..60] {
            pipeline.push(t.clone()).unwrap();
        }
        let before = mw.event_time_stats(src).unwrap();
        assert!(before.buffered > 0, "bound must hold tuples back");
        let snap = mw.checkpoint().unwrap();
        let recovered =
            Middleware::recover(Overlay::new(Topology::ring(7).build()), &snap).unwrap();
        let after = recovered.event_time_stats(src).unwrap();
        assert_eq!(before, after, "watermark + buffer state survive the hop");
        drop(schema);
    }
}
// (appended test module extension)
#[cfg(test)]
mod flow_tests {
    use super::*;
    use gasf_core::tuple::TupleBuilder;
    use gasf_net::Topology;

    #[test]
    fn flow_decision_available_after_processing() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        let _ = mw
            .subscribe("a", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        mw.deploy().unwrap();
        let mut b = TupleBuilder::new(&schema);
        for i in 0..50u64 {
            let t = b
                .at_millis(10 * (i + 1))
                .set("t", i as f64)
                .build()
                .unwrap();
            mw.process(src, t).unwrap();
        }
        // A real engine is far faster than 10 ms per tuple.
        assert_eq!(mw.flow_decision(src).unwrap(), FlowDecision::Ok);
        assert!(mw.flow_decision(SourceId(9)).is_err());
    }
}
