//! The Solar-like middleware: pub/sub + group-aware filtering service +
//! multicast dissemination (Fig. 4.1's software architecture).
//!
//! * the **quality specification manager** is the [`FilterSpec`] registry
//!   collected through [`Middleware::subscribe`],
//! * the **group-aware filtering manager** instantiates one
//!   [`GroupEngine`] per source at [`Middleware::deploy`] time,
//! * the **global state manager** lives inside the engine,
//! * the **output scheduler** is the engine's output strategy feeding the
//!   overlay's tuple-level multicast.
//!
//! The data path is a sink-based pipeline (Fig. 4.1 as an API): a
//! [`Pipeline`] wires source → [`GroupEngine`] → [`MulticastSink`] — the
//! overlay dissemination implemented as an
//! [`EmissionSink`](gasf_core::sink::EmissionSink) — with
//! [`FlowMonitor`] accounting tee'd in via
//! [`Metered`](crate::flow::Metered). Emissions stream from the engine's
//! release path straight into the multicast tree without ever being
//! collected into an intermediate `Vec<Emission>`.

use crate::flow::{FlowDecision, FlowMonitor, Metered};
use crate::graph::OperatorGraph;
use gasf_core::cuts::TimeConstraint;
use gasf_core::engine::{Algorithm, Emission, GroupEngine, OutputStrategy};
use gasf_core::metrics::EngineMetrics;
use gasf_core::quality::FilterSpec;
use gasf_core::schema::Schema;
use gasf_core::shard::ShardedEngine;
use gasf_core::sink::EmissionSink;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use gasf_net::{GroupId, NodeId, Overlay};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(usize);

/// Identifier of a subscribed application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(usize);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Middleware errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum SolarError {
    /// A source name was registered twice.
    DuplicateSource(String),
    /// A referenced source/app id is unknown.
    UnknownId(String),
    /// A node id is outside the overlay's topology.
    UnknownNode(NodeId),
    /// Subscriptions changed after deployment; call `deploy` again.
    NotDeployed,
    /// A source has no subscribers, so it cannot be run.
    NoSubscribers(String),
    /// Error from the filtering engine.
    Core(gasf_core::Error),
    /// Error from the overlay network.
    Net(gasf_net::multicast::NetError),
}

impl fmt::Display for SolarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolarError::DuplicateSource(n) => write!(f, "source `{n}` already registered"),
            SolarError::UnknownId(what) => write!(f, "unknown id: {what}"),
            SolarError::UnknownNode(n) => write!(f, "node {n} is not in the topology"),
            SolarError::NotDeployed => write!(f, "middleware not deployed; call deploy()"),
            SolarError::NoSubscribers(n) => write!(f, "source `{n}` has no subscribers"),
            SolarError::Core(e) => write!(f, "filtering error: {e}"),
            SolarError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for SolarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolarError::Core(e) => Some(e),
            SolarError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gasf_core::Error> for SolarError {
    fn from(e: gasf_core::Error) -> Self {
        SolarError::Core(e)
    }
}

impl From<gasf_net::multicast::NetError> for SolarError {
    fn from(e: gasf_net::multicast::NetError) -> Self {
        SolarError::Net(e)
    }
}

/// Filtering-service configuration applied to every source engine.
#[derive(Debug, Clone, Copy)]
pub struct MiddlewareConfig {
    /// Second-stage algorithm.
    pub algorithm: Algorithm,
    /// Output strategy.
    pub strategy: OutputStrategy,
    /// Optional group time constraint (timely cuts).
    pub constraint: Option<TimeConstraint>,
    /// Worker shards per source engine (default 1 = inline). With more
    /// than one, [`Middleware::deploy`] hosts each source's group behind a
    /// [`ShardedEngine`], moving filtering off the caller thread so it
    /// overlaps with multicast dissemination; output (and therefore all
    /// delivery accounting) is byte-identical to the inline path, and
    /// [`FlowMonitor`] samples are aggregated across the shards. (The
    /// byte-identical guarantee holds whenever the engine itself is
    /// input-deterministic; with a `constraint` set, timely-cut timing
    /// depends on measured wall clock on *both* paths, so no two runs —
    /// inline or sharded — are guaranteed identical there.)
    pub parallelism: usize,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            algorithm: Algorithm::RegionGreedy,
            strategy: OutputStrategy::Earliest,
            constraint: None,
            parallelism: 1,
        }
    }
}

/// A source's filtering engine: inline, or behind the sharded path.
#[derive(Debug)]
enum EngineHost {
    Single(Box<GroupEngine>),
    Sharded(Box<ShardedEngine>),
}

impl EngineHost {
    /// Engine metrics — aggregated across shards on the parallel path
    /// (complete once the stream is finished; see
    /// [`ShardedEngine::metrics`]).
    fn metrics(&self) -> EngineMetrics {
        match self {
            EngineHost::Single(e) => e.metrics().clone(),
            EngineHost::Sharded(e) => e.metrics(),
        }
    }
}

#[derive(Debug)]
struct SourceEntry {
    name: String,
    node: NodeId,
    schema: Schema,
    subscribers: Vec<AppId>,
    engine: Option<EngineHost>,
    group: Option<GroupId>,
    flow: FlowMonitor,
}

#[derive(Debug)]
struct AppEntry {
    name: String,
    node: NodeId,
    /// Kept for introspection/debugging of multi-source deployments.
    #[allow(dead_code)]
    source: SourceId,
    spec: FilterSpec,
    tuples: u64,
    e2e_latency_us: Vec<u64>,
}

/// Per-application run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// The application.
    pub app: AppId,
    /// Its registered name.
    pub name: String,
    /// Tuples delivered to it.
    pub tuples: u64,
    /// Mean end-to-end latency (filtering + overlay multicast).
    pub mean_e2e_latency: Micros,
}

/// Result of running one trace through a source.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Engine metrics (O/I ratio, CPU, filtering latency, regions, …).
    pub engine: EngineMetrics,
    /// Bytes that crossed overlay links during this run.
    pub network_bytes: u64,
    /// Multicast messages sent during this run.
    pub messages: u64,
    /// Per-application delivery statistics.
    pub per_app: Vec<AppReport>,
}

impl RunReport {
    /// Mean end-to-end latency across all applications.
    pub fn mean_e2e_latency(&self) -> Micros {
        let (sum, n) = self.per_app.iter().fold((0u64, 0u64), |(s, n), a| {
            (s + a.mean_e2e_latency.as_micros() * a.tuples, n + a.tuples)
        });
        match sum.checked_div(n) {
            Some(mean) => Micros(mean),
            None => Micros::ZERO,
        }
    }
}

/// The data-dissemination middleware.
///
/// ```rust
/// use gasf_solar::{Middleware, MiddlewareConfig};
/// use gasf_net::{Overlay, Topology, NodeId};
/// use gasf_core::prelude::*;
///
/// # fn main() -> Result<(), gasf_solar::SolarError> {
/// let overlay = Overlay::new(Topology::ring(7).build());
/// let mut mw = Middleware::new(overlay);
/// let schema = Schema::new(["t"]);
/// let src = mw.register_source("buoy", NodeId(0), schema.clone())?;
/// mw.subscribe("ui", NodeId(3), src, FilterSpec::delta("t", 1.0, 0.4))?;
/// mw.subscribe("log", NodeId(5), src, FilterSpec::delta("t", 2.0, 0.9))?;
/// mw.deploy()?;
/// let mut b = TupleBuilder::new(&schema);
/// let tuples: Vec<Tuple> = (0..20)
///     .map(|i| b.at_millis(10 * (i + 1)).set("t", i as f64).build().unwrap())
///     .collect();
/// let report = mw.run_trace(src, tuples)?;
/// assert!(report.engine.oi_ratio() <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Middleware {
    overlay: Overlay,
    config: MiddlewareConfig,
    sources: Vec<SourceEntry>,
    apps: Vec<AppEntry>,
    deployed: bool,
}

impl Middleware {
    /// Creates a middleware over an overlay with default configuration.
    pub fn new(overlay: Overlay) -> Self {
        Self::with_config(overlay, MiddlewareConfig::default())
    }

    /// Creates a middleware with explicit filtering configuration.
    pub fn with_config(overlay: Overlay, config: MiddlewareConfig) -> Self {
        Middleware {
            overlay,
            config,
            sources: Vec::new(),
            apps: Vec::new(),
            deployed: false,
        }
    }

    /// The overlay (traffic counters, topology).
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// Registers (advertises) a source at a node.
    ///
    /// # Errors
    /// [`SolarError::DuplicateSource`] / [`SolarError::UnknownNode`].
    pub fn register_source(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
        schema: Schema,
    ) -> Result<SourceId, SolarError> {
        let name = name.into();
        if self.sources.iter().any(|s| s.name == name) {
            return Err(SolarError::DuplicateSource(name));
        }
        if node.index() >= self.overlay.topology().len() {
            return Err(SolarError::UnknownNode(node));
        }
        self.sources.push(SourceEntry {
            name,
            node,
            schema,
            subscribers: Vec::new(),
            engine: None,
            group: None,
            flow: FlowMonitor::default(),
        });
        self.deployed = false;
        Ok(SourceId(self.sources.len() - 1))
    }

    /// Subscribes an application (at `node`) to a source with its quality
    /// requirement.
    ///
    /// # Errors
    /// [`SolarError::UnknownId`] / [`SolarError::UnknownNode`].
    pub fn subscribe(
        &mut self,
        app_name: impl Into<String>,
        node: NodeId,
        source: SourceId,
        spec: FilterSpec,
    ) -> Result<AppId, SolarError> {
        if source.0 >= self.sources.len() {
            return Err(SolarError::UnknownId(source.to_string()));
        }
        if node.index() >= self.overlay.topology().len() {
            return Err(SolarError::UnknownNode(node));
        }
        let app = AppId(self.apps.len());
        self.apps.push(AppEntry {
            name: app_name.into(),
            node,
            source,
            spec,
            tuples: 0,
            e2e_latency_us: Vec::new(),
        });
        self.sources[source.0].subscribers.push(app);
        self.deployed = false;
        Ok(app)
    }

    /// Builds the operator graph implied by the current subscriptions —
    /// the structure Fig. 2.2 propagates quality specs over.
    pub fn operator_graph(&self) -> OperatorGraph {
        let mut g = OperatorGraph::new();
        for s in &self.sources {
            let sid = g.add(s.name.clone(), crate::graph::OpKind::Source);
            for &app in &s.subscribers {
                let a = &self.apps[app.0];
                let aid = g.add(
                    a.name.clone(),
                    crate::graph::OpKind::Application(a.spec.clone()),
                );
                g.connect(sid, aid).expect("source->app edge is acyclic");
            }
        }
        g
    }

    /// Instantiates the filtering engines and multicast groups.
    ///
    /// # Errors
    /// Propagates engine-construction and group-creation failures.
    pub fn deploy(&mut self) -> Result<(), SolarError> {
        for (i, s) in self.sources.iter_mut().enumerate() {
            if s.subscribers.is_empty() {
                s.engine = None;
                s.group = None;
                continue;
            }
            let mut builder = GroupEngine::builder(s.schema.clone())
                .algorithm(self.config.algorithm)
                .output_strategy(self.config.strategy);
            if let Some(c) = self.config.constraint {
                builder = builder.time_constraint(c);
            }
            for &app in &s.subscribers {
                builder = builder.filter(self.apps[app.0].spec.clone());
            }
            s.engine = Some(if self.config.parallelism > 1 {
                EngineHost::Sharded(Box::new(
                    ShardedEngine::builder()
                        .parallelism(self.config.parallelism)
                        .track_step_costs(true)
                        .route(format!("src:{i}:{}", s.name), builder)
                        .build()?,
                ))
            } else {
                EngineHost::Single(Box::new(builder.build()?))
            });
            let mut members: BTreeSet<NodeId> =
                s.subscribers.iter().map(|a| self.apps[a.0].node).collect();
            members.insert(s.node); // the source proxy is always a member
            let members: Vec<NodeId> = members.into_iter().collect();
            let group = self
                .overlay
                .create_group(&format!("src:{}:{}", i, s.name), &members)?;
            s.group = Some(group);
        }
        self.deployed = true;
        Ok(())
    }

    /// Wires a source's dataflow — engine → metered multicast sink — and
    /// returns it ready to push tuples. This is the primary data path:
    /// emissions stream from the engine's release scratch straight into
    /// the overlay's multicast trees, with [`FlowMonitor`] accounting
    /// tee'd in, and no intermediate `Vec<Emission>` is ever built.
    ///
    /// # Errors
    /// [`SolarError::NotDeployed`] / [`SolarError::UnknownId`] /
    /// [`SolarError::NoSubscribers`].
    pub fn pipeline(&mut self, source: SourceId) -> Result<Pipeline<'_>, SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        let s = self
            .sources
            .get_mut(source.0)
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))?;
        let engine = s
            .engine
            .as_mut()
            .ok_or_else(|| SolarError::NoSubscribers(s.name.clone()))?;
        let sink = MulticastSink {
            overlay: &mut self.overlay,
            apps: &mut self.apps,
            subscribers: &s.subscribers,
            group: s.group.expect("deployed source has a group"),
            src_node: s.node,
            error: None,
        };
        Ok(Pipeline {
            engine,
            sink: Metered::new(sink, &mut s.flow),
        })
    }

    /// Pushes one tuple into a source's filtering service, disseminating
    /// any released outputs.
    ///
    /// Thin wrapper over [`pipeline`](Self::pipeline); prefer holding a
    /// pipeline (or calling [`push_batch`](Self::push_batch)) when feeding
    /// more than one tuple.
    ///
    /// # Errors
    /// [`SolarError::NotDeployed`], engine errors, network errors.
    pub fn process(&mut self, source: SourceId, tuple: Tuple) -> Result<(), SolarError> {
        self.pipeline(source)?.push(tuple)
    }

    /// Pushes a batch of tuples through a source's pipeline without
    /// re-wiring it per tuple.
    ///
    /// # Errors
    /// Same as [`process`](Self::process); stops at the first failure.
    pub fn push_batch(
        &mut self,
        source: SourceId,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), SolarError> {
        self.pipeline(source)?.push_batch(tuples)
    }

    /// Ends a source's stream and disseminates the tail.
    ///
    /// # Errors
    /// Same as [`process`](Self::process).
    pub fn finish(&mut self, source: SourceId) -> Result<(), SolarError> {
        self.pipeline(source)?.finish()
    }

    /// The flow-control monitor's current advice for a source (§4.8:
    /// congested input buffers call for shedding or quality degradation).
    ///
    /// # Errors
    /// Returns [`SolarError::UnknownId`] for unknown sources.
    pub fn flow_decision(&self, source: SourceId) -> Result<FlowDecision, SolarError> {
        self.sources
            .get(source.0)
            .map(|s| s.flow.decision())
            .ok_or_else(|| SolarError::UnknownId(source.to_string()))
    }

    /// Runs a full trace through a source's pipeline and reports the
    /// outcome. Resets per-app statistics and traffic counters first, so
    /// reports from consecutive runs are independent.
    ///
    /// # Errors
    /// Propagates any `process`/`finish` error.
    pub fn run_trace<I: IntoIterator<Item = Tuple>>(
        &mut self,
        source: SourceId,
        tuples: I,
    ) -> Result<RunReport, SolarError> {
        if !self.deployed {
            return Err(SolarError::NotDeployed);
        }
        // reset stats
        self.overlay.reset_stats();
        for app in &mut self.apps {
            app.tuples = 0;
            app.e2e_latency_us.clear();
        }
        let mut pipeline = self.pipeline(source)?;
        pipeline.push_batch(tuples)?;
        pipeline.finish()?;
        self.report(source)
    }

    /// Assembles the [`RunReport`] for a source's most recent run.
    fn report(&self, source: SourceId) -> Result<RunReport, SolarError> {
        let s = &self.sources[source.0];
        let host = s
            .engine
            .as_ref()
            .ok_or_else(|| SolarError::NoSubscribers(s.name.clone()))?;
        let per_app = s
            .subscribers
            .iter()
            .map(|&a| {
                let app = &self.apps[a.0];
                let mean = if app.e2e_latency_us.is_empty() {
                    Micros::ZERO
                } else {
                    Micros(app.e2e_latency_us.iter().sum::<u64>() / app.e2e_latency_us.len() as u64)
                };
                AppReport {
                    app: a,
                    name: app.name.clone(),
                    tuples: app.tuples,
                    mean_e2e_latency: mean,
                }
            })
            .collect();
        Ok(RunReport {
            engine: host.metrics(),
            network_bytes: self.overlay.total_bytes(),
            messages: self.overlay.messages(),
            per_app,
        })
    }
}

/// Overlay dissemination as an [`EmissionSink`]: every accepted emission
/// is multicast down the group's tree (pruned to the emission's recipient
/// subset, via the borrow-based
/// [`Overlay::multicast_emission`](gasf_net::Overlay::multicast_emission)
/// path) and per-application delivery statistics are updated in place.
///
/// Network failures cannot surface through [`accept`](EmissionSink::accept)
/// (the sink contract is infallible), so the sink latches the first error
/// and ignores later emissions; [`Pipeline`] re-raises it after every
/// engine step. Obtained via [`Middleware::pipeline`].
#[derive(Debug)]
pub struct MulticastSink<'a> {
    overlay: &'a mut Overlay,
    apps: &'a mut Vec<AppEntry>,
    subscribers: &'a [AppId],
    group: GroupId,
    src_node: NodeId,
    error: Option<SolarError>,
}

impl MulticastSink<'_> {
    /// Re-raises (and clears) the first deferred network error.
    fn take_error(&mut self) -> Result<(), SolarError> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl EmissionSink for MulticastSink<'_> {
    fn accept(&mut self, emission: &Emission) {
        if self.error.is_some() {
            return;
        }
        // Map recipient filter ids (positional) to application nodes; the
        // overlay dedups nodes and reuses its recipient scratch buffer.
        let subscribers = self.subscribers;
        let apps = &*self.apps;
        let delivery =
            match self
                .overlay
                .multicast_emission(self.group, self.src_node, emission, |f| {
                    apps[subscribers[f.index()].0].node
                }) {
                Ok(d) => d,
                Err(e) => {
                    self.error = Some(e.into());
                    return;
                }
            };
        for f in emission.recipients.iter() {
            let entry = &mut self.apps[subscribers[f.index()].0];
            let net = delivery
                .latencies
                .get(&entry.node)
                .copied()
                .unwrap_or(Micros::ZERO);
            entry.tuples += 1;
            entry
                .e2e_latency_us
                .push((emission.latency() + net).as_micros());
        }
    }
}

/// A wired dataflow for one source: engine → [`Metered`] flow accounting →
/// [`MulticastSink`] dissemination (Fig. 4.1 as an API).
///
/// Borrow one from [`Middleware::pipeline`], feed it with
/// [`push`](Pipeline::push)/[`push_batch`](Pipeline::push_batch), and end
/// the stream with [`finish`](Pipeline::finish). Dropping the pipeline
/// without finishing leaves the source open for a later pipeline.
///
/// With [`MiddlewareConfig::parallelism`] above one, the engine side is a
/// [`ShardedEngine`]: filtering runs on worker threads and this pipeline's
/// caller thread only merges emissions and disseminates them — note that
/// on that path emissions released by a push may be multicast on a later
/// push (they are staged in shard batches), with
/// [`finish`](Pipeline::finish) always draining everything.
#[derive(Debug)]
pub struct Pipeline<'m> {
    engine: &'m mut EngineHost,
    sink: Metered<'m, MulticastSink<'m>>,
}

impl Pipeline<'_> {
    /// Pushes one tuple through the engine; released emissions are
    /// multicast as they stream out of the release path.
    ///
    /// # Errors
    /// Engine errors first (ordering violations, finished streams), then
    /// any network error raised while disseminating this step's emissions.
    pub fn push(&mut self, tuple: Tuple) -> Result<(), SolarError> {
        match self.engine {
            EngineHost::Single(ref mut engine) => {
                let arrival = tuple.timestamp();
                let cpu_before = engine.metrics().cpu;
                engine.push_into(tuple, &mut self.sink)?;
                let cpu_spent = engine.metrics().cpu.saturating_sub(cpu_before);
                self.sink.monitor().observe(arrival, cpu_spent);
            }
            EngineHost::Sharded(ref mut engine) => {
                engine.push_into(tuple, &mut self.sink)?;
                for (arrival, cpu) in engine.take_step_costs() {
                    self.sink.monitor().observe(arrival, cpu);
                }
            }
        }
        self.sink.inner_mut().take_error()
    }

    /// Pushes a batch of tuples, stopping at the first failure.
    ///
    /// # Errors
    /// Same as [`push`](Self::push).
    pub fn push_batch(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), SolarError> {
        for t in tuples {
            self.push(t)?;
        }
        Ok(())
    }

    /// Ends the stream, disseminating the tail.
    ///
    /// # Errors
    /// Same as [`push`](Self::push).
    pub fn finish(mut self) -> Result<(), SolarError> {
        match self.engine {
            EngineHost::Single(ref mut engine) => {
                engine.finish_into(&mut self.sink)?;
            }
            EngineHost::Sharded(ref mut engine) => {
                engine.finish_into(&mut self.sink)?;
                for (arrival, cpu) in engine.take_step_costs() {
                    self.sink.monitor().observe(arrival, cpu);
                }
            }
        }
        self.sink.inner_mut().take_error()
    }

    /// Metrics of the engine this pipeline feeds (aggregated across
    /// shards on the parallel path).
    pub fn metrics(&self) -> EngineMetrics {
        self.engine.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_core::tuple::TupleBuilder;
    use gasf_net::Topology;

    fn stream(schema: &Schema, n: usize) -> Vec<Tuple> {
        let mut b = TupleBuilder::new(schema);
        (0..n)
            .map(|i| {
                let v = (i as f64 * 0.7).sin() * 10.0 + i as f64 * 0.05;
                b.at_millis(10 * (i as u64 + 1))
                    .set("t", v)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    fn setup(config: MiddlewareConfig) -> (Middleware, SourceId, Schema) {
        let overlay = Overlay::new(Topology::ring(7).build());
        let mut mw = Middleware::with_config(overlay, config);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        mw.subscribe("a1", NodeId(2), src, FilterSpec::delta("t", 2.0, 0.9))
            .unwrap();
        mw.subscribe("a2", NodeId(4), src, FilterSpec::delta("t", 3.0, 1.4))
            .unwrap();
        mw.subscribe("a3", NodeId(6), src, FilterSpec::delta("t", 2.5, 1.2))
            .unwrap();
        mw.deploy().unwrap();
        (mw, src, schema)
    }

    #[test]
    fn end_to_end_delivery() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let report = mw.run_trace(src, stream(&schema, 300)).unwrap();
        assert_eq!(report.engine.input_tuples, 300);
        assert!(report.engine.output_tuples > 0);
        assert!(report.network_bytes > 0);
        assert_eq!(report.per_app.len(), 3);
        for app in &report.per_app {
            assert!(app.tuples > 0, "{} received nothing", app.name);
            assert!(app.mean_e2e_latency > Micros::ZERO);
        }
        // network latency beyond filtering latency
        assert!(report.mean_e2e_latency() > report.engine.mean_latency());
    }

    #[test]
    fn group_aware_uses_less_bandwidth_than_si() {
        let ga = {
            let (mut mw, src, schema) = setup(MiddlewareConfig::default());
            mw.run_trace(src, stream(&schema, 500)).unwrap()
        };
        let si = {
            let (mut mw, src, schema) = setup(MiddlewareConfig {
                algorithm: Algorithm::SelfInterested,
                ..Default::default()
            });
            mw.run_trace(src, stream(&schema, 500)).unwrap()
        };
        assert!(
            ga.engine.output_tuples <= si.engine.output_tuples,
            "group-aware {} vs SI {}",
            ga.engine.output_tuples,
            si.engine.output_tuples
        );
        assert!(
            ga.network_bytes <= si.network_bytes,
            "group-aware bytes {} vs SI {}",
            ga.network_bytes,
            si.network_bytes
        );
    }

    #[test]
    fn requires_deploy() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        mw.subscribe("a", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        let mut b = TupleBuilder::new(&schema);
        let t = b.at_millis(10).set("t", 0.0).build().unwrap();
        assert!(matches!(mw.process(src, t), Err(SolarError::NotDeployed)));
    }

    #[test]
    fn subscription_after_deploy_undeploys() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        mw.subscribe("late", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        let mut b = TupleBuilder::new(&schema);
        let t = b.at_millis(10).set("t", 0.0).build().unwrap();
        assert!(matches!(mw.process(src, t), Err(SolarError::NotDeployed)));
        mw.deploy().unwrap();
        let report = mw.run_trace(src, stream(&schema, 50)).unwrap();
        assert_eq!(report.per_app.len(), 4);
    }

    #[test]
    fn duplicate_source_and_bad_nodes_rejected() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        assert!(matches!(
            mw.register_source("s", NodeId(1), schema.clone()),
            Err(SolarError::DuplicateSource(_))
        ));
        assert!(matches!(
            mw.register_source("s2", NodeId(9), schema.clone()),
            Err(SolarError::UnknownNode(_))
        ));
        let src = SourceId(0);
        assert!(matches!(
            mw.subscribe("a", NodeId(9), src, FilterSpec::delta("t", 1.0, 0.4)),
            Err(SolarError::UnknownNode(_))
        ));
        assert!(matches!(
            mw.subscribe(
                "a",
                NodeId(0),
                SourceId(5),
                FilterSpec::delta("t", 1.0, 0.4)
            ),
            Err(SolarError::UnknownId(_))
        ));
    }

    #[test]
    fn operator_graph_reflects_subscriptions() {
        let (mw, _, _) = setup(MiddlewareConfig::default());
        let g = mw.operator_graph();
        let sites = g.group_filter_sites();
        assert_eq!(sites.len(), 1, "one source serving three specs");
        assert_eq!(sites[0].1.len(), 3);
    }

    #[test]
    fn consecutive_runs_reset_counters() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let r1 = mw.run_trace(src, stream(&schema, 100)).unwrap();
        // engine is finished after run 1; redeploy for run 2
        mw.deploy().unwrap();
        let r2 = mw.run_trace(src, stream(&schema, 100)).unwrap();
        assert_eq!(r1.per_app[0].tuples, r2.per_app[0].tuples);
        assert_eq!(r1.network_bytes, r2.network_bytes);
    }

    #[test]
    fn explicit_pipeline_matches_run_trace() {
        // Driving the pipeline by hand must be exactly the run_trace path.
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let via_run_trace = mw.run_trace(src, stream(&schema, 200)).unwrap();

        let (mut mw2, src2, schema2) = setup(MiddlewareConfig::default());
        {
            let mut p = mw2.pipeline(src2).unwrap();
            for t in stream(&schema2, 200) {
                p.push(t).unwrap();
            }
            assert!(p.metrics().input_tuples == 200);
            p.finish().unwrap();
        }
        let report = mw2.report(src2).unwrap();
        assert_eq!(via_run_trace.network_bytes, report.network_bytes);
        assert_eq!(via_run_trace.messages, report.messages);
        assert_eq!(via_run_trace.per_app, report.per_app);
        assert_eq!(
            via_run_trace.engine.output_tuples,
            report.engine.output_tuples
        );
    }

    #[test]
    fn push_batch_feeds_whole_slice() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        mw.push_batch(src, stream(&schema, 150)).unwrap();
        mw.finish(src).unwrap();
        let report = mw.report(src).unwrap();
        assert_eq!(report.engine.input_tuples, 150);
        assert!(report.per_app.iter().all(|a| a.tuples > 0));
    }

    #[test]
    fn pipeline_requires_deploy_and_known_source() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        mw.subscribe("a", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        assert!(matches!(mw.pipeline(src), Err(SolarError::NotDeployed)));
        mw.deploy().unwrap();
        assert!(matches!(
            mw.pipeline(SourceId(7)),
            Err(SolarError::UnknownId(_))
        ));
        assert!(mw.pipeline(src).is_ok());
    }

    #[test]
    fn flow_monitor_sees_emissions_via_metered_sink() {
        let (mut mw, src, schema) = setup(MiddlewareConfig::default());
        let report = mw.run_trace(src, stream(&schema, 200)).unwrap();
        let s = &mw.sources[src.0];
        assert_eq!(s.flow.emitted(), report.engine.emissions);
        assert_eq!(s.flow.emitted_labels(), report.engine.recipient_labels);
        assert_eq!(s.flow.samples(), 200);
    }

    #[test]
    fn sharded_pipeline_is_byte_identical_to_inline() {
        // Deliveries, byte counts and per-app stats must not change when
        // the engine moves onto the sharded path — only who runs it does.
        let inline = {
            let (mut mw, src, schema) = setup(MiddlewareConfig::default());
            mw.run_trace(src, stream(&schema, 400)).unwrap()
        };
        for parallelism in [2usize, 4] {
            let sharded = {
                let (mut mw, src, schema) = setup(MiddlewareConfig {
                    parallelism,
                    ..Default::default()
                });
                mw.run_trace(src, stream(&schema, 400)).unwrap()
            };
            assert_eq!(sharded.per_app, inline.per_app, "n={parallelism}");
            assert_eq!(sharded.network_bytes, inline.network_bytes);
            assert_eq!(sharded.messages, inline.messages);
            assert_eq!(sharded.engine.output_tuples, inline.engine.output_tuples);
            assert_eq!(sharded.engine.emissions, inline.engine.emissions);
            assert_eq!(sharded.engine.latencies_us, inline.engine.latencies_us);
        }
    }

    #[test]
    fn sharded_flow_monitor_aggregates_across_shards() {
        let (mut mw, src, schema) = setup(MiddlewareConfig {
            parallelism: 2,
            ..Default::default()
        });
        let report = mw.run_trace(src, stream(&schema, 200)).unwrap();
        let s = &mw.sources[src.0];
        // output-side accounting flows through the same Metered sink …
        assert_eq!(s.flow.emitted(), report.engine.emissions);
        assert_eq!(s.flow.emitted_labels(), report.engine.recipient_labels);
        // … and the input side sees one (arrival, cpu) sample per tuple,
        // reconstructed from the shards' step costs.
        assert_eq!(s.flow.samples(), 200);
        assert_eq!(mw.flow_decision(src).unwrap(), FlowDecision::Ok);
    }

    #[test]
    fn error_display_covers_variants() {
        let e = SolarError::DuplicateSource("x".into());
        assert!(e.to_string().contains('x'));
        let e = SolarError::NotDeployed;
        assert!(e.to_string().contains("deploy"));
    }
}
// (appended test module extension)
#[cfg(test)]
mod flow_tests {
    use super::*;
    use gasf_core::tuple::TupleBuilder;
    use gasf_net::Topology;

    #[test]
    fn flow_decision_available_after_processing() {
        let overlay = Overlay::new(Topology::ring(3).build());
        let mut mw = Middleware::new(overlay);
        let schema = Schema::new(["t"]);
        let src = mw.register_source("s", NodeId(0), schema.clone()).unwrap();
        mw.subscribe("a", NodeId(1), src, FilterSpec::delta("t", 1.0, 0.4))
            .unwrap();
        mw.deploy().unwrap();
        let mut b = TupleBuilder::new(&schema);
        for i in 0..50u64 {
            let t = b
                .at_millis(10 * (i + 1))
                .set("t", i as f64)
                .build()
                .unwrap();
            mw.process(src, t).unwrap();
        }
        // A real engine is far faster than 10 ms per tuple.
        assert_eq!(mw.flow_decision(src).unwrap(), FlowDecision::Ok);
        assert!(mw.flow_decision(SourceId(9)).is_err());
    }
}
