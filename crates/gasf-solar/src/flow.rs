//! Input-buffer flow control.
//!
//! §4.8: "with a large group size, the overhead can cause congestion at
//! the input buffer of the filter. The system needs to resort to other
//! mechanisms to resolve it. For example, Solar installs flow-control
//! filters in the buffer to alleviate congestion. The system may also
//! employ more aggressive sampling to shed data load, or gracefully
//! degrade the quality requirements of the filters."
//!
//! [`FlowMonitor`] implements that control loop: it compares the measured
//! per-tuple processing cost against the stream's inter-arrival interval
//! (an EWMA of both) and recommends one of the paper's remedies once the
//! utilisation crosses its thresholds. Output-side accounting composes
//! into the sink dataflow via [`Metered`], an
//! [`EmissionSink`](gasf_core::sink::EmissionSink) adapter that tees every
//! emission into the monitor on its way to the real destination.

use gasf_core::engine::Emission;
use gasf_core::sink::EmissionSink;
use gasf_core::time::Micros;
use std::time::Duration;

/// The remedy recommended by the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowDecision {
    /// Utilisation is comfortably below capacity.
    Ok,
    /// Utilisation is near capacity: shed the given fraction of input
    /// tuples (0, 1] via sampling to stay ahead of the stream.
    Shed {
        /// Fraction of input to drop.
        drop_fraction: f64,
    },
    /// Even shedding will not help (utilisation ≥ 2): degrade quality —
    /// regroup filters or disable group-awareness (§4.8, §6.2).
    DegradeQuality,
}

/// EWMA-based congestion monitor for a filtering stage.
#[derive(Debug, Clone)]
pub struct FlowMonitor {
    /// Smoothed per-tuple CPU cost (microseconds).
    cpu_ewma_us: f64,
    /// Smoothed inter-arrival interval (microseconds).
    interval_ewma_us: f64,
    last_arrival: Option<Micros>,
    alpha: f64,
    samples: u64,
    /// Emissions that flowed through the output side (via [`Metered`]).
    emitted: u64,
    /// Recipient labels across those emissions (the multicast fan-out).
    emitted_labels: u64,
    /// Late tuples dropped ahead of this stage (event-time accounting).
    late_dropped: u64,
    /// Patch emissions (late-tuple corrections) that flowed through.
    patches: u64,
    /// Credit-gated pushes refused with `PushOutcome::Throttled`.
    throttled: u64,
    /// Tuples dropped by the shedder after the degradation ladder was
    /// exhausted (the last-resort remedy).
    shed_dropped: u64,
    /// Quality-degradation steps applied (ladder rung climbed).
    degrade_ops: u64,
    /// Quality-restoration steps applied (ladder rung descended).
    restore_ops: u64,
}

impl FlowMonitor {
    /// Creates a monitor with smoothing factor `alpha` in `(0, 1]`
    /// (weight of the newest sample; 0.2 is a sensible default).
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        FlowMonitor {
            cpu_ewma_us: 0.0,
            interval_ewma_us: 0.0,
            last_arrival: None,
            alpha,
            samples: 0,
            emitted: 0,
            emitted_labels: 0,
            late_dropped: 0,
            patches: 0,
            throttled: 0,
            shed_dropped: 0,
            degrade_ops: 0,
            restore_ops: 0,
        }
    }

    /// Records one processed tuple: its arrival timestamp and the CPU time
    /// the filtering stage spent on it.
    pub fn observe(&mut self, arrival: Micros, cpu: Duration) {
        let cpu_us = cpu.as_secs_f64() * 1e6;
        if self.samples == 0 {
            self.cpu_ewma_us = cpu_us;
        } else {
            self.cpu_ewma_us = self.alpha * cpu_us + (1.0 - self.alpha) * self.cpu_ewma_us;
        }
        if let Some(last) = self.last_arrival {
            let gap = arrival.saturating_sub(last).as_micros() as f64;
            if self.interval_ewma_us == 0.0 {
                self.interval_ewma_us = gap;
            } else {
                self.interval_ewma_us =
                    self.alpha * gap + (1.0 - self.alpha) * self.interval_ewma_us;
            }
        }
        self.last_arrival = Some(arrival);
        self.samples += 1;
    }

    /// Current utilisation: smoothed CPU cost over smoothed inter-arrival
    /// time. `> 1.0` means the filter cannot keep up.
    pub fn utilization(&self) -> f64 {
        if self.interval_ewma_us <= 0.0 {
            0.0
        } else {
            self.cpu_ewma_us / self.interval_ewma_us
        }
    }

    /// Number of observations so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Records one released emission (output-side accounting; fed by
    /// [`Metered`] as emissions stream past).
    pub fn observe_emission(&mut self, emission: &Emission) {
        self.emitted += 1;
        self.emitted_labels += emission.recipients.len() as u64;
    }

    /// Emissions observed on the output side.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Recipient labels observed on the output side — `emitted_labels /
    /// emitted` is the mean multicast fan-out.
    pub fn emitted_labels(&self) -> u64 {
        self.emitted_labels
    }

    /// Records one late tuple dropped by the reorder stage under
    /// [`LatePolicy::Drop`](gasf_core::event_time::LatePolicy).
    pub fn observe_late_drop(&mut self) {
        self.late_dropped += 1;
    }

    /// Records one **patch** emission (a late-tuple correction released
    /// under [`LatePolicy::EmitPatch`](gasf_core::event_time::LatePolicy));
    /// fed by [`Metered::accept_patch`]. A patch also counts as an
    /// emission in [`emitted`](Self::emitted).
    pub fn observe_patch(&mut self, emission: &Emission) {
        self.patches += 1;
        self.observe_emission(emission);
    }

    /// Late tuples dropped ahead of this stage.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Patch emissions observed on the output side.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Restores the event-time counters (used when recovering a part from
    /// a checkpoint so late/patch accounting survives the hop).
    pub fn restore_event_time_counts(&mut self, late_dropped: u64, patches: u64) {
        self.late_dropped = late_dropped;
        self.patches = patches;
    }

    /// Records one credit-gated push refused with
    /// [`PushOutcome::Throttled`](gasf_core::shed::PushOutcome).
    pub fn observe_throttle(&mut self) {
        self.throttled += 1;
    }

    /// Records one tuple dropped by the shedder (ladder exhausted).
    pub fn observe_shed_drop(&mut self) {
        self.shed_dropped += 1;
    }

    /// Records one quality-degradation step (a subscription climbed one
    /// rung of its declared ladder).
    pub fn observe_degrade(&mut self) {
        self.degrade_ops += 1;
    }

    /// Records one quality-restoration step (a subscription descended one
    /// rung after pressure cleared).
    pub fn observe_restore(&mut self) {
        self.restore_ops += 1;
    }

    /// Throttled pushes counted by [`observe_throttle`](Self::observe_throttle).
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    /// Tuples dropped by the shedder.
    pub fn shed_dropped(&self) -> u64 {
        self.shed_dropped
    }

    /// Degradation steps applied.
    pub fn degrade_ops(&self) -> u64 {
        self.degrade_ops
    }

    /// Restoration steps applied.
    pub fn restore_ops(&self) -> u64 {
        self.restore_ops
    }

    /// The recommended remedy at the current utilisation.
    ///
    /// * `< 0.8` → [`FlowDecision::Ok`]
    /// * `0.8..2.0` → shed just enough load to get back to 0.8
    /// * `>= 2.0` → [`FlowDecision::DegradeQuality`]
    pub fn decision(&self) -> FlowDecision {
        let u = self.utilization();
        if u < 0.8 {
            FlowDecision::Ok
        } else if u < 2.0 {
            FlowDecision::Shed {
                drop_fraction: (1.0 - 0.8 / u).clamp(0.0, 1.0),
            }
        } else {
            FlowDecision::DegradeQuality
        }
    }
}

impl Default for FlowMonitor {
    fn default() -> Self {
        Self::new(0.2)
    }
}

/// An [`EmissionSink`] adapter that tees output-side accounting into a
/// [`FlowMonitor`] while forwarding every emission to the inner sink.
///
/// This is how the pipeline composes flow control into the dataflow: the
/// monitor sits *next to* the dissemination sink instead of requiring the
/// engine (or callers) to collect emissions just to count them.
#[derive(Debug)]
pub struct Metered<'m, S> {
    inner: S,
    monitor: &'m mut FlowMonitor,
}

impl<'m, S: EmissionSink> Metered<'m, S> {
    /// Wraps `inner`, accounting every emission into `monitor`.
    pub fn new(inner: S, monitor: &'m mut FlowMonitor) -> Self {
        Metered { inner, monitor }
    }

    /// The monitor (for input-side observations and decisions).
    pub fn monitor(&mut self) -> &mut FlowMonitor {
        self.monitor
    }

    /// The wrapped sink.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EmissionSink> EmissionSink for Metered<'_, S> {
    fn accept(&mut self, emission: &Emission) {
        self.monitor.observe_emission(emission);
        self.inner.accept(emission);
    }

    fn accept_batch(&mut self, emissions: &[Emission]) {
        for e in emissions {
            self.monitor.observe_emission(e);
        }
        self.inner.accept_batch(emissions);
    }

    fn accept_patch(&mut self, emission: &Emission) {
        self.monitor.observe_patch(emission);
        self.inner.accept_patch(emission);
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut FlowMonitor, interval_us: u64, cpu_us: u64, n: usize) {
        for i in 0..n {
            m.observe(
                Micros(interval_us * (i as u64 + 1)),
                Duration::from_micros(cpu_us),
            );
        }
    }

    #[test]
    fn idle_filter_is_ok() {
        let mut m = FlowMonitor::default();
        feed(&mut m, 10_000, 1_000, 50); // 1 ms work per 10 ms tuple
        assert!((m.utilization() - 0.1).abs() < 0.02, "{}", m.utilization());
        assert_eq!(m.decision(), FlowDecision::Ok);
        assert_eq!(m.samples(), 50);
    }

    #[test]
    fn overloaded_filter_sheds() {
        let mut m = FlowMonitor::default();
        feed(&mut m, 10_000, 12_000, 50); // 12 ms work per 10 ms tuple
        assert!(m.utilization() > 1.0);
        match m.decision() {
            FlowDecision::Shed { drop_fraction } => {
                assert!(
                    drop_fraction > 0.2 && drop_fraction < 0.5,
                    "{drop_fraction}"
                );
            }
            other => panic!("expected shedding, got {other:?}"),
        }
    }

    #[test]
    fn hopeless_overload_degrades_quality() {
        let mut m = FlowMonitor::default();
        feed(&mut m, 10_000, 25_000, 50);
        assert_eq!(m.decision(), FlowDecision::DegradeQuality);
    }

    #[test]
    fn no_samples_is_ok() {
        let m = FlowMonitor::default();
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.decision(), FlowDecision::Ok);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = FlowMonitor::new(0.0);
    }

    #[test]
    fn metered_tees_emissions_into_monitor() {
        use gasf_core::bitset::FilterSet;
        use gasf_core::candidate::FilterId;
        use gasf_core::schema::Schema;
        use gasf_core::sink::VecSink;
        use gasf_core::tuple::TupleBuilder;
        use std::sync::Arc;

        let schema = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&schema);
        let tuple = Arc::new(b.at_millis(10).set("t", 1.0).build().unwrap());
        let mut recipients = FilterSet::new();
        recipients.insert(FilterId::from_index(0));
        recipients.insert(FilterId::from_index(2));
        let e = Emission {
            tuple,
            recipients,
            emitted_at: Micros::from_millis(10),
        };

        let mut monitor = FlowMonitor::default();
        let mut metered = Metered::new(VecSink::new(), &mut monitor);
        metered.accept(&e);
        metered.accept_batch(std::slice::from_ref(&e));
        metered.flush();
        assert_eq!(metered.inner_mut().len(), 2);
        assert_eq!(metered.into_inner().len(), 2);
        assert_eq!(monitor.emitted(), 2);
        assert_eq!(monitor.emitted_labels(), 4);
    }

    #[test]
    fn metered_accounts_patches_separately() {
        use gasf_core::bitset::FilterSet;
        use gasf_core::candidate::FilterId;
        use gasf_core::schema::Schema;
        use gasf_core::sink::VecSink;
        use gasf_core::tuple::TupleBuilder;
        use std::sync::Arc;

        let schema = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&schema);
        let tuple = Arc::new(b.at_millis(10).set("t", 1.0).build().unwrap());
        let mut recipients = FilterSet::new();
        recipients.insert(FilterId::from_index(1));
        let e = Emission {
            tuple,
            recipients,
            emitted_at: Micros::from_millis(10),
        };

        let mut monitor = FlowMonitor::default();
        let mut metered = Metered::new(VecSink::new(), &mut monitor);
        metered.accept(&e);
        metered.accept_patch(&e);
        // The patch reached the inner sink like any emission…
        assert_eq!(metered.into_inner().len(), 2);
        // …and the monitor kept both the aggregate and the patch count.
        assert_eq!(monitor.emitted(), 2);
        assert_eq!(monitor.patches(), 1);
        monitor.observe_late_drop();
        assert_eq!(monitor.late_dropped(), 1);
        monitor.restore_event_time_counts(7, 3);
        assert_eq!((monitor.late_dropped(), monitor.patches()), (7, 3));
    }

    #[test]
    fn shedding_counters_accumulate() {
        let mut m = FlowMonitor::default();
        m.observe_throttle();
        m.observe_throttle();
        m.observe_shed_drop();
        m.observe_degrade();
        m.observe_degrade();
        m.observe_degrade();
        m.observe_restore();
        assert_eq!(m.throttled(), 2);
        assert_eq!(m.shed_dropped(), 1);
        assert_eq!(m.degrade_ops(), 3);
        assert_eq!(m.restore_ops(), 1);
    }

    #[test]
    fn ewma_adapts_to_change() {
        let mut m = FlowMonitor::default();
        feed(&mut m, 10_000, 1_000, 20);
        let low = m.utilization();
        // workload spikes
        for i in 20..60 {
            m.observe(Micros(10_000 * (i + 1)), Duration::from_micros(9_000));
        }
        assert!(m.utilization() > low * 3.0);
    }
}
