//! # gasf-solar — stream-processing middleware substrate
//!
//! The paper's prototype packages group-aware filtering as a service of
//! *Solar*, Dartmouth's content-based publish/subscribe data-dissemination
//! system (§4.1.1): sources advertise via source proxies, applications
//! subscribe with data-quality specifications, specs propagate through the
//! operator graph toward the sources (Fig. 2.2/3.1), and a group-aware
//! filtering service on each source node feeds an application-level
//! multicast facility.
//!
//! This crate rebuilds that middleware over the [`gasf_net`] overlay:
//!
//! * [`Middleware`] — pub/sub registry + the group-aware filtering service
//!   (one or more [`GroupEngine`](gasf_core::engine::GroupEngine)s per
//!   source) + multicast dissemination with end-to-end accounting; its
//!   data path is the sink-based [`Pipeline`] (engine → [`Metered`] flow
//!   accounting → [`MulticastSink`]). With
//!   [`MiddlewareConfig::parallelism`] above one the engine side runs
//!   behind [`ShardedEngine`](gasf_core::shard::ShardedEngine) —
//!   filtering on worker threads, byte-identical output, [`FlowMonitor`]
//!   samples aggregated across the shards,
//! * a **live subscription control plane** — [`Middleware::subscribe`] /
//!   [`Middleware::unsubscribe`] / [`Middleware::resubscribe`] work after
//!   deployment and return stable [`SubscriptionHandle`]s, and
//!   [`Middleware::regroup`] re-partitions a source's live subscribers
//!   (via [`partition`]) across engines at an epoch boundary — §4.8/§6.2's
//!   regrouping, running inside the system instead of on paper,
//! * **checkpoint/recover fault tolerance** —
//!   [`Middleware::checkpoint`] snapshots every part engine at its
//!   safe-point boundary together with the subscription roster, per-app
//!   delivery statistics and [`FlowMonitor`] accounting;
//!   [`Middleware::recover`] rebuilds the deployment on a fresh overlay
//!   under the same stable [`SubscriptionHandle`]s, and
//!   [`Middleware::fail_node`] drives the overlay's Scribe self-repair
//!   for interior forwarder failures,
//! * [`OperatorGraph`] — quality-spec propagation from applications to
//!   sources through in-network operators,
//! * [`FlowMonitor`] — the input-buffer congestion/flow-control logic the
//!   paper discusses in §4.8 (large groups can congest the filter's input
//!   buffer; the system must shed load or degrade quality),
//! * **bounded ingress + quality-aware shedding** — §4.8 made mechanical:
//!   a per-source [`CreditGate`] bounds the input buffer (the `try_push`
//!   family returns [`PushOutcome`](gasf_core::shed::PushOutcome) instead
//!   of buffering without limit), a [`Shedder`] climbs each
//!   subscription's declared degradation ladder under sustained pressure
//!   (and fully restores it when pressure clears), and
//!   [`Middleware::ingest`] drives a
//!   [`SourceConnector`](gasf_core::connector::SourceConnector) through
//!   the gated path end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod backpressure;
mod flow;
mod graph;
mod middleware;
mod regroup;
pub mod shedder;

pub use backpressure::CreditGate;
pub use flow::{FlowDecision, FlowMonitor, Metered};
pub use graph::{OpKind, OperatorGraph, OperatorId};
pub use middleware::{
    AppReport, EventTimeStats, GrantPolicy, IngestOptions, IngestReport, Middleware,
    MiddlewareConfig, MiddlewareSnapshot, MulticastSink, Pipeline, RunReport, SolarError, SourceId,
    SubscriptionHandle,
};
pub use regroup::{is_valid_partition, partition, GroupingStrategy, Partition};
pub use shedder::{ShedAction, ShedConfig, Shedder};
