//! Operator graphs and quality-spec propagation.
//!
//! Data flows from sources through in-network operators to applications
//! (Fig. 1.1/2.1). Each operator must know the data-quality requirements
//! of all its downstream consumers (Fig. 2.2/3.1); when several remote
//! downstreams share an operator with *different* requirements, the
//! hosting node deploys a group-aware filter for them. This module models
//! the DAG and the spec-propagation pass the paper assumes has happened
//! before filtering starts.

use gasf_core::quality::FilterSpec;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node in an [`OperatorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(usize);

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Role of a graph node.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// A root data source (leaf of the data-fusion tree).
    Source,
    /// An in-network operator (filter host, aggregator, …).
    Operator,
    /// An application sink with its quality requirement.
    Application(FilterSpec),
}

#[derive(Debug)]
struct OpNode {
    name: String,
    kind: OpKind,
    downstream: Vec<OperatorId>,
}

/// A data-fusion DAG: sources → operators → applications.
///
/// ```rust
/// use gasf_solar::{OperatorGraph, OpKind};
/// use gasf_core::quality::FilterSpec;
///
/// let mut g = OperatorGraph::new();
/// let src = g.add("buoy", OpKind::Source);
/// let op = g.add("relay", OpKind::Operator);
/// let app = g.add("ui", OpKind::Application(FilterSpec::delta("t", 1.0, 0.4)));
/// g.connect(src, op).unwrap();
/// g.connect(op, app).unwrap();
/// let specs = g.propagate_quality();
/// assert_eq!(specs[&src].len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct OperatorGraph {
    nodes: Vec<OpNode>,
}

impl OperatorGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        OperatorGraph::default()
    }

    /// Adds a node and returns its id.
    pub fn add(&mut self, name: impl Into<String>, kind: OpKind) -> OperatorId {
        self.nodes.push(OpNode {
            name: name.into(),
            kind,
            downstream: Vec::new(),
        });
        OperatorId(self.nodes.len() - 1)
    }

    /// Connects `from` to a downstream consumer `to`.
    ///
    /// # Errors
    /// Returns a descriptive string if the edge would create a cycle or
    /// references unknown nodes.
    pub fn connect(&mut self, from: OperatorId, to: OperatorId) -> Result<(), String> {
        if from.0 >= self.nodes.len() || to.0 >= self.nodes.len() {
            return Err(format!("unknown operator in edge {from} -> {to}"));
        }
        if from == to || self.reaches(to, from) {
            return Err(format!("edge {from} -> {to} would create a cycle"));
        }
        if !self.nodes[from.0].downstream.contains(&to) {
            self.nodes[from.0].downstream.push(to);
        }
        Ok(())
    }

    fn reaches(&self, from: OperatorId, target: OperatorId) -> bool {
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            if u == target {
                return true;
            }
            stack.extend(self.nodes[u.0].downstream.iter().copied());
        }
        false
    }

    /// Name of a node.
    pub fn name(&self, id: OperatorId) -> &str {
        &self.nodes[id.0].name
    }

    /// Kind of a node.
    pub fn kind(&self, id: OperatorId) -> &OpKind {
        &self.nodes[id.0].kind
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = OperatorId> + '_ {
        (0..self.nodes.len()).map(OperatorId)
    }

    /// Propagates application quality specs upstream: every source and
    /// operator receives the list of specs of all applications reachable
    /// downstream of it — the group its hosting node must serve
    /// (Fig. 2.2). Sources/operators whose list has length > 1 are the
    /// group-aware filtering opportunities.
    pub fn propagate_quality(&self) -> HashMap<OperatorId, Vec<FilterSpec>> {
        let mut result: HashMap<OperatorId, Vec<FilterSpec>> = HashMap::new();
        for id in self.ids() {
            let mut specs = Vec::new();
            self.collect_downstream(id, &mut specs);
            result.insert(id, specs);
        }
        result
    }

    fn collect_downstream(&self, id: OperatorId, out: &mut Vec<FilterSpec>) {
        for &d in &self.nodes[id.0].downstream {
            if let OpKind::Application(spec) = &self.nodes[d.0].kind {
                if !out.contains(spec) {
                    out.push(spec.clone());
                }
            }
            self.collect_downstream(d, out);
        }
    }

    /// Operators (and sources) serving more than one distinct downstream
    /// requirement — the places to deploy group-aware filters.
    pub fn group_filter_sites(&self) -> Vec<(OperatorId, Vec<FilterSpec>)> {
        self.propagate_quality()
            .into_iter()
            .filter(|(id, specs)| {
                specs.len() > 1 && !matches!(self.kind(*id), OpKind::Application(_))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_core::quality::FilterSpec;

    fn spec(d: f64) -> FilterSpec {
        FilterSpec::delta("t", d, d / 4.0)
    }

    #[test]
    fn propagation_reaches_sources_transitively() {
        // source -> op1 -> app1
        //              \-> op2 -> app2
        let mut g = OperatorGraph::new();
        let src = g.add("src", OpKind::Source);
        let op1 = g.add("op1", OpKind::Operator);
        let op2 = g.add("op2", OpKind::Operator);
        let app1 = g.add("app1", OpKind::Application(spec(1.0)));
        let app2 = g.add("app2", OpKind::Application(spec(2.0)));
        g.connect(src, op1).unwrap();
        g.connect(op1, app1).unwrap();
        g.connect(op1, op2).unwrap();
        g.connect(op2, app2).unwrap();
        let q = g.propagate_quality();
        assert_eq!(q[&src].len(), 2);
        assert_eq!(q[&op1].len(), 2);
        assert_eq!(q[&op2].len(), 1);
        assert!(q[&app1].is_empty());
    }

    #[test]
    fn duplicate_specs_counted_once() {
        let mut g = OperatorGraph::new();
        let src = g.add("src", OpKind::Source);
        let a1 = g.add("a1", OpKind::Application(spec(1.0)));
        let a2 = g.add("a2", OpKind::Application(spec(1.0)));
        g.connect(src, a1).unwrap();
        g.connect(src, a2).unwrap();
        assert_eq!(g.propagate_quality()[&src].len(), 1);
    }

    #[test]
    fn group_filter_sites_need_multiple_specs() {
        let mut g = OperatorGraph::new();
        let src = g.add("src", OpKind::Source);
        let a1 = g.add("a1", OpKind::Application(spec(1.0)));
        let a2 = g.add("a2", OpKind::Application(spec(2.0)));
        g.connect(src, a1).unwrap();
        g.connect(src, a2).unwrap();
        let sites = g.group_filter_sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].0, src);
        assert_eq!(sites[0].1.len(), 2);
    }

    #[test]
    fn cycles_rejected() {
        let mut g = OperatorGraph::new();
        let a = g.add("a", OpKind::Operator);
        let b = g.add("b", OpKind::Operator);
        g.connect(a, b).unwrap();
        assert!(g.connect(b, a).is_err());
        assert!(g.connect(a, a).is_err());
    }

    #[test]
    fn unknown_edges_rejected() {
        let mut g = OperatorGraph::new();
        let a = g.add("a", OpKind::Operator);
        assert!(g.connect(a, OperatorId(99)).is_err());
    }

    #[test]
    fn accessors() {
        let mut g = OperatorGraph::new();
        let a = g.add("alpha", OpKind::Source);
        assert_eq!(g.name(a), "alpha");
        assert!(matches!(g.kind(a), OpKind::Source));
        assert_eq!(g.ids().count(), 1);
    }
}
