//! Filter (re)grouping strategies.
//!
//! §4.8/§6.2: *"Another way to alleviate the congestion-causing effect of
//! group-aware filtering is to reduce the group size. […] We thus need to
//! develop strategies for (re)grouping the filters. Grouping applications
//! according to their locations (within the network topology) may reduce
//! multicast overhead"*, and greedy consumers should be isolated from the
//! group. This module provides those partitioning strategies;
//! [`Middleware::regroup`](crate::Middleware::regroup) applies them to a
//! *live* source — it calls [`partition`] over the current subscribers
//! (feeding it measured per-filter reference rates) and migrates the
//! filters across engines at an epoch boundary, no teardown required.

use gasf_net::{NodeId, Topology};

/// A partition of filter indices into groups.
pub type Partition = Vec<Vec<usize>>;

/// How to split one source's subscribers into filter groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupingStrategy {
    /// Everyone in one group (the paper's default deployment).
    Single,
    /// Cluster subscribers whose nodes are within `max_hops` of each other
    /// on the underlay — local groups keep multicast trees small.
    ByProximity {
        /// Maximum pairwise hop distance within a group.
        max_hops: usize,
    },
    /// Isolate filters whose reference rate exceeds the threshold into
    /// singleton groups (they would dominate regions and starve the rest).
    BySelectivity {
        /// Reference-rate threshold for isolation.
        isolate_above: f64,
    },
    /// Split into groups of at most `n` filters (CPU bound per engine).
    MaxSize(
        /// Maximum group size.
        usize,
    ),
}

/// Partitions `n` filters according to the strategy.
///
/// * `nodes[i]` — the subscriber node of filter `i` (used by proximity),
/// * `reference_rates[i]` — the filter's SI output rate in `[0, 1]` (used
///   by selectivity; pass an empty slice if unknown).
///
/// The result always covers `0..n` exactly once, preserving index order
/// within each part.
pub fn partition(
    strategy: GroupingStrategy,
    topology: &Topology,
    nodes: &[NodeId],
    reference_rates: &[f64],
    n: usize,
) -> Partition {
    match strategy {
        GroupingStrategy::Single => {
            if n == 0 {
                Vec::new()
            } else {
                vec![(0..n).collect()]
            }
        }
        GroupingStrategy::MaxSize(cap) => {
            let cap = cap.max(1);
            (0..n)
                .collect::<Vec<usize>>()
                .chunks(cap)
                .map(|c| c.to_vec())
                .collect()
        }
        GroupingStrategy::BySelectivity { isolate_above } => {
            let mut shared = Vec::new();
            let mut parts: Partition = Vec::new();
            for i in 0..n {
                let rate = reference_rates.get(i).copied().unwrap_or(0.0);
                if rate > isolate_above {
                    parts.push(vec![i]);
                } else {
                    shared.push(i);
                }
            }
            if !shared.is_empty() {
                parts.insert(0, shared);
            }
            parts
        }
        GroupingStrategy::ByProximity { max_hops } => {
            let hop = |a: NodeId, b: NodeId| -> usize {
                topology
                    .path(a, b)
                    .map(|p| p.len().saturating_sub(1))
                    .unwrap_or(usize::MAX)
            };
            let mut parts: Partition = Vec::new();
            for i in 0..n {
                let node = nodes.get(i).copied().unwrap_or(NodeId(0));
                let home = parts.iter_mut().find(|part| {
                    part.iter().all(|&j| {
                        let other = nodes.get(j).copied().unwrap_or(NodeId(0));
                        hop(node, other) <= max_hops
                    })
                });
                match home {
                    Some(part) => part.push(i),
                    None => parts.push(vec![i]),
                }
            }
            parts
        }
    }
}

/// Validates that a partition covers `0..n` exactly once.
pub fn is_valid_partition(parts: &Partition, n: usize) -> bool {
    let mut seen = vec![false; n];
    for part in parts {
        for &i in part {
            if i >= n || seen[i] {
                return false;
            }
            seen[i] = true;
        }
    }
    seen.into_iter().all(|s| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_net::Topology;

    fn topo() -> Topology {
        Topology::line(8).build()
    }

    #[test]
    fn single_groups_everything() {
        let p = partition(GroupingStrategy::Single, &topo(), &[], &[], 4);
        assert_eq!(p, vec![vec![0, 1, 2, 3]]);
        assert!(is_valid_partition(&p, 4));
        assert!(partition(GroupingStrategy::Single, &topo(), &[], &[], 0).is_empty());
    }

    #[test]
    fn max_size_chunks() {
        let p = partition(GroupingStrategy::MaxSize(3), &topo(), &[], &[], 8);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|part| part.len() <= 3));
        assert!(is_valid_partition(&p, 8));
        // cap of zero is clamped to 1
        let p = partition(GroupingStrategy::MaxSize(0), &topo(), &[], &[], 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn selectivity_isolates_greedy_consumers() {
        let rates = [0.1, 0.9, 0.2, 0.8];
        let p = partition(
            GroupingStrategy::BySelectivity { isolate_above: 0.6 },
            &topo(),
            &[],
            &rates,
            4,
        );
        assert!(is_valid_partition(&p, 4));
        assert_eq!(p[0], vec![0, 2], "modest filters stay grouped");
        assert!(p.contains(&vec![1]));
        assert!(p.contains(&vec![3]));
    }

    #[test]
    fn selectivity_with_no_rates_keeps_one_group() {
        let p = partition(
            GroupingStrategy::BySelectivity { isolate_above: 0.5 },
            &topo(),
            &[],
            &[],
            3,
        );
        assert_eq!(p, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn proximity_clusters_line_ends_separately() {
        // Apps at nodes 0,1 (left end) and 6,7 (right end) of a line:
        // with max 2 hops they form two groups.
        let nodes = [NodeId(0), NodeId(1), NodeId(6), NodeId(7)];
        let p = partition(
            GroupingStrategy::ByProximity { max_hops: 2 },
            &topo(),
            &nodes,
            &[],
            4,
        );
        assert!(is_valid_partition(&p, 4));
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], vec![0, 1]);
        assert_eq!(p[1], vec![2, 3]);
    }

    #[test]
    fn proximity_with_large_budget_is_one_group() {
        let nodes = [NodeId(0), NodeId(3), NodeId(7)];
        let p = partition(
            GroupingStrategy::ByProximity { max_hops: 10 },
            &topo(),
            &nodes,
            &[],
            3,
        );
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn proximity_handles_disconnected_nodes() {
        let topo = gasf_net::TopologyBuilder::with_nodes(4)
            .link(0, 1, gasf_net::LinkSpec::default())
            .link(2, 3, gasf_net::LinkSpec::default())
            .build();
        let nodes = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        let p = partition(
            GroupingStrategy::ByProximity { max_hops: 3 },
            &topo,
            &nodes,
            &[],
            4,
        );
        assert!(is_valid_partition(&p, 4));
        assert_eq!(p.len(), 2, "islands cannot share a group");
    }

    #[test]
    fn validator_rejects_bad_partitions() {
        assert!(!is_valid_partition(&vec![vec![0, 0]], 2));
        assert!(!is_valid_partition(&vec![vec![0]], 2));
        assert!(!is_valid_partition(&vec![vec![5]], 2));
        assert!(is_valid_partition(&vec![vec![1], vec![0]], 2));
    }
}
