//! Bounded ingress: explicit, credit-based backpressure.
//!
//! The paper's input buffer (§4.8) is where congestion first shows up;
//! an unbounded buffer hides overload until latency is already ruined.
//! This module makes the bound explicit: a [`CreditGate`] in front of a
//! source admits exactly as many rows as it holds credits. When credits
//! run out the push returns
//! [`PushOutcome::Throttled`](gasf_core::shed::PushOutcome) **without
//! consuming the input** — the connector driving the source holds the
//! row (or the remaining suffix of a batch) and the pressure propagates
//! outward to the external producer instead of inward into memory.
//!
//! Credits are granted *explicitly* (by the ingest driver, a test's
//! credit schedule, or the [`Shedder`](crate::shedder::Shedder)'s
//! recovery policy): filtering itself is synchronous, so an
//! auto-replenishing gate could never exert pressure. The capacity cap
//! bounds the buffered window — granting beyond it saturates rather
//! than accumulating an unbounded credit balance.
//!
//! ```rust
//! use gasf_solar::backpressure::CreditGate;
//!
//! let mut gate = CreditGate::new(4);     // capacity 4, starts full
//! assert_eq!(gate.available(), 4);
//! assert_eq!(gate.take(6), 4);           // admit at most 4 rows now
//! assert_eq!(gate.take(1), 0);           // drained: Throttled
//! gate.grant(2);
//! assert_eq!(gate.available(), 2);
//! gate.grant(100);                       // saturates at capacity
//! assert_eq!(gate.available(), 4);
//! ```

/// A bounded credit pool gating admissions into a source's pipeline.
///
/// One credit admits one row. The gate starts **full** (a fresh source
/// has an empty buffer's worth of headroom) and never holds more than
/// `capacity` credits.
#[derive(Debug, Clone)]
pub struct CreditGate {
    capacity: u64,
    available: u64,
    /// Rows admitted over the gate's lifetime.
    admitted: u64,
    /// Credits granted over the gate's lifetime (excluding the initial
    /// fill), after saturation clipping.
    granted: u64,
}

impl CreditGate {
    /// A gate with `capacity` credits, initially full.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (a zero-capacity gate could never
    /// admit anything).
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "credit gate capacity must be positive");
        CreditGate {
            capacity,
            available: capacity,
            admitted: 0,
            granted: 0,
        }
    }

    /// Credits currently available.
    pub fn available(&self) -> u64 {
        self.available
    }

    /// The capacity cap.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Rows admitted over the gate's lifetime.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Takes up to `want` credits, returning how many were actually
    /// taken (0 means the caller must report `Throttled` and keep the
    /// input). Partial takes are how a batch push admits a prefix and
    /// stays resumable at the exact rejected row.
    pub fn take(&mut self, want: u64) -> u64 {
        let got = want.min(self.available);
        self.available -= got;
        self.admitted += got;
        got
    }

    /// Grants credits back, saturating at capacity. Returns the number
    /// of credits actually added.
    pub fn grant(&mut self, credits: u64) -> u64 {
        let added = credits.min(self.capacity - self.available);
        self.available += added;
        self.granted += added;
        added
    }

    /// Refills the gate to capacity (e.g. after a drain barrier).
    pub fn refill(&mut self) {
        let missing = self.capacity - self.available;
        self.available = self.capacity;
        self.granted += missing;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_drained_then_throttles() {
        let mut g = CreditGate::new(3);
        assert_eq!(g.take(1), 1);
        assert_eq!(g.take(5), 2, "partial take admits the prefix");
        assert_eq!(g.take(1), 0, "drained");
        assert_eq!(g.admitted(), 3);
    }

    #[test]
    fn grants_saturate_at_capacity() {
        let mut g = CreditGate::new(2);
        assert_eq!(g.take(2), 2);
        assert_eq!(g.grant(1), 1);
        assert_eq!(g.grant(10), 1, "clipped to capacity");
        assert_eq!(g.available(), 2);
        g.take(2);
        g.refill();
        assert_eq!(g.available(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = CreditGate::new(0);
    }
}
