//! Host layouts: mapping overlay nodes onto OS processes.
//!
//! A [`HostLayout`] describes one localhost deployment — which process
//! hosts which overlay [`NodeId`]s, where each process listens, and the
//! deterministic workload the source process replays. Layouts load from
//! a small TOML subset (see [`HostLayout::from_toml`]) with environment
//! overrides for the workload knobs, so CI can shrink a deployment
//! without editing the file:
//!
//! ```toml
//! [deployment]
//! name = "local3"
//!
//! [workload]
//! tuples = 400
//! seed = 42
//! algorithm = "region-greedy"
//! strategy = "earliest"
//! parallelism = 1
//!
//! [[process]]
//! id = 0
//! role = "source"
//! addr = "127.0.0.1:0"
//! nodes = [0]
//!
//! [[process]]
//! id = 1
//! role = "subscriber"
//! addr = "127.0.0.1:0"
//! nodes = [1, 2]
//! ```
//!
//! Port `0` means "bind an ephemeral port and publish it in a
//! `proc-<id>.port` file under the run directory" — deployments never
//! race over fixed ports. Environment overrides: `GASF_WIRE_TUPLES`,
//! `GASF_WIRE_SEED`, `GASF_WIRE_ALGORITHM`, `GASF_WIRE_STRATEGY`,
//! `GASF_WIRE_PARALLELISM`.

use crate::codec::WireError;
use gasf_core::engine::{Algorithm, OutputStrategy};
use gasf_net::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// What a process does in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Replays the workload trace through a middleware partition and
    /// drains its emissions over the wire.
    Source,
    /// Hosts subscriber nodes: receives emission frames, maintains
    /// per-node stream digests, answers status queries.
    Subscriber,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Source => write!(f, "source"),
            Role::Subscriber => write!(f, "subscriber"),
        }
    }
}

/// One OS process in the deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessSpec {
    /// Stable id, unique within the layout (also names the port/report
    /// files).
    pub id: u32,
    /// Source or subscriber.
    pub role: Role,
    /// Listen address; a `:0` port binds ephemerally and publishes the
    /// real port in the run directory.
    pub addr: String,
    /// Overlay nodes this process hosts.
    pub nodes: Vec<NodeId>,
}

/// The deterministic workload a deployment replays (NAMOS buoy trace +
/// per-node delta filters derived from its stats).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Tuples to replay.
    pub tuples: usize,
    /// Trace generator seed.
    pub seed: u64,
    /// Second-stage algorithm.
    pub algorithm: Algorithm,
    /// Output strategy.
    pub strategy: OutputStrategy,
    /// Engine worker shards at the source.
    pub parallelism: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            tuples: 400,
            seed: 42,
            algorithm: Algorithm::RegionGreedy,
            strategy: OutputStrategy::Earliest,
            parallelism: 1,
        }
    }
}

/// A parsed, validated deployment layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostLayout {
    /// Deployment name (echoed in `Hello` frames and reports).
    pub name: String,
    /// The workload the source replays.
    pub workload: WorkloadSpec,
    /// The processes, in file order.
    pub processes: Vec<ProcessSpec>,
}

impl HostLayout {
    /// Parses a layout from the TOML subset shown in the module docs and
    /// applies `GASF_WIRE_*` environment overrides.
    ///
    /// # Errors
    /// [`WireError::Io`] with a line-numbered message for syntax errors,
    /// unknown keys/roles, and validation failures (duplicate process
    /// ids, overlapping node sets, not exactly one source).
    pub fn from_toml(text: &str) -> Result<HostLayout, WireError> {
        let mut layout = parse_layout(text)?;
        layout.apply_env_overrides()?;
        layout.validate()?;
        Ok(layout)
    }

    /// Reads and parses a layout file.
    ///
    /// # Errors
    /// Same as [`HostLayout::from_toml`], plus the read failure itself.
    pub fn from_path(path: &Path) -> Result<HostLayout, WireError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| WireError::Io(format!("{}: {e}", path.display())))?;
        HostLayout::from_toml(&text)
    }

    /// Total overlay nodes: highest hosted node index + 1 (the ring
    /// topology the control plane builds spans exactly these).
    pub fn total_nodes(&self) -> usize {
        self.processes
            .iter()
            .flat_map(|p| p.nodes.iter())
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The (single) source process.
    pub fn source(&self) -> &ProcessSpec {
        self.processes
            .iter()
            .find(|p| p.role == Role::Source)
            .expect("validated layouts have exactly one source")
    }

    /// Subscriber processes, in file order.
    pub fn subscribers(&self) -> impl Iterator<Item = &ProcessSpec> {
        self.processes.iter().filter(|p| p.role == Role::Subscriber)
    }

    /// All subscriber nodes across processes, ascending — the order
    /// their per-node delta filters are derived in.
    pub fn subscriber_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.subscribers().flat_map(|p| p.nodes.clone()).collect();
        nodes.sort_unstable();
        nodes
    }

    /// The process hosting `node`, if any.
    pub fn process_of(&self, node: NodeId) -> Option<&ProcessSpec> {
        self.processes.iter().find(|p| p.nodes.contains(&node))
    }

    /// The process with id `id`, if any.
    pub fn process(&self, id: u32) -> Option<&ProcessSpec> {
        self.processes.iter().find(|p| p.id == id)
    }

    fn apply_env_overrides(&mut self) -> Result<(), WireError> {
        if let Some(v) = env_var("GASF_WIRE_TUPLES")? {
            self.workload.tuples = parse_env("GASF_WIRE_TUPLES", &v)?;
        }
        if let Some(v) = env_var("GASF_WIRE_SEED")? {
            self.workload.seed = parse_env("GASF_WIRE_SEED", &v)?;
        }
        if let Some(v) = env_var("GASF_WIRE_ALGORITHM")? {
            self.workload.algorithm = parse_algorithm(&v)?;
        }
        if let Some(v) = env_var("GASF_WIRE_STRATEGY")? {
            self.workload.strategy = parse_strategy(&v)?;
        }
        if let Some(v) = env_var("GASF_WIRE_PARALLELISM")? {
            self.workload.parallelism = parse_env("GASF_WIRE_PARALLELISM", &v)?;
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), WireError> {
        let fail = |msg: String| Err(WireError::Io(format!("invalid layout: {msg}")));
        if self.name.is_empty() {
            return fail("deployment name is empty".into());
        }
        if self.processes.is_empty() {
            return fail("no [[process]] entries".into());
        }
        let mut ids = BTreeSet::new();
        let mut nodes = BTreeSet::new();
        let mut sources = 0usize;
        for p in &self.processes {
            if !ids.insert(p.id) {
                return fail(format!("duplicate process id {}", p.id));
            }
            if p.nodes.is_empty() {
                return fail(format!("process {} hosts no nodes", p.id));
            }
            for n in &p.nodes {
                if !nodes.insert(*n) {
                    return fail(format!("node {n} hosted by two processes"));
                }
            }
            if p.role == Role::Source {
                sources += 1;
                if p.nodes.len() != 1 {
                    return fail(format!(
                        "source process {} must host exactly one node",
                        p.id
                    ));
                }
            }
            if !p.addr.contains(':') {
                return fail(format!("process {} addr {:?} lacks a port", p.id, p.addr));
            }
        }
        if sources != 1 {
            return fail(format!("need exactly one source process, found {sources}"));
        }
        if self.workload.tuples == 0 || self.workload.parallelism == 0 {
            return fail("workload tuples/parallelism must be positive".into());
        }
        Ok(())
    }
}

fn env_var(name: &str) -> Result<Option<String>, WireError> {
    match std::env::var(name) {
        Ok(v) if v.is_empty() => Ok(None),
        Ok(v) => Ok(Some(v)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(WireError::Io(format!("{name}: {e}"))),
    }
}

fn parse_env<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, WireError> {
    v.parse()
        .map_err(|_| WireError::Io(format!("{name}={v:?} is not a valid value")))
}

/// Parses an algorithm name (`region-greedy`, `per-candidate-set`,
/// `self-interested`).
///
/// # Errors
/// [`WireError::Io`] naming the unknown value.
pub fn parse_algorithm(v: &str) -> Result<Algorithm, WireError> {
    match v {
        "region-greedy" => Ok(Algorithm::RegionGreedy),
        "per-candidate-set" => Ok(Algorithm::PerCandidateSet),
        "self-interested" => Ok(Algorithm::SelfInterested),
        other => Err(WireError::Io(format!("unknown algorithm {other:?}"))),
    }
}

/// Parses a strategy name (`earliest`, `per-candidate-set`,
/// `batched:<n>`).
///
/// # Errors
/// [`WireError::Io`] naming the unknown value.
pub fn parse_strategy(v: &str) -> Result<OutputStrategy, WireError> {
    match v {
        "earliest" => Ok(OutputStrategy::Earliest),
        "per-candidate-set" => Ok(OutputStrategy::PerCandidateSet),
        other => match other.strip_prefix("batched:") {
            Some(n) => Ok(OutputStrategy::Batched(parse_env("strategy", n)?)),
            None => Err(WireError::Io(format!("unknown strategy {other:?}"))),
        },
    }
}

/// Renders an algorithm back to its layout-file name.
pub fn algorithm_name(a: Algorithm) -> &'static str {
    match a {
        Algorithm::RegionGreedy => "region-greedy",
        Algorithm::PerCandidateSet => "per-candidate-set",
        Algorithm::SelfInterested => "self-interested",
    }
}

/// Renders a strategy back to its layout-file name.
pub fn strategy_name(s: OutputStrategy) -> String {
    match s {
        OutputStrategy::Earliest => "earliest".into(),
        OutputStrategy::PerCandidateSet => "per-candidate-set".into(),
        OutputStrategy::Batched(n) => format!("batched:{n}"),
    }
}

// ---- TOML-subset parser ------------------------------------------------
//
// Supports exactly what layouts need: `[section]`, `[[section]]`,
// `key = <integer | "string" | [int, ...]>`, `#` comments, blank lines.
// Anything else is a line-numbered error — better a loud parse failure
// than a silently ignored knob.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Deployment,
    Workload,
    Process(usize),
}

fn parse_layout(text: &str) -> Result<HostLayout, WireError> {
    let mut name = String::new();
    let mut workload = WorkloadSpec::default();
    let mut processes: Vec<ProcessSpec> = Vec::new();
    let mut section = Section::None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |msg: String| WireError::Io(format!("layout line {lineno}: {msg}"));
        let line = match raw.find('#') {
            // Only strip comments outside quotes; layout strings never
            // contain '#', so a simple scan is enough here.
            Some(pos) if !raw[..pos].contains('"') || raw[..pos].matches('"').count() % 2 == 0 => {
                &raw[..pos]
            }
            _ => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let sec = rest
                .strip_suffix("]]")
                .ok_or_else(|| err("unterminated [[section]]".into()))?;
            if sec != "process" {
                return Err(err(format!("unknown array section [[{sec}]]")));
            }
            processes.push(ProcessSpec {
                id: u32::MAX,
                role: Role::Subscriber,
                addr: String::new(),
                nodes: Vec::new(),
            });
            section = Section::Process(processes.len() - 1);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let sec = rest
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated [section]".into()))?;
            section = match sec {
                "deployment" => Section::Deployment,
                "workload" => Section::Workload,
                other => return Err(err(format!("unknown section [{other}]"))),
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`".into()))?;
        let (key, value) = (key.trim(), value.trim());
        match section {
            Section::None => return Err(err(format!("key {key:?} outside any section"))),
            Section::Deployment => match key {
                "name" => name = parse_string(value).map_err(err)?,
                other => return Err(err(format!("unknown deployment key {other:?}"))),
            },
            Section::Workload => match key {
                "tuples" => workload.tuples = parse_int(value).map_err(err)? as usize,
                "seed" => workload.seed = parse_int(value).map_err(err)?,
                "parallelism" => workload.parallelism = parse_int(value).map_err(err)? as usize,
                "algorithm" => {
                    workload.algorithm = parse_algorithm(&parse_string(value).map_err(err)?)?
                }
                "strategy" => {
                    workload.strategy = parse_strategy(&parse_string(value).map_err(err)?)?
                }
                other => return Err(err(format!("unknown workload key {other:?}"))),
            },
            Section::Process(i) => {
                let p = &mut processes[i];
                match key {
                    "id" => p.id = parse_int(value).map_err(err)? as u32,
                    "addr" => p.addr = parse_string(value).map_err(err)?,
                    "role" => {
                        p.role = match parse_string(value).map_err(err)?.as_str() {
                            "source" => Role::Source,
                            "subscriber" => Role::Subscriber,
                            other => return Err(err(format!("unknown role {other:?}"))),
                        }
                    }
                    "nodes" => {
                        p.nodes = parse_int_list(value)
                            .map_err(err)?
                            .into_iter()
                            .map(|n| NodeId(n as u32))
                            .collect()
                    }
                    other => return Err(err(format!("unknown process key {other:?}"))),
                }
            }
        }
    }
    Ok(HostLayout {
        name,
        workload,
        processes,
    })
}

fn parse_string(v: &str) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("expected a quoted string, got {v:?}"))
}

fn parse_int(v: &str) -> Result<u64, String> {
    v.replace('_', "")
        .parse()
        .map_err(|_| format!("expected an integer, got {v:?}"))
}

fn parse_int_list(v: &str) -> Result<Vec<u64>, String> {
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected [a, b, ...], got {v:?}"))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|s| parse_int(s.trim())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# three-process localhost deployment
[deployment]
name = "local3"

[workload]
tuples = 400
seed = 42
algorithm = "region-greedy"
strategy = "batched:7"
parallelism = 2

[[process]]
id = 0
role = "source"
addr = "127.0.0.1:0"
nodes = [0]

[[process]]
id = 1
role = "subscriber"
addr = "127.0.0.1:0"
nodes = [1, 2]

[[process]]
id = 2
role = "subscriber"
addr = "127.0.0.1:0"
nodes = [3, 4]
"#;

    #[test]
    fn sample_layout_parses_and_validates() {
        let l = HostLayout::from_toml(SAMPLE).unwrap();
        assert_eq!(l.name, "local3");
        assert_eq!(l.workload.tuples, 400);
        assert_eq!(l.workload.strategy, OutputStrategy::Batched(7));
        assert_eq!(l.workload.parallelism, 2);
        assert_eq!(l.processes.len(), 3);
        assert_eq!(l.total_nodes(), 5);
        assert_eq!(l.source().id, 0);
        assert_eq!(
            l.subscriber_nodes(),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(l.process_of(NodeId(3)).unwrap().id, 2);
    }

    #[test]
    fn duplicate_nodes_are_rejected() {
        let bad = SAMPLE.replace("nodes = [3, 4]", "nodes = [2, 4]");
        let e = HostLayout::from_toml(&bad).unwrap_err();
        assert!(e.to_string().contains("hosted by two processes"), "{e}");
    }

    #[test]
    fn two_sources_are_rejected() {
        let bad = SAMPLE.replacen("role = \"subscriber\"", "role = \"source\"", 1);
        assert!(HostLayout::from_toml(&bad).is_err());
    }

    #[test]
    fn unknown_keys_fail_with_line_numbers() {
        let bad = format!("{SAMPLE}\nbogus = 1\n");
        let e = HostLayout::from_toml(&bad).unwrap_err();
        assert!(e.to_string().contains("layout line"), "{e}");
    }
}
