//! The localhost-socket connector: stream ingress over a real wire.
//!
//! [`SocketSource`] is a [`SourceConnector`] fed by a TCP peer — the
//! producing process ships [`Frame::Tuples`] bursts over a localhost
//! connection, and the connector hands them to the ingest driver as
//! row-form [`Chunk::Rows`] (arrival order; any disorder is the
//! event-time front end's business). [`SocketFeeder`] is the matching
//! producer half, used by the round-trip tests and by external
//! processes feeding a deployment.
//!
//! Two properties the connector seam demands:
//!
//! * **Backpressure propagates outward.** The connector only reads when
//!   [`next_chunk`](SourceConnector::next_chunk) is called; a throttled
//!   ingest stops calling, TCP's kernel buffer fills, and the feeder's
//!   `send` eventually blocks — the paper's "pressure reaches the
//!   producer" story with no extra machinery.
//! * **Mid-stream disconnects are survivable.** A peer that vanishes
//!   without [`Frame::Finish`] (clean EOF or a torn frame) is treated as
//!   a crash: the connector counts a reconnect and re-accepts, and the
//!   stream continues where the next feeder resumes it. Only an
//!   explicit `Finish` ends the stream.

use crate::frame::{read_frame, write_frame, Frame, DEFAULT_MAX_FRAME};
use gasf_core::connector::{Chunk, SourceConnector};
use gasf_core::error::Error;
use gasf_core::schema::Schema;
use gasf_core::tuple::Tuple;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

fn wire_err(context: &str, e: impl std::fmt::Display) -> Error {
    Error::Connector {
        reason: format!("{context}: {e}"),
    }
}

/// A [`SourceConnector`] accepting tuples over a localhost TCP socket.
///
/// Bind with [`bind`](Self::bind), hand [`local_addr`](Self::local_addr)
/// to the producer, and drive through
/// [`Middleware::ingest`](../gasf_solar/struct.Middleware.html#method.ingest)
/// (or any loop calling [`next_chunk`](SourceConnector::next_chunk)).
#[derive(Debug)]
pub struct SocketSource {
    schema: Schema,
    listener: TcpListener,
    conn: Option<BufReader<TcpStream>>,
    max_frame: usize,
    finished: bool,
    reconnects: u64,
    pending: VecDeque<Tuple>,
}

impl SocketSource {
    /// Binds an ephemeral localhost port for tuples of `schema`.
    ///
    /// # Errors
    /// [`Error::Connector`] when the bind fails.
    pub fn bind(schema: Schema) -> Result<Self, Error> {
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).map_err(|e| wire_err("socket source bind", e))?;
        Ok(SocketSource {
            schema,
            listener,
            conn: None,
            max_frame: DEFAULT_MAX_FRAME,
            finished: false,
            reconnects: 0,
            pending: VecDeque::new(),
        })
    }

    /// The address a [`SocketFeeder`] should connect to.
    ///
    /// # Errors
    /// [`Error::Connector`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<SocketAddr, Error> {
        self.listener
            .local_addr()
            .map_err(|e| wire_err("socket source local_addr", e))
    }

    /// How many times a peer vanished mid-stream and a fresh connection
    /// was accepted.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn drain_pending(&mut self, max_rows: usize) -> Chunk {
        let n = max_rows.max(1).min(self.pending.len());
        Chunk::Rows(self.pending.drain(..n).collect())
    }
}

impl SourceConnector for SocketSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Chunk>, Error> {
        loop {
            if !self.pending.is_empty() {
                return Ok(Some(self.drain_pending(max_rows)));
            }
            if self.finished {
                return Ok(None);
            }
            if self.conn.is_none() {
                let (stream, _) = self
                    .listener
                    .accept()
                    .map_err(|e| wire_err("socket source accept", e))?;
                self.conn = Some(BufReader::new(stream));
            }
            let conn = self.conn.as_mut().expect("connected above");
            match read_frame(conn, self.max_frame) {
                Ok(Some(Frame::Tuples(tuples))) => {
                    for t in &tuples {
                        if t.values().len() != self.schema.len() {
                            return Err(Error::Connector {
                                reason: format!(
                                    "tuple width {} does not match schema width {}",
                                    t.values().len(),
                                    self.schema.len()
                                ),
                            });
                        }
                    }
                    self.pending.extend(tuples);
                }
                Ok(Some(Frame::Finish)) => self.finished = true,
                Ok(Some(other)) => {
                    return Err(Error::Connector {
                        reason: format!("unexpected frame on tuple ingress: {other:?}"),
                    })
                }
                // Clean EOF or a torn frame: the peer crashed without a
                // Finish. Count it and accept a replacement connection.
                Ok(None) | Err(crate::codec::WireError::Truncated { .. }) => {
                    self.conn = None;
                    self.reconnects += 1;
                }
                Err(e) => return Err(wire_err("socket source read", e)),
            }
        }
    }
}

/// The producer half: connects to a [`SocketSource`] and ships tuple
/// bursts. Dropping a feeder without [`finish`](Self::finish) models a
/// producer crash — the source re-accepts and the stream resumes with
/// the next feeder.
#[derive(Debug)]
pub struct SocketFeeder {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl SocketFeeder {
    /// Connects to a listening [`SocketSource`].
    ///
    /// # Errors
    /// [`Error::Connector`] when the connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, Error> {
        let stream = TcpStream::connect(addr).map_err(|e| wire_err("socket feeder connect", e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| wire_err("socket feeder nodelay", e))?;
        Ok(SocketFeeder {
            stream,
            buf: Vec::new(),
        })
    }

    /// Ships one burst of tuples (arrival order preserved).
    ///
    /// # Errors
    /// [`Error::Connector`] when the write fails (e.g. the source went
    /// away).
    pub fn send(&mut self, tuples: &[Tuple]) -> Result<(), Error> {
        self.buf.clear();
        Frame::Tuples(tuples.to_vec()).encode_into(&mut self.buf);
        use std::io::Write as _;
        self.stream
            .write_all(&self.buf)
            .map_err(|e| wire_err("socket feeder send", e))
    }

    /// Ends the stream cleanly, consuming the feeder.
    ///
    /// # Errors
    /// [`Error::Connector`] when the final frame cannot be written.
    pub fn finish(mut self) -> Result<(), Error> {
        write_frame(&mut self.stream, &Frame::Finish)
            .map_err(|e| wire_err("socket feeder finish", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_core::tuple::series;

    fn rows(schema: &Schema, n: u64, from: u64) -> Vec<Tuple> {
        let pts: Vec<(u64, f64)> = (from..from + n).map(|i| (10 * (i + 1), i as f64)).collect();
        series(schema, "t", &pts)
            .into_iter()
            .enumerate()
            .map(|(i, t)| t.with_seq(from + i as u64))
            .collect()
    }

    #[test]
    fn socket_stream_delivers_in_order_and_finishes() {
        let schema = Schema::new(["t"]);
        let mut source = SocketSource::bind(schema.clone()).unwrap();
        let addr = source.local_addr().unwrap();
        let tuples = rows(&schema, 10, 0);
        let feeder_rows = tuples.clone();
        let feeder = std::thread::spawn(move || {
            let mut f = SocketFeeder::connect(addr).unwrap();
            f.send(&feeder_rows[..4]).unwrap();
            f.send(&feeder_rows[4..]).unwrap();
            f.finish().unwrap();
        });
        let mut got = Vec::new();
        while let Some(chunk) = source.next_chunk(3).unwrap() {
            match chunk {
                Chunk::Rows(r) => got.extend(r),
                Chunk::Batch(_) => unreachable!("socket source is row-form"),
            }
        }
        feeder.join().unwrap();
        assert_eq!(got, tuples);
        assert_eq!(source.reconnects(), 0);
    }

    #[test]
    fn mid_stream_crash_reconnects_and_resumes() {
        let schema = Schema::new(["t"]);
        let mut source = SocketSource::bind(schema.clone()).unwrap();
        let addr = source.local_addr().unwrap();
        let tuples = rows(&schema, 8, 0);
        let (first, rest) = (tuples[..3].to_vec(), tuples[3..].to_vec());
        let feeder = std::thread::spawn(move || {
            {
                let mut f = SocketFeeder::connect(addr).unwrap();
                f.send(&first).unwrap();
                // dropped without finish: a crash
            }
            let mut f = SocketFeeder::connect(addr).unwrap();
            f.send(&rest).unwrap();
            f.finish().unwrap();
        });
        let mut got = Vec::new();
        while let Some(chunk) = source.next_chunk(64).unwrap() {
            match chunk {
                Chunk::Rows(r) => got.extend(r),
                Chunk::Batch(_) => unreachable!(),
            }
        }
        feeder.join().unwrap();
        assert_eq!(got, tuples);
        assert_eq!(source.reconnects(), 1);
    }

    #[test]
    fn schema_width_mismatch_is_a_connector_error() {
        let schema = Schema::new(["a", "b"]);
        let narrow = Schema::new(["t"]);
        let mut source = SocketSource::bind(schema).unwrap();
        let addr = source.local_addr().unwrap();
        let tuples = rows(&narrow, 1, 0);
        let feeder = std::thread::spawn(move || {
            let mut f = SocketFeeder::connect(addr).unwrap();
            f.send(&tuples).unwrap();
            f.finish().ok();
        });
        let err = source.next_chunk(8).unwrap_err();
        assert!(err.to_string().contains("schema width"));
        feeder.join().unwrap();
    }
}
