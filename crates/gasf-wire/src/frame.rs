//! Length-prefixed frames: the unit of transmission on a wire connection.
//!
//! Every message crosses a connection as
//!
//! ```text
//! +----------+---------+---------+-------+----------------+
//! | len: u32 | magic:  | version | tag   | body (len - 4  |
//! | (LE)     | u16 LE  | u8      | u8    |  bytes)        |
//! +----------+---------+---------+-------+----------------+
//! ```
//!
//! `len` counts everything after itself (magic + version + tag + body),
//! so a reader can skip unknown frames wholesale. The magic pins the
//! byte order and protocol family; the version byte gates codec
//! evolution — a reader rejects versions it does not speak rather than
//! guessing at the body layout.

use crate::codec::{put_str, put_u16, put_u32, put_u64, Reader, WireDecode, WireEncode, WireError};
use gasf_core::engine::Emission;
use gasf_core::tuple::Tuple;
use gasf_net::{GroupId, NodeId};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// `"GW"` little-endian — the frame magic.
pub const MAGIC: u16 = 0x5747;
/// Codec version this build speaks.
pub const VERSION: u8 = 1;
/// Default cap on a single frame's size (16 MiB) — a corrupt or
/// malicious length prefix must not trigger a giant allocation.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

const TAG_HELLO: u8 = 1;
const TAG_EMISSION: u8 = 2;
const TAG_FINISH: u8 = 3;
const TAG_STATUS_REQUEST: u8 = 4;
const TAG_STATUS_REPORT: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_TUPLES: u8 = 7;

/// Per-node stream digest inside a [`SubscriberReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeDigest {
    /// The overlay node the digest belongs to.
    pub node: NodeId,
    /// Emissions the node observed.
    pub count: u64,
    /// Chained FNV-1a 64 over the canonical emission bytes (see
    /// [`StreamDigest`](crate::codec::StreamDigest)).
    pub hash: u64,
}

/// What a subscriber worker reports back on [`Frame::StatusRequest`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubscriberReport {
    /// The reporting process id from the host layout.
    pub process: u32,
    /// Frames received on data connections so far.
    pub frames: u64,
    /// Emission frames among them.
    pub emissions: u64,
    /// Raw frame bytes received (length prefixes included).
    pub bytes: u64,
    /// Whether a [`Frame::Finish`] has arrived (the stream is complete).
    pub done: bool,
    /// Per hosted node: emission count and chained stream hash.
    pub per_node: Vec<NodeDigest>,
}

/// One wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener: who is calling and for which deployment.
    Hello {
        /// Sender's process id from the host layout.
        process: u32,
        /// Deployment name, so crossed wires between two deployments on
        /// one host fail loudly instead of corrupting digests.
        deployment: String,
    },
    /// One emission for the `nodes` hosted by the receiving process.
    Emission {
        /// Multicast group the emission belongs to.
        group: GroupId,
        /// Source overlay node.
        src: NodeId,
        /// Recipient nodes hosted by the receiving process (already
        /// deduplicated; other processes get their own frame).
        nodes: Vec<NodeId>,
        /// The emission itself, canonical codec form.
        emission: Emission,
    },
    /// A burst of raw stream tuples, producer → source process (the
    /// ingress direction of the connector seam; see
    /// [`SocketSource`](crate::socket::SocketSource)). Tuples travel in
    /// arrival order; the receiving source's event-time front end deals
    /// with any disorder.
    Tuples(Vec<Tuple>),
    /// End of stream: the source has drained its engines.
    Finish,
    /// Ask the receiver for its [`SubscriberReport`].
    StatusRequest,
    /// The receiver's answer to [`Frame::StatusRequest`].
    StatusReport(SubscriberReport),
    /// Ask the receiver to write its report and exit its serve loop.
    Shutdown,
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Emission { .. } => TAG_EMISSION,
            Frame::Tuples(_) => TAG_TUPLES,
            Frame::Finish => TAG_FINISH,
            Frame::StatusRequest => TAG_STATUS_REQUEST,
            Frame::StatusReport(_) => TAG_STATUS_REPORT,
            Frame::Shutdown => TAG_SHUTDOWN,
        }
    }

    /// Appends the full frame — length prefix, header, body — to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let len_at = buf.len();
        put_u32(buf, 0); // patched below
        put_u16(buf, MAGIC);
        buf.push(VERSION);
        buf.push(self.tag());
        match self {
            Frame::Hello {
                process,
                deployment,
            } => {
                put_u32(buf, *process);
                put_str(buf, deployment);
            }
            Frame::Emission {
                group,
                src,
                nodes,
                emission,
            } => {
                group.encode(buf);
                src.encode(buf);
                nodes.encode(buf);
                emission.encode(buf);
            }
            Frame::Tuples(tuples) => {
                put_u32(buf, tuples.len() as u32);
                for t in tuples {
                    t.encode(buf);
                }
            }
            Frame::Finish | Frame::StatusRequest | Frame::Shutdown => {}
            Frame::StatusReport(report) => {
                put_u32(buf, report.process);
                put_u64(buf, report.frames);
                put_u64(buf, report.emissions);
                put_u64(buf, report.bytes);
                buf.push(report.done as u8);
                put_u32(buf, report.per_node.len() as u32);
                for d in &report.per_node {
                    d.node.encode(buf);
                    put_u64(buf, d.count);
                    put_u64(buf, d.hash);
                }
            }
        }
        let len = (buf.len() - len_at - 4) as u32;
        buf[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Decodes a frame from its post-length-prefix bytes (magic,
    /// version, tag, body).
    ///
    /// # Errors
    /// [`WireError::BadMagic`]/[`WireError::BadVersion`]/
    /// [`WireError::BadTag`] on header mismatch, the usual codec errors
    /// on a malformed body, [`WireError::TrailingBytes`] if the body is
    /// longer than the frame's content.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.u16()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let tag = r.u8()?;
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                process: r.u32()?,
                deployment: r.string()?,
            },
            TAG_EMISSION => Frame::Emission {
                group: GroupId::decode(&mut r)?,
                src: NodeId::decode(&mut r)?,
                nodes: Vec::<NodeId>::decode(&mut r)?,
                emission: Emission::decode(&mut r)?,
            },
            TAG_TUPLES => {
                let n = r.u32()? as usize;
                let mut tuples = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    tuples.push(Tuple::decode(&mut r)?);
                }
                Frame::Tuples(tuples)
            }
            TAG_FINISH => Frame::Finish,
            TAG_STATUS_REQUEST => Frame::StatusRequest,
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_STATUS_REPORT => {
                let process = r.u32()?;
                let frames = r.u64()?;
                let emissions = r.u64()?;
                let bytes = r.u64()?;
                let done = r.u8()? != 0;
                let n = r.u32()? as usize;
                let mut per_node = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    per_node.push(NodeDigest {
                        node: NodeId::decode(&mut r)?,
                        count: r.u64()?,
                        hash: r.u64()?,
                    });
                }
                Frame::StatusReport(SubscriberReport {
                    process,
                    frames,
                    emissions,
                    bytes,
                    done,
                    per_node,
                })
            }
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Appends a full [`Frame::Emission`] — length prefix, header, body —
/// to `buf` from borrowed parts, so the hot send path never builds the
/// owned enum (no `Vec<NodeId>`/`Emission` clone per peer frame).
/// Byte-identical to `Frame::Emission { .. }.encode_into(buf)`.
pub fn encode_emission_frame(
    buf: &mut Vec<u8>,
    group: GroupId,
    src: NodeId,
    nodes: &[NodeId],
    emission: &Emission,
) {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    put_u16(buf, MAGIC);
    buf.push(VERSION);
    buf.push(TAG_EMISSION);
    group.encode(buf);
    src.encode(buf);
    put_u32(buf, nodes.len() as u32);
    for n in nodes {
        n.encode(buf);
    }
    emission.encode(buf);
    let len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Writes one frame to a stream (buffered writers flush separately).
///
/// # Errors
/// [`WireError::Io`] when the write fails.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let mut buf = Vec::new();
    frame.encode_into(&mut buf);
    w.write_all(&buf)?;
    Ok(())
}

/// Reads one frame off a stream. Returns `Ok(None)` on clean EOF at a
/// frame boundary; EOF inside a frame is [`WireError::Truncated`].
///
/// # Errors
/// Header/body errors as in [`Frame::decode`]; [`WireError::Oversize`]
/// when the length prefix exceeds `max_frame`.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Frame>, WireError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_frame {
        return Err(WireError::Oversize {
            len,
            max: max_frame,
        });
    }
    if len < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            have: len,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                needed: len,
                have: 0,
            }
        } else {
            WireError::from(e)
        }
    })?;
    Frame::decode(&body).map(Some)
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Fills `buf` fully, distinguishing clean EOF before the first byte
/// (frame boundary) from EOF mid-prefix (truncation).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(ReadOutcome::Eof);
                }
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    have: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_frames_round_trip_through_a_stream() {
        let frames = vec![
            Frame::Hello {
                process: 3,
                deployment: "local3".into(),
            },
            Frame::Finish,
            Frame::StatusRequest,
            Frame::StatusReport(SubscriberReport {
                process: 3,
                frames: 10,
                emissions: 8,
                bytes: 1234,
                done: true,
                per_node: vec![NodeDigest {
                    node: NodeId(2),
                    count: 8,
                    hash: 0xabc,
                }],
            }),
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for f in &frames {
            let got = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap();
            assert_eq!(&got, f);
        }
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Finish).unwrap();
        let mut evil = wire.clone();
        evil[4] ^= 0xff; // corrupt magic
        assert!(matches!(
            read_frame(&mut &evil[..], DEFAULT_MAX_FRAME),
            Err(WireError::BadMagic(_))
        ));
        let mut future = wire.clone();
        future[6] = 99; // unsupported version
        assert!(matches!(
            read_frame(&mut &future[..], DEFAULT_MAX_FRAME),
            Err(WireError::BadVersion(99))
        ));
    }

    #[test]
    fn oversize_prefix_is_rejected_before_allocation() {
        let wire = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &wire[..], 1024),
            Err(WireError::Oversize { .. })
        ));
    }
}
