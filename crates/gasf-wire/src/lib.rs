//! # gasf-wire — the real wire under the transport seam
//!
//! The paper's prototype ran over Solar on a real Emulab network; the
//! rest of this workspace models that network analytically. This crate
//! is the other side of the [`Transport`](gasf_net::Transport) seam: a
//! **length-prefixed TCP transport** that moves the engine's emissions
//! between OS processes on localhost, plus everything needed to stand a
//! deployment up and prove it faithful:
//!
//! * [`codec`] — a hand-rolled little-endian byte codec
//!   ([`WireEncode`]/[`WireDecode`]) for `Emission`, `Delivery` and the
//!   core id types, allocation-free on the send path, with
//!   [`StreamDigest`] (chained FNV-1a over canonical emission bytes) as
//!   the byte-identical-stream witness;
//! * [`frame`] — the versioned frame format
//!   (`[len][magic][version][tag][body]`) and the [`Frame`] control
//!   protocol (`Hello`/`Emission`/`Finish`/`StatusRequest`/
//!   `StatusReport`/`Shutdown`);
//! * [`layout`] — [`HostLayout`]: a TOML-subset config mapping overlay
//!   [`NodeId`](gasf_net::NodeId)s onto processes, with `GASF_WIRE_*`
//!   env overrides;
//! * [`tcp`] — [`TcpTransport`]: one multiplexed connection per peer
//!   process, buffered writes with explicit flush/backpressure;
//! * [`record`] — [`Recorded`]: a digest-recording tee over any
//!   transport, producing the in-process reference a wire run must
//!   match;
//! * [`socket`] — [`SocketSource`]/[`SocketFeeder`]: the
//!   localhost-socket connector pair (ingress direction of the
//!   connector seam), with crash-reconnect semantics;
//! * [`worker`] — the source/subscriber process bodies behind the
//!   `gasfctl` control binary (`launch`/`smoke`/`status`/`kill`/
//!   `inspect`).
//!
//! The contract throughout: a deployment is correct iff every
//! subscriber node's received stream is **byte-identical** to the
//! in-process run — same emissions, same order, same encoded bytes —
//! while per-link bandwidth accounting stays observable through the
//! seam.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod codec;
pub mod frame;
pub mod layout;
pub mod record;
pub mod socket;
pub mod tcp;
pub mod worker;

pub use codec::{StreamDigest, WireDecode, WireEncode, WireError};
pub use frame::{Frame, NodeDigest, SubscriberReport, DEFAULT_MAX_FRAME};
pub use layout::{HostLayout, ProcessSpec, Role, WorkloadSpec};
pub use record::Recorded;
pub use socket::{SocketFeeder, SocketSource};
pub use tcp::{TcpTransport, WireConfig};
pub use worker::{run_source, run_subscriber, DeploymentOutcome};
