//! `gasfctl` — control a localhost GASF deployment.
//!
//! ```text
//! gasfctl launch  <layout.toml> --run-dir <dir>   spawn workers, return
//! gasfctl smoke   <layout.toml> --run-dir <dir>   launch + wait + verdict
//! gasfctl status  --run-dir <dir>                 liveness per process
//! gasfctl kill    --run-dir <dir>                 stop a launched deployment
//! gasfctl inspect --run-dir <dir>                 print run reports
//! gasfctl worker  --layout <f> --process <id> --run-dir <dir>
//!                                                 (internal: one worker)
//! ```
//!
//! `launch` spawns one OS process per `[[process]]` entry — subscribers
//! first, source last — each a re-exec of this binary's hidden `worker`
//! subcommand, and records pids in `proc-<id>.pid` files. `smoke` does
//! the same but waits for every worker and exits nonzero unless the
//! source reports `EQUIVALENT: yes`; CI wraps it in `timeout(1)` as the
//! reap-everything guard.

#![forbid(unsafe_code)]

use gasf_wire::layout::{HostLayout, Role};
use gasf_wire::tcp::WireConfig;
use gasf_wire::worker::{port_file, report_file, run_source, run_subscriber};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode};
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("launch") => cmd_launch(&args[1..], false),
        Some("smoke") => cmd_launch(&args[1..], true),
        Some("status") => cmd_status(&args[1..]),
        Some("kill") => cmd_kill(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("gasfctl: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gasfctl — control a localhost GASF deployment

  gasfctl launch  <layout.toml> --run-dir <dir>
  gasfctl smoke   <layout.toml> --run-dir <dir>
  gasfctl status  --run-dir <dir>
  gasfctl kill    --run-dir <dir>
  gasfctl inspect --run-dir <dir>
";

/// Pulls the value following `--<name>` out of an argument list.
fn flag(args: &[String], name: &str) -> Result<PathBuf, String> {
    let key = format!("--{name}");
    args.iter()
        .position(|a| *a == key)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .ok_or_else(|| format!("missing {key} <value>"))
}

/// First argument that is neither a `--flag` nor a flag's value.
fn positional(args: &[String]) -> Result<PathBuf, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            return Ok(PathBuf::from(&args[i]));
        }
    }
    Err("missing <layout.toml>".to_string())
}

fn pid_file(run_dir: &Path, process: u32) -> PathBuf {
    run_dir.join(format!("proc-{process}.pid"))
}

fn spawn_worker(layout_path: &Path, process: u32, run_dir: &Path) -> Result<Child, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    Command::new(exe)
        .arg("worker")
        .arg("--layout")
        .arg(layout_path)
        .arg("--process")
        .arg(process.to_string())
        .arg("--run-dir")
        .arg(run_dir)
        .spawn()
        .map_err(|e| format!("spawn worker {process}: {e}"))
}

/// `launch` / `smoke`: spawn every worker; `wait` decides whether we
/// detach (recording pids) or reap everything and report the verdict.
fn cmd_launch(args: &[String], wait: bool) -> Result<ExitCode, String> {
    let layout_path = positional(args)?;
    let run_dir = flag(args, "run-dir")?;
    let layout = HostLayout::from_path(&layout_path).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(&run_dir).map_err(|e| format!("{}: {e}", run_dir.display()))?;
    // Stale port files from a previous run would satisfy the source's
    // polling loop with a dead port — clear them first.
    for p in &layout.processes {
        let _ = std::fs::remove_file(port_file(&run_dir, p.id));
        let _ = std::fs::remove_file(pid_file(&run_dir, p.id));
    }

    let mut children: Vec<(u32, Child)> = Vec::new();
    let mut order: Vec<&_> = layout.subscribers().collect();
    order.push(layout.source());
    for spec in order {
        let child = spawn_worker(&layout_path, spec.id, &run_dir)?;
        if !wait {
            std::fs::write(pid_file(&run_dir, spec.id), format!("{}\n", child.id()))
                .map_err(|e| format!("pid file: {e}"))?;
        }
        children.push((spec.id, child));
    }
    if !wait {
        println!(
            "launched {} workers for deployment {} (run dir {})",
            children.len(),
            layout.name,
            run_dir.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let mut failed = false;
    for (id, mut child) in children {
        let status = child.wait().map_err(|e| format!("wait worker {id}: {e}"))?;
        if !status.success() {
            eprintln!("worker {id} exited with {status}");
            failed = true;
        }
    }
    let report = run_dir.join("report.txt");
    match std::fs::read_to_string(&report) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("no deployment report at {}: {e}", report.display());
            failed = true;
        }
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn read_pids(run_dir: &Path) -> Result<Vec<(u32, u32)>, String> {
    let mut pids = Vec::new();
    let entries = std::fs::read_dir(run_dir).map_err(|e| format!("{}: {e}", run_dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name
            .strip_prefix("proc-")
            .and_then(|s| s.strip_suffix(".pid"))
        {
            let id: u32 = id.parse().map_err(|_| format!("bad pid file {name}"))?;
            let pid: u32 = std::fs::read_to_string(entry.path())
                .map_err(|e| format!("{name}: {e}"))?
                .trim()
                .parse()
                .map_err(|_| format!("bad pid in {name}"))?;
            pids.push((id, pid));
        }
    }
    pids.sort_unstable();
    Ok(pids)
}

fn alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let run_dir = flag(args, "run-dir")?;
    let pids = read_pids(&run_dir)?;
    if pids.is_empty() {
        println!("no launched workers under {}", run_dir.display());
        return Ok(ExitCode::SUCCESS);
    }
    for (id, pid) in pids {
        println!(
            "process {id}: pid {pid} {}",
            if alive(pid) { "running" } else { "exited" }
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_kill(args: &[String]) -> Result<ExitCode, String> {
    let run_dir = flag(args, "run-dir")?;
    let mut killed = 0usize;
    for (id, pid) in read_pids(&run_dir)? {
        if alive(pid) {
            let status = Command::new("kill")
                .arg(pid.to_string())
                .status()
                .map_err(|e| format!("kill {pid}: {e}"))?;
            if status.success() {
                killed += 1;
            } else {
                eprintln!("kill {pid} (process {id}) failed with {status}");
            }
        }
        let _ = std::fs::remove_file(pid_file(&run_dir, id));
    }
    println!("killed {killed} workers");
    Ok(ExitCode::SUCCESS)
}

fn cmd_inspect(args: &[String]) -> Result<ExitCode, String> {
    let run_dir = flag(args, "run-dir")?;
    let mut names: Vec<PathBuf> = std::fs::read_dir(&run_dir)
        .map_err(|e| format!("{}: {e}", run_dir.display()))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with("report.txt"))
        })
        .collect();
    names.sort();
    if names.is_empty() {
        println!("no reports under {}", run_dir.display());
        return Ok(ExitCode::SUCCESS);
    }
    for path in names {
        println!("==> {}", path.display());
        match std::fs::read_to_string(&path) {
            Ok(text) => print!("{text}"),
            Err(e) => eprintln!("  unreadable: {e}"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// The hidden per-process entrypoint `launch`/`smoke` re-exec.
fn cmd_worker(args: &[String]) -> Result<ExitCode, String> {
    let layout_path = flag(args, "layout")?;
    let run_dir = flag(args, "run-dir")?;
    let process: u32 = flag(args, "process")?
        .to_string_lossy()
        .parse()
        .map_err(|_| "bad --process id".to_string())?;
    let layout = HostLayout::from_path(&layout_path).map_err(|e| e.to_string())?;
    let spec = layout
        .process(process)
        .ok_or_else(|| format!("no process {process} in layout"))?;
    let lifetime = match std::env::var("GASF_WIRE_LIFETIME_SECS") {
        Ok(v) => Duration::from_secs(
            v.parse()
                .map_err(|_| "bad GASF_WIRE_LIFETIME_SECS".to_string())?,
        ),
        Err(_) => Duration::from_secs(300),
    };
    match spec.role {
        Role::Subscriber => {
            run_subscriber(&layout, process, &run_dir, lifetime).map_err(|e| e.to_string())?;
            Ok(ExitCode::SUCCESS)
        }
        Role::Source => {
            let outcome =
                run_source(&layout, &run_dir, WireConfig::default()).map_err(|e| e.to_string())?;
            if outcome.equivalent {
                Ok(ExitCode::SUCCESS)
            } else {
                for m in &outcome.mismatches {
                    eprintln!("mismatch: {m}");
                }
                Err(format!(
                    "deployment {} is NOT stream-equivalent (see {})",
                    layout.name,
                    report_file(&run_dir, process).display()
                ))
            }
        }
    }
}
