//! Worker entrypoints: the processes of a localhost deployment.
//!
//! A deployment (described by a [`HostLayout`]) is one **source** worker
//! and N **subscriber** workers:
//!
//! * [`run_subscriber`] binds the process's listen address (publishing
//!   ephemeral ports through a `proc-<id>.port` file in the run
//!   directory), then serves framed connections: emission frames fold
//!   into per-node [`StreamDigest`]s, `StatusRequest` answers with a
//!   [`SubscriberReport`], `Shutdown` writes `proc-<id>.report.txt` and
//!   returns.
//! * [`run_source`] builds the middleware partition from the layout's
//!   workload, replays the trace **twice** — once through a recording
//!   null transport (the in-process reference) and once over a real
//!   [`TcpTransport`] — then queries every subscriber, compares per-node
//!   digests, writes `report.txt`, and returns the
//!   [`DeploymentOutcome`].
//!
//! Byte-identical streams are the contract: the engines are
//! deterministic, so the reference digests and the digests the remote
//! subscribers computed from decoded frames must match exactly,
//! exhaustively over whatever Algorithm × OutputStrategy the layout (or
//! the `GASF_WIRE_*` env overrides) selects.
//!
//! ## Failure semantics
//!
//! Workers never hang forever: subscribers poll their listener against a
//! caller-supplied deadline and time out stalled reads; the source
//! bounds connect retries and status replies with [`WireConfig`]
//! timeouts. A dead peer therefore surfaces as a loud [`WireError`]
//! within the deadline, and `gasfctl` (or the CI timeout guard) reaps
//! whatever is left.

use crate::codec::{canonical_emission, StreamDigest, WireError};
use crate::frame::{write_frame, Frame, NodeDigest, SubscriberReport, DEFAULT_MAX_FRAME};
use crate::layout::{algorithm_name, strategy_name, HostLayout, ProcessSpec, Role};
use crate::record::Recorded;
use crate::tcp::{TcpTransport, WireConfig};
use gasf_core::quality::FilterSpec;
use gasf_net::transport::LinkLoad;
use gasf_net::{NodeId, NullTransport, Overlay, Topology, Transport};
use gasf_solar::{Middleware, MiddlewareConfig, SourceId};
use gasf_sources::{NamosBuoy, Trace};
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn solar_err(e: impl std::fmt::Display) -> WireError {
    WireError::Io(e.to_string())
}

/// Builds the deployment's middleware partition from a layout: a ring
/// overlay over [`HostLayout::total_nodes`], one source, and one delta
/// filter per subscriber node with deterministically spread parameters
/// (scaled off the trace's `tmpr4` mean absolute delta, like the
/// equivalence suites). Returns the deployed middleware, the source id
/// and the generated trace.
///
/// # Errors
/// [`WireError::Io`] wrapping any middleware/trace failure.
pub fn build_middleware(layout: &HostLayout) -> Result<(Middleware, SourceId, Trace), WireError> {
    let trace = NamosBuoy::new()
        .tuples(layout.workload.tuples)
        .seed(layout.workload.seed)
        .generate();
    let overlay = Overlay::new(Topology::ring(layout.total_nodes()).build());
    let config = MiddlewareConfig {
        algorithm: layout.workload.algorithm,
        strategy: layout.workload.strategy,
        constraint: None,
        parallelism: layout.workload.parallelism,
        event_time: None,
        ingress_capacity: None,
        shedding: None,
    };
    let mut mw = Middleware::with_config(overlay, config);
    let src_node = layout.source().nodes[0];
    let src = mw
        .register_source("wire-src", src_node, trace.schema().clone())
        .map_err(solar_err)?;
    let s = trace.stats("tmpr4").map_err(solar_err)?.mean_abs_delta;
    for (k, node) in layout.subscriber_nodes().into_iter().enumerate() {
        let k = k as f64;
        let spec = FilterSpec::delta("tmpr4", s * (2.0 + 0.5 * k), s * (0.9 + 0.25 * k));
        // Static deployment: the handle's unsubscribe lifecycle is unused.
        let _handle = mw
            .subscribe(format!("app-{}", node.index()), node, src, spec)
            .map_err(solar_err)?;
    }
    mw.deploy().map_err(solar_err)?;
    Ok((mw, src, trace))
}

/// The run directory's port file for a process.
pub fn port_file(run_dir: &Path, process: u32) -> PathBuf {
    run_dir.join(format!("proc-{process}.port"))
}

/// The run directory's report file for a process (the deployment-level
/// `report.txt` belongs to the source).
pub fn report_file(run_dir: &Path, process: u32) -> PathBuf {
    run_dir.join(format!("proc-{process}.report.txt"))
}

/// Resolves a process's actual socket address: fixed ports parse
/// directly, ephemeral (`:0`) ports poll the process's port file until
/// `timeout`.
///
/// # Errors
/// [`WireError::Io`] on unparseable addresses or when the port file
/// does not appear in time.
pub fn resolve_addr(
    spec: &ProcessSpec,
    run_dir: &Path,
    timeout: Duration,
) -> Result<SocketAddr, WireError> {
    let (host, port) = spec
        .addr
        .rsplit_once(':')
        .ok_or_else(|| WireError::Io(format!("address {:?} lacks a port", spec.addr)))?;
    let port: u16 = port
        .parse()
        .map_err(|_| WireError::Io(format!("bad port in {:?}", spec.addr)))?;
    if port != 0 {
        return format!("{host}:{port}")
            .parse()
            .map_err(|e| WireError::Io(format!("address {:?}: {e}", spec.addr)));
    }
    let file = port_file(run_dir, spec.id);
    let deadline = Instant::now() + timeout;
    loop {
        match std::fs::read_to_string(&file) {
            Ok(text) => {
                let actual: u16 = text
                    .trim()
                    .parse()
                    .map_err(|_| WireError::Io(format!("bad port file {}", file.display())))?;
                return format!("{host}:{actual}")
                    .parse()
                    .map_err(|e| WireError::Io(format!("address {:?}: {e}", spec.addr)));
            }
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => {
                return Err(WireError::Io(format!(
                    "port file {} never appeared: {e}",
                    file.display()
                )))
            }
        }
    }
}

/// What one `read` attempt on a subscriber connection produced.
enum Step {
    Frame(Vec<u8>),
    Idle,
    Eof,
}

/// Reads one length-prefixed frame body (header bytes included) off a
/// stream with a read timeout, distinguishing "no bytes yet" from EOF
/// and truncation. `deadline` bounds a stalled mid-frame sender.
fn read_frame_step(
    stream: &mut TcpStream,
    max_frame: usize,
    deadline: Instant,
) -> Result<Step, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(Step::Eof),
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: 4,
                    have: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 {
                    return Ok(Step::Idle);
                }
                if Instant::now() > deadline {
                    return Err(WireError::Io("peer stalled mid-frame".into()));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_frame {
        return Err(WireError::Oversize {
            len,
            max: max_frame,
        });
    }
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match stream.read(&mut body[got..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    needed: len,
                    have: got,
                })
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() > deadline {
                    return Err(WireError::Io("peer stalled mid-frame".into()));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Step::Frame(body))
}

struct SubscriberState {
    process: u32,
    deployment: String,
    hosted: Vec<NodeId>,
    frames: u64,
    emissions: u64,
    bytes: u64,
    done: bool,
    digests: BTreeMap<NodeId, StreamDigest>,
    scratch_canon: Vec<u8>,
}

impl SubscriberState {
    fn report(&self) -> SubscriberReport {
        SubscriberReport {
            process: self.process,
            frames: self.frames,
            emissions: self.emissions,
            bytes: self.bytes,
            done: self.done,
            per_node: self
                .hosted
                .iter()
                .map(|&node| {
                    let d = self.digests.get(&node).copied().unwrap_or_default();
                    NodeDigest {
                        node,
                        count: d.count,
                        hash: d.hash,
                    }
                })
                .collect(),
        }
    }

    fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "subscriber process {} (deployment {})\n",
            self.process, self.deployment
        ));
        out.push_str(&format!(
            "frames: {}  emissions: {}  bytes: {}  done: {}\n",
            self.frames, self.emissions, self.bytes, self.done
        ));
        for d in self.report().per_node {
            out.push_str(&format!(
                "node {}: count={} hash={:016x}\n",
                d.node, d.count, d.hash
            ));
        }
        out
    }

    fn handle(&mut self, frame: Frame, raw_len: u64) -> Result<Option<Frame>, WireError> {
        self.frames += 1;
        self.bytes += raw_len;
        match frame {
            Frame::Hello {
                process: _,
                deployment,
            } => {
                if deployment != self.deployment {
                    return Err(WireError::Io(format!(
                        "crossed wires: caller is deployment {deployment:?}, \
                         this worker serves {:?}",
                        self.deployment
                    )));
                }
                Ok(None)
            }
            Frame::Emission {
                group,
                src,
                nodes,
                emission,
            } => {
                self.emissions += 1;
                // Re-encode the decoded emission into its canonical
                // bytes — identical to the sender's encoding iff the
                // stream really is byte-identical end to end.
                canonical_emission(&mut self.scratch_canon, group, src, &emission);
                for node in nodes {
                    if self.hosted.contains(&node) {
                        self.digests
                            .entry(node)
                            .or_default()
                            .update(&self.scratch_canon);
                    }
                }
                Ok(None)
            }
            Frame::Finish => {
                self.done = true;
                Ok(None)
            }
            Frame::StatusRequest => Ok(Some(Frame::StatusReport(self.report()))),
            Frame::Shutdown => Ok(Some(Frame::Shutdown)),
            Frame::StatusReport(_) => Err(WireError::Io(
                "subscriber received a StatusReport (protocol confusion)".into(),
            )),
            Frame::Tuples(_) => Err(WireError::Io(
                "subscriber received a raw tuple burst (protocol confusion: \
                 Tuples frames address a SocketSource, not a subscriber)"
                    .into(),
            )),
        }
    }
}

/// Runs a subscriber worker until a `Shutdown` frame or `max_lifetime`
/// elapses. Binds the process's layout address (publishing the real
/// port via [`port_file`] when ephemeral), accepts connections
/// sequentially, and maintains per-node digests across all of them.
/// Returns the final report (also written to [`report_file`]).
///
/// # Errors
/// [`WireError::Io`] on bind/accept failures, protocol violations,
/// deployment-name mismatches, or deadline exhaustion.
pub fn run_subscriber(
    layout: &HostLayout,
    process: u32,
    run_dir: &Path,
    max_lifetime: Duration,
) -> Result<SubscriberReport, WireError> {
    let spec = layout
        .process(process)
        .ok_or_else(|| WireError::Io(format!("no process {process} in layout")))?;
    if spec.role != Role::Subscriber {
        return Err(WireError::Io(format!(
            "process {process} is a {}, not a subscriber",
            spec.role
        )));
    }
    std::fs::create_dir_all(run_dir)?;
    let (host, port) = spec.addr.rsplit_once(':').expect("validated addr");
    let listener = TcpListener::bind(format!("{host}:{port}"))
        .map_err(|e| WireError::Io(format!("bind {}: {e}", spec.addr)))?;
    let actual = listener.local_addr()?.port();
    // Publish the bound port atomically: write-then-rename, so a reader
    // polling the path never sees a half-written file.
    let pf = port_file(run_dir, process);
    let tmp = pf.with_extension("port.tmp");
    std::fs::write(&tmp, format!("{actual}\n"))?;
    std::fs::rename(&tmp, &pf)?;
    listener.set_nonblocking(true)?;

    let deadline = Instant::now() + max_lifetime;
    let mut state = SubscriberState {
        process,
        deployment: layout.name.clone(),
        hosted: spec.nodes.clone(),
        frames: 0,
        emissions: 0,
        bytes: 0,
        done: false,
        digests: BTreeMap::new(),
        scratch_canon: Vec::new(),
    };

    loop {
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(WireError::Io("subscriber lifetime exhausted".into()));
                }
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        stream.set_nodelay(true)?;
        // Serve this connection until EOF or Shutdown.
        loop {
            match read_frame_step(&mut stream, DEFAULT_MAX_FRAME, deadline)? {
                Step::Eof => break,
                Step::Idle => {
                    if Instant::now() > deadline {
                        return Err(WireError::Io("subscriber lifetime exhausted".into()));
                    }
                }
                Step::Frame(body) => {
                    let raw_len = body.len() as u64 + 4;
                    let frame = Frame::decode(&body)?;
                    match state.handle(frame, raw_len)? {
                        Some(Frame::Shutdown) => {
                            let report = state.report();
                            std::fs::write(report_file(run_dir, process), state.render_report())?;
                            return Ok(report);
                        }
                        Some(reply) => write_frame(&mut stream, &reply)?,
                        None => {}
                    }
                    if state.done {
                        // Persist progress at end-of-stream so `gasfctl
                        // inspect` reads digests even before shutdown.
                        std::fs::write(report_file(run_dir, process), state.render_report())?;
                    }
                }
            }
        }
    }
}

/// Everything a finished deployment run knows, returned by
/// [`run_source`] and rendered into `report.txt`.
#[derive(Debug)]
pub struct DeploymentOutcome {
    /// Whether every subscriber's per-node digests matched the
    /// in-process reference — the distributed-equivalence verdict.
    pub equivalent: bool,
    /// Human-readable mismatch descriptions (empty when equivalent).
    pub mismatches: Vec<String>,
    /// Reference digests per subscriber node (recorded in-process).
    pub reference: BTreeMap<NodeId, StreamDigest>,
    /// What each subscriber process reported receiving.
    pub received: Vec<SubscriberReport>,
    /// Per-peer-connection bytes the wire transport sent.
    pub wire_links: Vec<LinkLoad>,
    /// Per-underlay-link bytes of the in-process overlay baseline run —
    /// the analytic bandwidth accounting, preserved through the seam.
    pub overlay_links: Vec<LinkLoad>,
    /// Emission sends over the wire.
    pub wire_messages: u64,
    /// Total bytes the wire transport put on its connections.
    pub wire_bytes: u64,
    /// Total bytes of the overlay baseline run.
    pub overlay_bytes: u64,
}

impl DeploymentOutcome {
    /// Renders the deployment report `gasfctl inspect` prints.
    pub fn render(&self, layout: &HostLayout) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "deployment {} — {} tuples, seed {}, {} / {}, parallelism {}\n",
            layout.name,
            layout.workload.tuples,
            layout.workload.seed,
            algorithm_name(layout.workload.algorithm),
            strategy_name(layout.workload.strategy),
            layout.workload.parallelism,
        ));
        out.push_str(&format!(
            "wire: {} emission sends, {} bytes\n",
            self.wire_messages, self.wire_bytes
        ));
        for l in &self.wire_links {
            out.push_str(&format!("  link {l}\n"));
        }
        out.push_str(&format!(
            "overlay baseline: {} bytes across {} links\n",
            self.overlay_bytes,
            self.overlay_links.len()
        ));
        for l in &self.overlay_links {
            out.push_str(&format!("  link {l}\n"));
        }
        out.push_str("per-node delivery digests (reference | received):\n");
        for report in &self.received {
            for d in &report.per_node {
                let r = self.reference.get(&d.node).copied().unwrap_or_default();
                out.push_str(&format!(
                    "  node {} @ p{}: {}x{:016x} | {}x{:016x}\n",
                    d.node, report.process, r.count, r.hash, d.count, d.hash
                ));
            }
        }
        out.push_str(&format!(
            "EQUIVALENT: {}\n",
            if self.equivalent { "yes" } else { "NO" }
        ));
        for m in &self.mismatches {
            out.push_str(&format!("  mismatch: {m}\n"));
        }
        out
    }
}

/// Runs the source worker of a deployment: reference digest run, wire
/// run over a [`TcpTransport`], subscriber status collection, digest
/// comparison, and the deployment `report.txt`. The subscriber workers
/// must already be launching (the connect retries cover startup races);
/// they are sent `Finish` + `Shutdown`, so a successful `run_source`
/// leaves no worker behind.
///
/// # Errors
/// [`WireError`] on any middleware, socket or protocol failure.
pub fn run_source(
    layout: &HostLayout,
    run_dir: &Path,
    config: WireConfig,
) -> Result<DeploymentOutcome, WireError> {
    std::fs::create_dir_all(run_dir)?;

    // 1. Reference run: digests recorded in-process, no sockets.
    let (mut mw, src, trace) = build_middleware(layout)?;
    let mut reference_transport = Recorded::new(NullTransport::new());
    {
        let pipeline = mw
            .pipeline_over(src, &mut reference_transport)
            .map_err(solar_err)?;
        drive(pipeline, &trace)?;
    }
    let (_, reference) = reference_transport.into_parts();

    // 2. Overlay baseline: the same workload through the in-process
    //    overlay (the pre-seam path), for the bandwidth report.
    let (mut mw2, src2, _) = build_middleware(layout)?;
    {
        let pipeline = mw2.pipeline(src2).map_err(solar_err)?;
        drive(pipeline, &trace)?;
    }
    let overlay_links = Transport::link_loads(mw2.overlay());
    let overlay_bytes = mw2.overlay().total_bytes();

    // 3. Wire run: fresh middleware, emissions over TCP.
    let (mut mw3, src3, _) = build_middleware(layout)?;
    let mut wire = TcpTransport::connect(layout, layout.source().id, config, |pid| {
        let spec = layout
            .process(pid)
            .ok_or_else(|| WireError::Io(format!("no process {pid} in layout")))?;
        resolve_addr(spec, run_dir, config.connect_timeout)
    })?;
    {
        let pipeline = mw3.pipeline_over(src3, &mut wire).map_err(solar_err)?;
        drive(pipeline, &trace)?;
    }
    Transport::flush(&mut wire).map_err(|e| WireError::Io(e.to_string()))?;
    wire.broadcast_control(&Frame::Finish)?;

    // 4. Collect subscriber reports, then release the workers.
    let mut received = Vec::new();
    for sub in layout.subscribers() {
        received.push(wire.query_status(sub.id)?);
    }
    let wire_links = Transport::link_loads(&wire);
    let wire_messages = Transport::messages(&wire);
    let wire_bytes = Transport::total_bytes(&wire);
    wire.broadcast_control(&Frame::Shutdown)?;

    // 5. Compare digests: every subscriber node must have observed the
    //    reference stream byte for byte.
    let mut mismatches = Vec::new();
    for report in &received {
        if !report.done {
            mismatches.push(format!("process {} never saw Finish", report.process));
        }
        for d in &report.per_node {
            let r = reference.get(&d.node).copied().unwrap_or_default();
            if (d.count, d.hash) != (r.count, r.hash) {
                mismatches.push(format!(
                    "node {} @ p{}: reference {}x{:016x}, received {}x{:016x}",
                    d.node, report.process, r.count, r.hash, d.count, d.hash
                ));
            }
        }
    }
    // The sender-side digests must agree with the reference too — a
    // cheap tripwire for transport-side recipient-mapping bugs.
    for (node, d) in wire.sent_digests() {
        let r = reference.get(node).copied().unwrap_or_default();
        if (d.count, d.hash) != (r.count, r.hash) {
            mismatches.push(format!(
                "node {node} sender-side digest diverged from reference"
            ));
        }
    }

    let outcome = DeploymentOutcome {
        equivalent: mismatches.is_empty(),
        mismatches,
        reference,
        received,
        wire_links,
        overlay_links,
        wire_messages,
        wire_bytes,
        overlay_bytes,
    };
    std::fs::write(run_dir.join("report.txt"), outcome.render(layout))?;
    Ok(outcome)
}

/// Pushes the whole trace through a pipeline and finishes it.
fn drive(mut pipeline: gasf_solar::Pipeline<'_>, trace: &Trace) -> Result<(), WireError> {
    for t in trace.tuples() {
        pipeline.push(t.clone()).map_err(solar_err)?;
    }
    pipeline.finish().map_err(solar_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HostLayout;

    const LAYOUT: &str = r#"
[deployment]
name = "unit"
[workload]
tuples = 120
seed = 7
[[process]]
id = 0
role = "source"
addr = "127.0.0.1:0"
nodes = [0]
[[process]]
id = 1
role = "subscriber"
addr = "127.0.0.1:0"
nodes = [1, 2]
"#;

    /// Subscriber worker on a thread + source run in this thread: the
    /// full deployment handshake, over real localhost sockets.
    #[test]
    fn single_process_pair_reaches_equivalence() {
        let layout = HostLayout::from_toml(LAYOUT).unwrap();
        let run_dir = std::env::temp_dir().join(format!("gasf-wire-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&run_dir);

        let sub_layout = layout.clone();
        let sub_dir = run_dir.clone();
        let sub = std::thread::spawn(move || {
            run_subscriber(&sub_layout, 1, &sub_dir, Duration::from_secs(60))
        });

        let outcome = run_source(&layout, &run_dir, WireConfig::default()).unwrap();
        let report = sub.join().unwrap().unwrap();

        assert!(outcome.equivalent, "{:?}", outcome.mismatches);
        assert!(report.done);
        assert_eq!(report.per_node.len(), 2);
        assert!(report.emissions > 0, "the workload must emit");
        assert!(outcome.wire_bytes > 0);
        assert!(outcome.overlay_bytes > 0, "overlay accounting preserved");
        assert!(run_dir.join("report.txt").exists());
        let _ = std::fs::remove_dir_all(&run_dir);
    }
}
