//! A recording tee over any [`Transport`]: per-node stream digests for
//! the distributed-equivalence contract.
//!
//! `Recorded<T>` delegates every call to the inner transport unchanged
//! and, on the way through, folds each emission's canonical bytes into a
//! [`StreamDigest`] per recipient node — exactly the digest the
//! subscriber workers compute from decoded frames on the far side of a
//! TCP deployment. Wrapping the in-process [`Overlay`](gasf_net::Overlay)
//! therefore produces the *reference* digests a wire run must match:
//! byte-identical streams per node, or the deployment fails its
//! equivalence check.

use crate::codec::{canonical_emission, StreamDigest};
use gasf_core::candidate::FilterId;
use gasf_core::engine::Emission;
use gasf_net::transport::LinkLoad;
use gasf_net::{Delivery, GroupId, NetError, NodeId, Transport};
use std::collections::BTreeMap;

/// A [`Transport`] wrapper recording per-node stream digests.
#[derive(Debug)]
pub struct Recorded<T> {
    inner: T,
    digests: BTreeMap<NodeId, StreamDigest>,
    scratch_canon: Vec<u8>,
    scratch_nodes: Vec<NodeId>,
}

impl<T: Transport> Recorded<T> {
    /// Wraps a transport; digests start empty.
    pub fn new(inner: T) -> Self {
        Recorded {
            inner,
            digests: BTreeMap::new(),
            scratch_canon: Vec::new(),
            scratch_nodes: Vec::new(),
        }
    }

    /// The digests recorded so far, keyed by recipient node.
    pub fn digests(&self) -> &BTreeMap<NodeId, StreamDigest> {
        &self.digests
    }

    /// Unwraps, returning the inner transport and the digests.
    pub fn into_parts(self) -> (T, BTreeMap<NodeId, StreamDigest>) {
        (self.inner, self.digests)
    }

    /// Borrows the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for Recorded<T> {
    fn send_emission(
        &mut self,
        group: GroupId,
        src: NodeId,
        emission: &Emission,
        node_of: &mut dyn FnMut(FilterId) -> NodeId,
    ) -> Result<Delivery, NetError> {
        // Record first with the same map-sort-dedup the transports use,
        // so the digest reflects what *will* be sent; if the inner send
        // then fails the whole pipeline aborts and digests are moot.
        self.scratch_nodes.clear();
        self.scratch_nodes
            .extend(emission.recipients.iter().map(&mut *node_of));
        self.scratch_nodes.sort_unstable();
        self.scratch_nodes.dedup();
        canonical_emission(&mut self.scratch_canon, group, src, emission);
        for &node in &self.scratch_nodes {
            self.digests
                .entry(node)
                .or_default()
                .update(&self.scratch_canon);
        }
        self.inner.send_emission(group, src, emission, node_of)
    }

    fn flush(&mut self) -> Result<(), NetError> {
        self.inner.flush()
    }

    fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    fn messages(&self) -> u64 {
        self.inner.messages()
    }

    fn link_loads(&self) -> Vec<LinkLoad> {
        self.inner.link_loads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_core::bitset::FilterSet;
    use gasf_core::schema::Schema;
    use gasf_core::time::Micros;
    use gasf_core::tuple::Tuple;
    use gasf_net::{Overlay, Topology};
    use std::sync::Arc;

    #[test]
    fn recording_does_not_change_the_inner_transport() {
        let topo = Topology::ring(4).build();
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();

        let schema = Schema::new(["a"]);
        let mk = |seq: u64| {
            let tuple = Tuple::new(&schema, seq, Micros(seq), vec![seq as f64]).unwrap();
            Emission {
                tuple: Arc::new(tuple),
                recipients: [0usize, 1]
                    .into_iter()
                    .map(FilterId::from_index)
                    .collect::<FilterSet>(),
                emitted_at: Micros(seq),
            }
        };

        let mut plain = Overlay::new(topo.clone());
        let g = plain.create_group("g", &members).unwrap();
        let mut plain_deliveries = Vec::new();
        for seq in 0..5 {
            plain_deliveries.push(
                plain
                    .multicast_emission(g, NodeId(0), &mk(seq), |f| NodeId(f.index() as u32 + 1))
                    .unwrap(),
            );
        }

        let mut inner = Overlay::new(topo);
        let g2 = inner.create_group("g", &members).unwrap();
        let mut recorded = Recorded::new(inner);
        for seq in 0..5 {
            let d = recorded
                .send_emission(g2, NodeId(0), &mk(seq), &mut |f| {
                    NodeId(f.index() as u32 + 1)
                })
                .unwrap();
            assert_eq!(d, plain_deliveries[seq as usize]);
        }
        assert_eq!(recorded.total_bytes(), plain.total_bytes());
        let digests = recorded.digests();
        assert_eq!(digests.len(), 2, "nodes 1 and 2 each have a digest");
        assert!(digests.values().all(|d| d.count == 5));
        // Different nodes observed the same stream here, so their
        // digests agree — the digest is a function of the bytes alone.
        let hashes: Vec<u64> = digests.values().map(|d| d.hash).collect();
        assert_eq!(hashes[0], hashes[1]);
    }
}
