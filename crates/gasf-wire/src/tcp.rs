//! The length-prefixed TCP transport: per-peer connection multiplexing
//! over a host layout.
//!
//! One [`TcpTransport`] lives in the source process and implements
//! [`Transport`] over real sockets. It keeps **one connection per peer
//! process** (not per overlay node): every node a peer hosts shares that
//! connection, and each emission crosses each process link **at most
//! once** — the frame carries the recipient-node list, so the tuple-level
//! multicast property of Fig. 1.2 is preserved at process granularity.
//!
//! ## Flush and backpressure
//!
//! Frames are staged in a per-peer userspace buffer and written out when
//! the buffer crosses [`WireConfig::flush_threshold`] or on
//! [`Transport::flush`]. The write is blocking: once the peer's kernel
//! socket buffer is full, `send_emission` blocks until the receiver
//! drains — that *is* the backpressure, propagated straight up the
//! pipeline to the engine's release path. Hard I/O failures surface as
//! [`NetError::Transport`].

use crate::codec::{canonical_emission, StreamDigest, WireError};
use crate::frame::{encode_emission_frame, read_frame, Frame, SubscriberReport, DEFAULT_MAX_FRAME};
use crate::layout::HostLayout;
use gasf_core::candidate::FilterId;
use gasf_core::engine::Emission;
use gasf_core::time::Micros;
use gasf_net::transport::LinkLoad;
use gasf_net::{Delivery, GroupId, NetError, NodeId, Transport};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Tuning knobs for [`TcpTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Reject frames larger than this on both sides.
    pub max_frame: usize,
    /// Write the peer buffer out once it holds this many bytes.
    pub flush_threshold: usize,
    /// How long to keep retrying the initial connect per peer.
    pub connect_timeout: Duration,
    /// Read timeout for request/response control exchanges.
    pub reply_timeout: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_frame: DEFAULT_MAX_FRAME,
            flush_threshold: 32 * 1024,
            connect_timeout: Duration::from_secs(30),
            reply_timeout: Duration::from_secs(30),
        }
    }
}

#[derive(Debug)]
struct Peer {
    process: u32,
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Staged frames not yet written to the socket.
    buffer: Vec<u8>,
    /// Bytes put on this connection (flushed + staged).
    bytes: u64,
}

impl Peer {
    fn flush(&mut self) -> Result<(), WireError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let stream = self
            .stream
            .as_mut()
            .expect("peer with staged bytes is connected");
        stream.write_all(&self.buffer)?;
        self.buffer.clear();
        Ok(())
    }
}

/// A [`Transport`] that frames emissions onto per-peer TCP connections
/// according to a [`HostLayout`].
///
/// Construct with [`TcpTransport::connect`] in the source process after
/// the subscriber processes are listening, hand it to
/// [`Middleware::pipeline_over`](gasf_solar::Middleware::pipeline_over),
/// and the engine's emissions stream over the wire instead of the
/// in-process overlay.
#[derive(Debug)]
pub struct TcpTransport {
    deployment: String,
    local_process: u32,
    peers: Vec<Peer>,
    /// `NodeId` index → index into `peers` (or `usize::MAX` for nodes
    /// hosted locally, e.g. the source's own node).
    node_peer: Vec<usize>,
    config: WireConfig,
    messages: u64,
    /// Scratch: deduplicated recipient nodes of the current send.
    scratch_nodes: Vec<NodeId>,
    /// Scratch: frame bytes of the current send.
    scratch_frame: Vec<u8>,
    /// Scratch: the per-peer slice of the recipient list.
    scratch_frame_nodes: Vec<NodeId>,
    /// Scratch: canonical emission bytes (digest recording).
    scratch_canon: Vec<u8>,
    /// Per-node digests of everything sent, for delivery reports.
    digests: BTreeMap<NodeId, StreamDigest>,
}

impl TcpTransport {
    /// Connects to every peer process in the layout (everyone but
    /// `local_process`), retrying each until [`WireConfig::connect_timeout`]
    /// so the source can start before its subscribers finish binding.
    /// `resolve` maps a process id to its actual socket address (the run
    /// directory's port files, when the layout uses ephemeral ports).
    ///
    /// # Errors
    /// [`WireError::Io`] when a peer stays unreachable past the timeout.
    pub fn connect(
        layout: &HostLayout,
        local_process: u32,
        config: WireConfig,
        mut resolve: impl FnMut(u32) -> Result<SocketAddr, WireError>,
    ) -> Result<TcpTransport, WireError> {
        let mut peers = Vec::new();
        for p in &layout.processes {
            if p.id == local_process {
                continue;
            }
            peers.push(Peer {
                process: p.id,
                addr: resolve(p.id)?,
                stream: None,
                buffer: Vec::new(),
                bytes: 0,
            });
        }
        let total = layout.total_nodes();
        let mut node_peer = vec![usize::MAX; total];
        for (i, peer) in peers.iter().enumerate() {
            let spec = layout
                .process(peer.process)
                .expect("peer ids come from the layout");
            for n in &spec.nodes {
                node_peer[n.index()] = i;
            }
        }
        let mut transport = TcpTransport {
            deployment: layout.name.clone(),
            local_process,
            peers,
            node_peer,
            config,
            messages: 0,
            scratch_nodes: Vec::new(),
            scratch_frame: Vec::new(),
            scratch_frame_nodes: Vec::new(),
            scratch_canon: Vec::new(),
            digests: BTreeMap::new(),
        };
        for i in 0..transport.peers.len() {
            transport.connect_peer(i)?;
        }
        Ok(transport)
    }

    fn connect_peer(&mut self, i: usize) -> Result<(), WireError> {
        let deadline = Instant::now() + self.config.connect_timeout;
        let peer = &mut self.peers[i];
        loop {
            match TcpStream::connect(peer.addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    peer.stream = Some(stream);
                    break;
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    return Err(WireError::Io(format!(
                        "connect to process {} at {}: {e}",
                        peer.process, peer.addr
                    )))
                }
            }
        }
        let hello = Frame::Hello {
            process: self.local_process,
            deployment: self.deployment.clone(),
        };
        self.stage_control(i, &hello)?;
        Ok(())
    }

    /// Stages a control frame on peer `i`'s buffer (flushed with data).
    fn stage_control(&mut self, i: usize, frame: &Frame) -> Result<(), WireError> {
        let peer = &mut self.peers[i];
        let before = peer.buffer.len();
        frame.encode_into(&mut peer.buffer);
        peer.bytes += (peer.buffer.len() - before) as u64;
        if peer.buffer.len() >= self.config.flush_threshold {
            peer.flush()?;
        }
        Ok(())
    }

    /// Sends a control frame to every peer and flushes.
    ///
    /// # Errors
    /// [`WireError::Io`] on write failure.
    pub fn broadcast_control(&mut self, frame: &Frame) -> Result<(), WireError> {
        for i in 0..self.peers.len() {
            self.stage_control(i, frame)?;
            self.peers[i].flush()?;
        }
        Ok(())
    }

    /// Sends [`Frame::StatusRequest`] to the peer with process id
    /// `process` and blocks for its [`SubscriberReport`] (bounded by
    /// [`WireConfig::reply_timeout`]).
    ///
    /// # Errors
    /// [`WireError::Io`] on write/read failure or timeout, codec errors
    /// on a malformed reply.
    pub fn query_status(&mut self, process: u32) -> Result<SubscriberReport, WireError> {
        let i = self
            .peers
            .iter()
            .position(|p| p.process == process)
            .ok_or_else(|| WireError::Io(format!("no peer with process id {process}")))?;
        self.stage_control(i, &Frame::StatusRequest)?;
        let peer = &mut self.peers[i];
        peer.flush()?;
        let stream = peer.stream.as_mut().expect("flushed peer is connected");
        stream.set_read_timeout(Some(self.config.reply_timeout))?;
        let frame = read_frame(stream, self.config.max_frame)?
            .ok_or_else(|| WireError::Io(format!("process {process} hung up mid-query")))?;
        match frame {
            Frame::StatusReport(report) => Ok(report),
            other => Err(WireError::Io(format!(
                "process {process} answered StatusRequest with {other:?}"
            ))),
        }
    }

    /// Per-node digests of every emission this transport sent — the
    /// sender-side half of the delivery report (receiver-side digests
    /// come back in [`SubscriberReport`]s).
    pub fn sent_digests(&self) -> &BTreeMap<NodeId, StreamDigest> {
        &self.digests
    }

    /// The deployment name this transport was built for.
    pub fn deployment(&self) -> &str {
        &self.deployment
    }
}

impl Transport for TcpTransport {
    fn send_emission(
        &mut self,
        group: GroupId,
        src: NodeId,
        emission: &Emission,
        node_of: &mut dyn FnMut(FilterId) -> NodeId,
    ) -> Result<Delivery, NetError> {
        // Resolve recipients exactly like the overlay: map, sort, dedup,
        // reusing the scratch buffer (no allocation at steady state).
        let mut nodes = std::mem::take(&mut self.scratch_nodes);
        nodes.clear();
        nodes.extend(emission.recipients.iter().map(&mut *node_of));
        nodes.sort_unstable();
        nodes.dedup();

        canonical_emission(&mut self.scratch_canon, group, src, emission);
        for &node in &nodes {
            self.digests
                .entry(node)
                .or_default()
                .update(&self.scratch_canon);
        }

        let mut latencies = BTreeMap::new();
        let mut bytes_on_wire = 0u64;
        let mut hops = 0usize;
        // Group the recipient list by hosting peer: one frame per peer
        // connection, carrying that peer's slice of the node list. The
        // per-peer slice is contiguous after the sort only if the layout
        // assigns contiguous node ranges, so filter per peer instead —
        // recipient lists are short and this stays allocation-free.
        let mut frame_nodes = std::mem::take(&mut self.scratch_frame_nodes);
        let mut err: Option<WireError> = None;
        for pi in 0..self.peers.len() {
            frame_nodes.clear();
            frame_nodes.extend(
                nodes
                    .iter()
                    .copied()
                    .filter(|n| self.node_peer.get(n.index()).copied() == Some(pi)),
            );
            if frame_nodes.is_empty() {
                continue;
            }
            self.scratch_frame.clear();
            encode_emission_frame(&mut self.scratch_frame, group, src, &frame_nodes, emission);
            let peer = &mut self.peers[pi];
            peer.buffer.extend_from_slice(&self.scratch_frame);
            peer.bytes += self.scratch_frame.len() as u64;
            bytes_on_wire += self.scratch_frame.len() as u64;
            hops += 1;
            if peer.buffer.len() >= self.config.flush_threshold {
                if let Err(e) = peer.flush() {
                    err = Some(e);
                    break;
                }
            }
        }
        frame_nodes.clear();
        self.scratch_frame_nodes = frame_nodes;
        // Latency over a real wire is measured at the receiver; the
        // sender reports zero per recipient (the analytic model belongs
        // to the simulated overlay).
        for &node in &nodes {
            latencies.insert(node, Micros::ZERO);
        }
        nodes.clear();
        self.scratch_nodes = nodes;
        if let Some(e) = err {
            return Err(NetError::Transport(e.to_string()));
        }
        self.messages += 1;
        Ok(Delivery {
            latencies,
            bytes_on_wire,
            overlay_hops: hops,
            repair_bytes: 0,
        })
    }

    fn flush(&mut self) -> Result<(), NetError> {
        for peer in &mut self.peers {
            peer.flush()
                .map_err(|e| NetError::Transport(e.to_string()))?;
        }
        Ok(())
    }

    fn total_bytes(&self) -> u64 {
        self.peers.iter().map(|p| p.bytes).sum()
    }

    fn messages(&self) -> u64 {
        self.messages
    }

    fn link_loads(&self) -> Vec<LinkLoad> {
        let mut loads: Vec<LinkLoad> = self
            .peers
            .iter()
            .map(|p| LinkLoad {
                link: format!("p{}->p{}", self.local_process, p.process),
                bytes: p.bytes,
            })
            .collect();
        loads.sort_by(|a, b| a.link.cmp(&b.link));
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::HostLayout;
    use gasf_core::bitset::FilterSet;
    use gasf_core::schema::Schema;
    use gasf_core::tuple::Tuple;
    use std::net::TcpListener;
    use std::sync::Arc;

    const LAYOUT: &str = r#"
[deployment]
name = "t"
[[process]]
id = 0
role = "source"
addr = "127.0.0.1:0"
nodes = [0]
[[process]]
id = 1
role = "subscriber"
addr = "127.0.0.1:0"
nodes = [1, 2]
"#;

    fn emission(recipients: &[usize], seq: u64) -> Emission {
        let schema = Schema::new(["a"]);
        let tuple = Tuple::new(&schema, seq, Micros(seq * 10), vec![seq as f64]).unwrap();
        let set: FilterSet = recipients
            .iter()
            .map(|&i| FilterId::from_index(i))
            .collect();
        Emission {
            tuple: Arc::new(tuple),
            recipients: set,
            emitted_at: Micros(seq * 10),
        }
    }

    /// One frame per peer, nodes deduplicated, flush pushes the bytes.
    #[test]
    fn frames_multiplex_per_peer_connection() {
        let layout = HostLayout::from_toml(LAYOUT).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut frames = Vec::new();
            while let Some(f) = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap() {
                frames.push(f);
            }
            frames
        });

        let mut t = TcpTransport::connect(&layout, 0, WireConfig::default(), |_| Ok(addr)).unwrap();
        // Filters 0 and 1 both live on node 1; node 2 hosts filter 2.
        let e = emission(&[0, 1, 2], 7);
        let d = t
            .send_emission(GroupId::from_raw(9), NodeId(0), &e, &mut |f| {
                NodeId(if f.index() < 2 { 1 } else { 2 })
            })
            .unwrap();
        assert_eq!(d.overlay_hops, 1, "both nodes share one peer frame");
        assert!(d.bytes_on_wire > 0);
        Transport::flush(&mut t).unwrap();
        assert_eq!(Transport::messages(&t), 1);
        assert_eq!(Transport::total_bytes(&t), {
            let loads = Transport::link_loads(&t);
            loads.iter().map(|l| l.bytes).sum::<u64>()
        });
        drop(t);

        let frames = server.join().unwrap();
        assert!(matches!(&frames[0], Frame::Hello { process: 0, .. }));
        match &frames[1] {
            Frame::Emission {
                group, src, nodes, ..
            } => {
                assert_eq!(group.raw(), 9);
                assert_eq!(*src, NodeId(0));
                assert_eq!(nodes, &vec![NodeId(1), NodeId(2)]);
            }
            other => panic!("expected emission frame, got {other:?}"),
        }
    }

    #[test]
    fn connect_timeout_fails_loudly() {
        let layout = HostLayout::from_toml(LAYOUT).unwrap();
        let config = WireConfig {
            connect_timeout: Duration::from_millis(50),
            ..WireConfig::default()
        };
        // A port that nothing listens on: bind + drop reserves then
        // releases it.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = TcpTransport::connect(&layout, 0, config, |_| Ok(addr)).unwrap_err();
        assert!(matches!(err, WireError::Io(_)));
    }
}
