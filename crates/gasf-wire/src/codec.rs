//! Framed binary codec for emissions and control messages.
//!
//! The serde shim in this workspace provides marker traits only (no wire
//! format), so the codec is hand-rolled on top of it: every wire type
//! implements [`WireEncode`]/[`WireDecode`] against a flat little-endian
//! layout. Frames are length-prefixed with a versioned header (see
//! [`frame`](crate::frame)); this module owns the *body* encoding.
//!
//! Layout rules (all integers little-endian):
//!
//! * `u8/u16/u32/u64` — raw LE bytes;
//! * `f64` — the IEEE-754 bit pattern via `to_bits`, so NaN payloads and
//!   signed zeros survive the round trip bit-for-bit;
//! * `String`/`str` — `u32` byte length + UTF-8 bytes;
//! * sequences — `u32` element count + elements;
//! * [`FilterSet`] — `u32` block count + the packed `u64` blocks
//!   straight out of [`FilterSet::blocks`], no per-id materialisation
//!   (decode re-trims, so equality is preserved);
//! * [`Tuple`] — `seq: u64`, `timestamp: u64`, values as a sequence;
//! * [`Emission`] — tuple + recipients + `emitted_at`;
//! * [`Delivery`] — latencies as a `(NodeId, u64)` sequence + the three
//!   byte/hop counters.
//!
//! Encoding appends to a caller-owned `Vec<u8>` (reused across sends on
//! the hot path, so steady-state encoding does not allocate); decoding
//! reads from a [`Reader`] cursor and fails loudly on truncation or
//! trailing bytes.

use gasf_core::bitset::FilterSet;
use gasf_core::engine::Emission;
use gasf_core::time::Micros;
use gasf_core::tuple::Tuple;
use gasf_net::{Delivery, GroupId, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced while encoding, decoding or framing wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// The frame header's magic bytes are wrong — not a GASF frame.
    BadMagic(u16),
    /// The frame's codec version is not supported by this build.
    BadVersion(u8),
    /// The frame tag does not name a known message kind.
    BadTag(u8),
    /// A declared length exceeds the configured maximum frame size.
    Oversize {
        /// Declared length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A frame body decoded fully but left unread bytes behind.
    TrailingBytes(usize),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An underlying socket/file operation failed.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            WireError::Oversize { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame body"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Borrowing cursor over a frame body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Asserts the body was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Appends little-endian primitives to a byte buffer.
pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A type with a canonical byte-level wire encoding.
pub trait WireEncode {
    /// Appends the encoding to `buf` (no length prefix, no header).
    fn encode(&self, buf: &mut Vec<u8>);
}

/// The decode side of [`WireEncode`].
pub trait WireDecode: Sized {
    /// Reads one value off the cursor.
    ///
    /// # Errors
    /// [`WireError::Truncated`] and friends when the bytes do not form a
    /// valid value.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl WireEncode for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.0);
    }
}

impl WireDecode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.u32()?))
    }
}

impl WireEncode for GroupId {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.raw());
    }
}

impl WireDecode for GroupId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GroupId::from_raw(r.u64()?))
    }
}

impl WireEncode for Micros {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.0);
    }
}

impl WireDecode for Micros {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Micros(r.u64()?))
    }
}

impl WireEncode for FilterSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        let blocks = self.blocks();
        put_u32(buf, blocks.len() as u32);
        for &b in blocks {
            put_u64(buf, b);
        }
    }
}

impl WireDecode for FilterSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        let mut blocks = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            blocks.push(r.u64()?);
        }
        Ok(FilterSet::from_blocks(blocks))
    }
}

impl WireEncode for Tuple {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.seq());
        put_u64(buf, self.timestamp().0);
        let values = self.values();
        put_u32(buf, values.len() as u32);
        for &v in values {
            put_u64(buf, v.to_bits());
        }
    }
}

impl WireDecode for Tuple {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seq = r.u64()?;
        let ts = Micros(r.u64()?);
        let n = r.u32()? as usize;
        let mut values = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            values.push(r.f64()?);
        }
        Ok(Tuple::from_wire(seq, ts, values))
    }
}

impl WireEncode for Emission {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.tuple.encode(buf);
        self.recipients.encode(buf);
        self.emitted_at.encode(buf);
    }
}

impl WireDecode for Emission {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Emission {
            tuple: Arc::new(Tuple::decode(r)?),
            recipients: FilterSet::decode(r)?,
            emitted_at: Micros::decode(r)?,
        })
    }
}

impl WireEncode for Delivery {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.latencies.len() as u32);
        for (&node, &lat) in &self.latencies {
            node.encode(buf);
            lat.encode(buf);
        }
        put_u64(buf, self.bytes_on_wire);
        put_u64(buf, self.overlay_hops as u64);
        put_u64(buf, self.repair_bytes);
    }
}

impl WireDecode for Delivery {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        let mut latencies = BTreeMap::new();
        for _ in 0..n {
            let node = NodeId::decode(r)?;
            let lat = Micros::decode(r)?;
            latencies.insert(node, lat);
        }
        Ok(Delivery {
            latencies,
            bytes_on_wire: r.u64()?,
            overlay_hops: r.u64()? as usize,
            repair_bytes: r.u64()?,
        })
    }
}

impl WireEncode for Vec<NodeId> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.len() as u32);
        for n in self {
            n.encode(buf);
        }
    }
}

impl WireDecode for Vec<NodeId> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            nodes.push(NodeId::decode(r)?);
        }
        Ok(nodes)
    }
}

/// Chained FNV-1a 64 digest of a per-node emission stream.
///
/// Each recipient node folds the canonical bytes of every emission it
/// observes (in order) into a running 64-bit hash; two nodes saw
/// byte-identical streams iff their `(count, hash)` pairs match. This is
/// the currency of the distributed-equivalence contract: the in-process
/// reference records digests through [`Recorded`](crate::Recorded), the
/// subscriber workers compute them from decoded frames, and `gasfctl`
/// compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamDigest {
    /// Emissions folded in so far.
    pub count: u64,
    /// Chained FNV-1a 64 over the canonical encodings.
    pub hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StreamDigest {
    /// Folds one emission's canonical bytes into the digest.
    pub fn update(&mut self, canon: &[u8]) {
        let mut h = if self.count == 0 {
            FNV_OFFSET
        } else {
            self.hash
        };
        // Chain by hashing the previous state's bytes first, so
        // concatenation ambiguity between consecutive emissions cannot
        // produce colliding streams.
        for b in h.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for &b in canon {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
        self.count += 1;
    }
}

/// Encodes the canonical per-node bytes of one emission send —
/// `(group, src, emission)` — into `buf` (clearing it first). Both the
/// recording reference and the receiving workers hash exactly these
/// bytes, so the comparison is over the codec's own canonical form.
pub fn canonical_emission(buf: &mut Vec<u8>, group: GroupId, src: NodeId, emission: &Emission) {
    buf.clear();
    group.encode(buf);
    src.encode(buf);
    emission.encode(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gasf_core::candidate::FilterId;
    use gasf_core::schema::Schema;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        NodeId(7).encode(&mut buf);
        GroupId::from_raw(0xdead_beef).encode(&mut buf);
        Micros(123_456).encode(&mut buf);
        put_str(&mut buf, "hello");
        let mut r = Reader::new(&buf);
        assert_eq!(NodeId::decode(&mut r).unwrap(), NodeId(7));
        assert_eq!(GroupId::decode(&mut r).unwrap().raw(), 0xdead_beef);
        assert_eq!(Micros::decode(&mut r).unwrap(), Micros(123_456));
        assert_eq!(r.string().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_loud() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut r = Reader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn emission_round_trips_with_nan_values() {
        let schema = Schema::new(["a", "b", "c"]);
        let tuple = Tuple::new(&schema, 9, Micros(77), vec![1.5, f64::NAN, -0.0]).unwrap();
        let recipients: FilterSet = [0usize, 2, 70]
            .into_iter()
            .map(FilterId::from_index)
            .collect();
        let e = Emission {
            tuple: Arc::new(tuple),
            recipients,
            emitted_at: Micros(80),
        };
        let mut buf = Vec::new();
        e.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back = Emission::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.recipients, e.recipients);
        assert_eq!(back.emitted_at, e.emitted_at);
        assert_eq!(back.tuple.seq(), 9);
        // Bit-for-bit: NaN and -0.0 must survive.
        let orig: Vec<u64> = e.tuple.values().iter().map(|v| v.to_bits()).collect();
        let got: Vec<u64> = back.tuple.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(orig, got);
    }

    #[test]
    fn digest_distinguishes_stream_boundaries() {
        let mut a = StreamDigest::default();
        a.update(b"xy");
        a.update(b"z");
        let mut b = StreamDigest::default();
        b.update(b"x");
        b.update(b"yz");
        assert_ne!(a.hash, b.hash, "chaining must break concat ambiguity");
        assert_eq!(a.count, b.count);
    }
}
