//! Region-based segmentation of the candidate-set stream.
//!
//! A **region** is a maximal family of candidate sets connected through
//! intersecting time covers (Definitions 2–4). Regions never intersect
//! (Axiom 2), and solving the hitting set per region preserves both the
//! optimum (Theorem 2) and the greedy approximation ratio (Theorem 3) —
//! which is what makes group-aware filtering possible on unbounded streams.
//!
//! ## Representation
//!
//! Regions hold their member sets' candidates as interned
//! [`TupleId`]s only; no tuple payloads are cloned into (or moved through)
//! the segmentation and selection path. The ids a region references are
//! stable for the region's whole lifetime: the engine's tuple pool keeps
//! every referenced payload alive until [`RegionTracker`] hands the
//! completed region back and region cleanup releases its ids — which is
//! also the moment the ids leave every other engine structure (utilities,
//! pending outputs). Id order is arrival order, so the solvers' freshness
//! tie-breaks need no timestamps beyond the candidates' denormalised ones.

use crate::candidate::{ClosedSet, TimeCover};
use crate::time::Micros;
use crate::tuple::TupleId;

/// A family of connected candidate sets awaiting (or ready for) a group
/// decision.
#[derive(Debug, Clone)]
pub struct Region {
    sets: Vec<ClosedSet>,
    cover: TimeCover,
}

impl Region {
    fn from_set(set: ClosedSet) -> Self {
        let cover = set.cover();
        Region {
            sets: vec![set],
            cover,
        }
    }

    /// Candidate sets of the region, in merge order (not meaningful —
    /// every consumer is order-independent; see
    /// [`RegionTracker::add`]).
    pub fn sets(&self) -> &[ClosedSet] {
        &self.sets
    }

    /// Consumes the region, yielding its sets.
    pub fn into_sets(self) -> Vec<ClosedSet> {
        self.sets
    }

    /// The union of the member sets' time covers (Definition 5).
    pub fn cover(&self) -> TimeCover {
        self.cover
    }

    /// Total number of candidate tuples across the member sets (with
    /// multiplicity) — the paper's "region size" for run-time prediction.
    pub fn size(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// The *distinct* tuple ids referenced by the region, ascending.
    pub fn distinct_ids(&self) -> Vec<TupleId> {
        crate::hitting_set::collect_distinct_ids(&self.sets)
    }

    /// Number of *distinct* tuples in the region.
    pub fn distinct_tuples(&self) -> usize {
        self.distinct_ids().len()
    }

    /// Whether any member set was closed by a timely cut.
    pub fn was_cut(&self) -> bool {
        self.sets
            .iter()
            .any(|s| s.cause == crate::candidate::CloseCause::Cut)
    }

    fn absorb(&mut self, mut other: Region) {
        self.cover = self.cover.union(&other.cover);
        self.sets.append(&mut other.sets);
    }
}

/// Accumulates closed candidate sets into regions and releases regions once
/// they can no longer grow.
///
/// A pending region is *ready* when every candidate set that could connect
/// to it is already in it: all member sets are closed by construction, so
/// the only threats are (a) a filter's currently open set whose cover
/// intersects the region's, and (b) future sets — which is impossible once
/// the stream clock has passed the region's cover, because candidates are
/// admitted in arrival order.
#[derive(Debug, Default)]
pub struct RegionTracker {
    pending: Vec<Region>,
}

impl RegionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        RegionTracker::default()
    }

    /// Adds a freshly closed candidate set, merging any pending regions it
    /// connects (directly or transitively — Definition 3).
    pub fn add(&mut self, set: ClosedSet) {
        let mut merged = Region::from_set(set);
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].cover.intersects(&merged.cover) {
                let mut other = self.pending.swap_remove(i);
                // Absorb the smaller side into the larger: a long-lived
                // region accumulates thousands of sets, and moving it
                // into each new single-set region would make the steady
                // stream of merges quadratic in region size. Set order
                // inside a region is not meaningful — the solver's
                // tie-breaks are (usefulness, ts, id), never set index.
                if other.sets.len() > merged.sets.len() {
                    std::mem::swap(&mut other, &mut merged);
                }
                merged.absorb(other);
                // restart: the enlarged cover may now reach more regions
                i = 0;
            } else {
                i += 1;
            }
        }
        self.pending.push(merged);
    }

    /// Removes and returns the regions that are ready, given the time
    /// covers of all currently open candidate sets and the current stream
    /// time. Ready regions are returned oldest-first.
    pub fn drain_ready(&mut self, open_covers: &[TimeCover], now: Micros) -> Vec<Region> {
        let mut ready = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            let region = &self.pending[i];
            let blocked =
                open_covers.iter().any(|oc| oc.intersects(&region.cover)) || now < region.cover.max;
            if blocked {
                i += 1;
            } else {
                ready.push(self.pending.swap_remove(i));
            }
        }
        ready.sort_by_key(|r| r.cover().min);
        ready
    }

    /// Drains every pending region unconditionally (end of stream).
    pub fn drain_all(&mut self) -> Vec<Region> {
        let mut all = std::mem::take(&mut self.pending);
        all.sort_by_key(|r| r.cover().min);
        all
    }

    /// Whether any pending region has passed its time bound (`now >=
    /// cover.max`). A region still inside its cover can never be ready
    /// regardless of open sets, so a `false` here guarantees
    /// [`drain_ready`](Self::drain_ready) would drain nothing — the batch
    /// ingest path uses this to skip building the open-cover list on the
    /// (common) rows where no region can complete.
    pub fn any_time_ready(&self, now: Micros) -> bool {
        self.pending.iter().any(|r| now >= r.cover.max)
    }

    /// Earliest timestamp across pending regions (used for cut accounting).
    pub fn earliest_pending(&self) -> Option<Micros> {
        self.pending.iter().map(|r| r.cover.min).min()
    }

    /// Number of regions currently pending.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total candidate tuples (with multiplicity) across pending regions —
    /// the input-size estimate for the greedy run-time predictor.
    pub fn pending_candidates(&self) -> usize {
        self.pending.iter().map(|r| r.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{CandidateTuple, CloseCause, FilterId};
    use crate::quality::Prescription;

    fn set(filter: usize, ms: &[u64]) -> ClosedSet {
        ClosedSet {
            filter: FilterId::from_index(filter),
            set_index: 0,
            candidates: ms
                .iter()
                .map(|&m| CandidateTuple {
                    id: crate::tuple::TupleId::from_seq(m / 10),
                    timestamp: Micros::from_millis(m),
                    key: 0.0,
                })
                .collect(),
            pick_degree: 1,
            prescription: Prescription::Any,
            si_choice: vec![],
            cause: CloseCause::Natural,
        }
    }

    #[test]
    fn disjoint_sets_make_disjoint_regions() {
        let mut t = RegionTracker::new();
        t.add(set(0, &[0, 10]));
        t.add(set(1, &[30, 40]));
        assert_eq!(t.pending_len(), 2);
        let ready = t.drain_ready(&[], Micros::from_millis(100));
        assert_eq!(ready.len(), 2);
        assert!(ready[0].cover().min <= ready[1].cover().min);
    }

    #[test]
    fn intersecting_sets_merge() {
        let mut t = RegionTracker::new();
        t.add(set(0, &[0, 20]));
        t.add(set(1, &[20, 40]));
        assert_eq!(t.pending_len(), 1);
        let r = &t.drain_all()[0];
        assert_eq!(r.sets().len(), 2);
        assert_eq!(r.cover().min, Micros::ZERO);
        assert_eq!(r.cover().max, Micros::from_millis(40));
    }

    #[test]
    fn transitive_connection_merges_through_bridge() {
        let mut t = RegionTracker::new();
        t.add(set(0, &[0, 10]));
        t.add(set(1, &[40, 50]));
        assert_eq!(t.pending_len(), 2);
        // bridge connects both
        t.add(set(2, &[10, 40]));
        assert_eq!(t.pending_len(), 1);
        assert_eq!(t.pending[0].sets().len(), 3);
    }

    #[test]
    fn open_cover_blocks_readiness() {
        let mut t = RegionTracker::new();
        t.add(set(0, &[0, 20]));
        let open = TimeCover {
            min: Micros::from_millis(15),
            max: Micros::from_millis(25),
        };
        assert!(t.drain_ready(&[open], Micros::from_millis(30)).is_empty());
        // once the open set has moved past, the region is ready
        let open2 = TimeCover {
            min: Micros::from_millis(21),
            max: Micros::from_millis(25),
        };
        assert_eq!(t.drain_ready(&[open2], Micros::from_millis(30)).len(), 1);
    }

    #[test]
    fn now_before_cover_max_blocks_readiness() {
        let mut t = RegionTracker::new();
        t.add(set(0, &[0, 20]));
        assert!(t.drain_ready(&[], Micros::from_millis(10)).is_empty());
        assert_eq!(t.drain_ready(&[], Micros::from_millis(20)).len(), 1);
    }

    #[test]
    fn region_size_and_distinct() {
        let mut t = RegionTracker::new();
        t.add(set(0, &[0, 10]));
        t.add(set(1, &[10, 20]));
        let r = &t.drain_all()[0];
        assert_eq!(r.size(), 4);
        assert_eq!(r.distinct_tuples(), 3);
        assert!(!r.was_cut());
    }

    #[test]
    fn earliest_pending_tracks_min() {
        let mut t = RegionTracker::new();
        assert!(t.earliest_pending().is_none());
        t.add(set(0, &[50]));
        t.add(set(1, &[10]));
        assert_eq!(t.earliest_pending(), Some(Micros::from_millis(10)));
    }

    #[test]
    fn was_cut_reports_cut_sets() {
        let mut s = set(0, &[0]);
        s.cause = CloseCause::Cut;
        let mut t = RegionTracker::new();
        t.add(s);
        assert!(t.drain_all()[0].was_cut());
    }
}
