//! Group-utility bookkeeping.
//!
//! The *group utility* of a tuple counts how many filters have included it
//! in their (open or not-yet-decided) candidate sets (§2.3.3). The engines
//! increment it on admission, decrement it on dismissal and when a set is
//! decided, and consult it for the greedy choices.

use std::collections::BTreeMap;

/// Utility counters keyed by tuple sequence number.
#[derive(Debug, Default, Clone)]
pub struct GroupUtility {
    counts: BTreeMap<u64, u32>,
}

impl GroupUtility {
    /// Creates an empty utility table.
    pub fn new() -> Self {
        GroupUtility::default()
    }

    /// Increments the utility of `seq` (a filter admitted it).
    pub fn increment(&mut self, seq: u64) {
        *self.counts.entry(seq).or_insert(0) += 1;
    }

    /// Decrements the utility of `seq`, removing the entry at zero.
    ///
    /// Decrementing an absent entry is a no-op: dismissal events may arrive
    /// for tuples whose sets were already cleaned up at region boundaries.
    pub fn decrement(&mut self, seq: u64) {
        if let Some(c) = self.counts.get_mut(&seq) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.counts.remove(&seq);
            }
        }
    }

    /// Current utility of a tuple.
    pub fn get(&self, seq: u64) -> u32 {
        self.counts.get(&seq).copied().unwrap_or(0)
    }

    /// Removes a tuple's entry entirely (region cleanup).
    pub fn remove(&mut self, seq: u64) {
        self.counts.remove(&seq);
    }

    /// Number of tuples with positive utility.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no tuple currently has positive utility.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Among `seqs`, returns the one with maximal utility, breaking ties by
    /// preferring the *latest* sequence number (which, for time-ordered
    /// streams, is the freshest timestamp — the paper's tie-break rule).
    pub fn argmax<I: IntoIterator<Item = u64>>(&self, seqs: I) -> Option<u64> {
        let mut best: Option<(u32, u64)> = None;
        for s in seqs {
            let u = self.get(s);
            let cand = (u, s);
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
            }
        }
        best.map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_decrement_roundtrip() {
        let mut u = GroupUtility::new();
        u.increment(5);
        u.increment(5);
        u.increment(7);
        assert_eq!(u.get(5), 2);
        assert_eq!(u.get(7), 1);
        assert_eq!(u.len(), 2);
        u.decrement(5);
        assert_eq!(u.get(5), 1);
        u.decrement(5);
        assert_eq!(u.get(5), 0);
        assert_eq!(u.len(), 1);
        u.decrement(5); // no-op
        assert_eq!(u.get(5), 0);
    }

    #[test]
    fn remove_clears_entry() {
        let mut u = GroupUtility::new();
        u.increment(1);
        u.remove(1);
        assert!(u.is_empty());
    }

    #[test]
    fn argmax_prefers_utility_then_freshness() {
        let mut u = GroupUtility::new();
        u.increment(1);
        u.increment(1);
        u.increment(2);
        u.increment(3);
        // 1 has utility 2 -> wins
        assert_eq!(u.argmax([1, 2, 3]), Some(1));
        u.increment(3);
        // tie between 1 and 3 -> freshest (3)
        assert_eq!(u.argmax([1, 2, 3]), Some(3));
        assert_eq!(u.argmax(std::iter::empty()), None);
    }
}
