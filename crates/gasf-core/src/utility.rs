//! Group-utility bookkeeping.
//!
//! The *group utility* of a tuple counts how many filters have included it
//! in their (open or not-yet-decided) candidate sets (§2.3.3). The engines
//! increment it on admission, decrement it on dismissal and when a set is
//! decided, and consult it for the greedy choices.
//!
//! Utilities are keyed by [`TupleId`] and stored in the same dense
//! `SeqRing` mechanism as the engine's tuple pool: ids enter in stream
//! order and leave at region boundaries, so `id - base` indexing gives
//! O(1) updates with memory bounded by the live window (the `BTreeMap`
//! this replaces paid a logarithmic probe per event on the hot path).
//! Only positive counts are stored; an entry decremented to zero leaves
//! the ring.

use crate::seq_ring::SeqRing;
use crate::tuple::TupleId;

/// Utility counters keyed by interned tuple id.
#[derive(Debug, Default, Clone)]
pub struct GroupUtility {
    counts: SeqRing<u32>,
}

impl GroupUtility {
    /// Creates an empty utility table.
    pub fn new() -> Self {
        GroupUtility::default()
    }

    /// Increments the utility of `id` (a filter admitted it).
    ///
    /// Incrementing an id whose region already completed (a spent seq) is
    /// a no-op — admissions always target the newest tuple, so this only
    /// guards against stale events.
    pub fn increment(&mut self, id: TupleId) {
        if let Some(c) = self.counts.get_mut(id.seq()) {
            *c += 1;
        } else {
            self.counts.set(id.seq(), 1);
        }
    }

    /// Increments the utility of `id` by `n` in one ring probe — the
    /// columnar path's bulk form of [`increment`](Self::increment), used
    /// when a whole admission mask's popcount lands on one tuple.
    /// `n == 0` and spent seqs are no-ops.
    pub fn increment_by(&mut self, id: TupleId, n: u32) {
        if n == 0 {
            return;
        }
        if let Some(c) = self.counts.get_mut(id.seq()) {
            *c += n;
        } else {
            self.counts.set(id.seq(), n);
        }
    }

    /// Decrements the utility of `id`, removing the entry at zero.
    ///
    /// Decrementing an absent entry is a no-op: dismissal events may arrive
    /// for tuples whose sets were already cleaned up at region boundaries.
    pub fn decrement(&mut self, id: TupleId) {
        if let Some(c) = self.counts.get_mut(id.seq()) {
            *c -= 1;
            if *c == 0 {
                self.counts.take(id.seq());
            }
        }
    }

    /// Current utility of a tuple.
    pub fn get(&self, id: TupleId) -> u32 {
        self.counts.get(id.seq()).copied().unwrap_or(0)
    }

    /// Removes a tuple's entry entirely (region cleanup).
    pub fn remove(&mut self, id: TupleId) {
        self.counts.take(id.seq());
    }

    /// Number of tuples with positive utility.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no tuple currently has positive utility.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Among `ids`, returns the one with maximal utility, breaking ties by
    /// preferring the *latest* id (which, for time-ordered streams, is the
    /// freshest timestamp — the paper's tie-break rule).
    pub fn argmax<I: IntoIterator<Item = TupleId>>(&self, ids: I) -> Option<TupleId> {
        let mut best: Option<(u32, TupleId)> = None;
        for id in ids {
            let cand = (self.get(id), id);
            if best.is_none_or(|b| cand > b) {
                best = Some(cand);
            }
        }
        best.map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> TupleId {
        TupleId::from_seq(seq)
    }

    #[test]
    fn increment_decrement_roundtrip() {
        let mut u = GroupUtility::new();
        u.increment(id(5));
        u.increment(id(5));
        u.increment(id(7));
        assert_eq!(u.get(id(5)), 2);
        assert_eq!(u.get(id(7)), 1);
        assert_eq!(u.len(), 2);
        u.decrement(id(5));
        assert_eq!(u.get(id(5)), 1);
        u.decrement(id(5));
        assert_eq!(u.get(id(5)), 0);
        assert_eq!(u.len(), 1);
        u.decrement(id(5)); // no-op
        assert_eq!(u.get(id(5)), 0);
    }

    #[test]
    fn increment_by_matches_repeated_increments() {
        let mut a = GroupUtility::new();
        let mut b = GroupUtility::new();
        a.increment_by(id(5), 3);
        for _ in 0..3 {
            b.increment(id(5));
        }
        assert_eq!(a.get(id(5)), b.get(id(5)));
        a.increment_by(id(5), 0);
        assert_eq!(a.get(id(5)), 3, "zero bulk increment is a no-op");
        a.increment_by(id(6), 2);
        assert_eq!(a.get(id(6)), 2, "fresh id enters with the bulk count");
        a.remove(id(5));
        a.remove(id(6));
        a.increment_by(id(3), 4);
        assert_eq!(a.get(id(3)), 0, "spent seqs ignore bulk increments");
    }

    #[test]
    fn remove_clears_entry() {
        let mut u = GroupUtility::new();
        u.increment(id(1));
        u.remove(id(1));
        assert!(u.is_empty());
    }

    #[test]
    fn argmax_prefers_utility_then_freshness() {
        let mut u = GroupUtility::new();
        u.increment(id(1));
        u.increment(id(1));
        u.increment(id(2));
        u.increment(id(3));
        // 1 has utility 2 -> wins
        assert_eq!(u.argmax([id(1), id(2), id(3)]), Some(id(1)));
        u.increment(id(3));
        // tie between 1 and 3 -> freshest (3)
        assert_eq!(u.argmax([id(1), id(2), id(3)]), Some(id(3)));
        assert_eq!(u.argmax(std::iter::empty()), None);
    }

    #[test]
    fn ring_advances_with_the_stream() {
        let mut u = GroupUtility::new();
        for seq in 0..100 {
            u.increment(id(seq));
        }
        for seq in 0..90 {
            u.remove(id(seq));
        }
        assert_eq!(u.len(), 10);
        assert_eq!(u.get(id(95)), 1);
        assert_eq!(u.get(id(10)), 0, "released ids read as zero");
        // stale increments (region already completed) are ignored
        u.increment(id(3));
        assert_eq!(u.get(id(3)), 0);
        for seq in 90..100 {
            u.remove(id(seq));
        }
        assert!(u.is_empty());
        // fresh ids past the frontier still work after a full drain
        u.increment(id(200));
        assert_eq!(u.get(id(200)), 1);
    }
}
