//! Candidate sets and the filter↔engine event vocabulary.
//!
//! A **candidate set** (§2.2.3) contains all tuples that are equivalent in
//! quality for one logical output of a filter; choosing any one of them
//! satisfies the filter. The engines drive filters tuple-by-tuple and the
//! filters answer with [`FilterAction`]s describing admissions, dismissals
//! and closures; a closure hands the engine a finished [`ClosedSet`].
//!
//! Candidate sets reference tuples exclusively by interned
//! [`TupleId`] — the payloads stay in the engine's
//! [`TuplePool`](crate::tuple::TuplePool) and are only resolved again at
//! emission time.

use crate::quality::Prescription;
use crate::time::Micros;
use crate::tuple::TupleId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a filter within one group (dense, assigned by the engine
/// builder in insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FilterId(pub(crate) u32);

impl FilterId {
    /// Creates a filter id from a raw index. Exposed for substrates that
    /// label recipients (e.g. multicast groups) outside an engine.
    pub fn from_index(i: usize) -> Self {
        FilterId(i as u32)
    }

    /// Dense index of the filter in the group.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FilterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// The `[min, max]` timestamp interval spanned by a candidate set or region
/// (Definition 1 / Definition 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeCover {
    /// Earliest timestamp in the set.
    pub min: Micros,
    /// Latest timestamp in the set.
    pub max: Micros,
}

impl TimeCover {
    /// Cover of a single point in time.
    pub fn point(ts: Micros) -> Self {
        TimeCover { min: ts, max: ts }
    }

    /// Whether two covers intersect (share at least one instant) —
    /// Definition 2's "connected" test for candidate sets.
    pub fn intersects(&self, other: &TimeCover) -> bool {
        self.min.max(other.min) <= self.max.min(other.max)
    }

    /// Extends the cover to include `ts`.
    pub fn extend(&mut self, ts: Micros) {
        if ts < self.min {
            self.min = ts;
        }
        if ts > self.max {
            self.max = ts;
        }
    }

    /// The union of two covers (smallest cover containing both).
    pub fn union(&self, other: &TimeCover) -> TimeCover {
        TimeCover {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Length of the cover.
    pub fn span(&self) -> Micros {
        self.max.saturating_sub(self.min)
    }
}

/// A tuple recorded inside a candidate set: its interned identity plus the
/// derived value the filter used (needed for top/bottom prescriptions) and
/// the timestamp (needed for time covers and the freshest tie-break)
/// denormalised so the hot path never touches the tuple pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateTuple {
    /// Interned tuple identity.
    pub id: TupleId,
    /// Source timestamp.
    pub timestamp: Micros,
    /// The filter's derived value for this tuple (attribute value, trend,
    /// average, …).
    pub key: f64,
}

/// Why a candidate set closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloseCause {
    /// The filter's own semantics closed the set (a non-admissible tuple
    /// arrived, a window ended, …).
    Natural,
    /// A timely cut forced the closure (Ch. 3).
    Cut,
    /// The stream ended and the engine flushed open state.
    EndOfStream,
}

/// A finished candidate set handed from a filter to the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedSet {
    /// Owning filter.
    pub filter: FilterId,
    /// Per-filter set counter (0, 1, 2, … in stream order).
    pub set_index: u64,
    /// Candidates in arrival order. Never empty.
    pub candidates: Vec<CandidateTuple>,
    /// How many tuples must be chosen from this set (already resolved
    /// against the set size; `1` for plain DC filters).
    pub pick_degree: usize,
    /// Eligibility rule for candidates.
    pub prescription: Prescription,
    /// What a *self-interested* filter would have output for this logical
    /// output (the reference tuple for DC filters; an independent sample
    /// for sampling filters). Used by the SI baseline and for compression-
    /// ratio accounting.
    pub si_choice: Vec<TupleId>,
    /// Why the set closed.
    pub cause: CloseCause,
}

impl ClosedSet {
    /// The set's time cover.
    ///
    /// # Panics
    /// Panics if the set is empty — filters must not emit empty sets.
    pub fn cover(&self) -> TimeCover {
        let first = self.candidates.first().expect("closed set is never empty");
        let last = self.candidates.last().expect("closed set is never empty");
        TimeCover {
            min: first.timestamp,
            max: last.timestamp,
        }
    }

    /// Whether the set contains the tuple with this id.
    pub fn contains(&self, id: TupleId) -> bool {
        self.candidates.iter().any(|c| c.id == id)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the set is empty (never true for engine-visible sets).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Ids of the candidates eligible under the prescription, grouped by
    /// *rank*. For [`Prescription::Any`] there is a single rank containing
    /// everything. For `Top`/`Bottom` there are `pick_degree` ranks ordered
    /// by the derived key; value ties share a rank (§5.3: "at most one
    /// tuple for each of the k ranks").
    pub fn eligible_ranks(&self) -> Vec<Vec<TupleId>> {
        match self.prescription {
            Prescription::Any => vec![self.candidates.iter().map(|c| c.id).collect()],
            Prescription::Top | Prescription::Bottom => {
                let mut sorted: Vec<&CandidateTuple> = self.candidates.iter().collect();
                sorted.sort_by(|a, b| {
                    let ord = a
                        .key
                        .partial_cmp(&b.key)
                        .unwrap_or(std::cmp::Ordering::Equal);
                    match self.prescription {
                        Prescription::Top => ord.reverse(),
                        _ => ord,
                    }
                });
                let mut ranks: Vec<Vec<TupleId>> = Vec::new();
                let mut last_key = f64::NAN;
                for c in sorted {
                    if ranks.len() >= self.pick_degree && c.key != last_key {
                        break;
                    }
                    if c.key == last_key {
                        ranks.last_mut().expect("rank exists").push(c.id);
                    } else {
                        ranks.push(vec![c.id]);
                        last_key = c.key;
                    }
                }
                ranks
            }
        }
    }

    /// All eligible ids (flattened ranks).
    pub fn eligible(&self) -> Vec<TupleId> {
        self.eligible_ranks().into_iter().flatten().collect()
    }
}

/// What a filter did with one input tuple (first-stage events).
///
/// Event ordering the engine relies on: `closed` refers to the *previous*
/// open set (closed by this tuple's arrival or content); `admitted` refers
/// to this tuple joining the *new or still-open* set; `dismissed` lists
/// tuples dropped from the open set when a reference arrived and tentative
/// candidates turned out to be more than `slack` away (§2.3.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterAction {
    /// The tuple was admitted to the filter's open candidate set.
    pub admitted: bool,
    /// The tuple was identified as a *reference* output (what the
    /// self-interested filter would emit). Drives the SI baseline.
    pub reference: bool,
    /// Ids dismissed from the open set by this tuple.
    pub dismissed: Vec<TupleId>,
    /// A candidate set that closed during this step.
    pub closed: Option<ClosedSet>,
}

impl FilterAction {
    /// An action reporting nothing happened.
    pub fn none() -> Self {
        FilterAction::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ct(seq: u64, ms: u64, key: f64) -> CandidateTuple {
        CandidateTuple {
            id: TupleId::from_seq(seq),
            timestamp: Micros::from_millis(ms),
            key,
        }
    }

    fn ids(seqs: &[u64]) -> Vec<TupleId> {
        seqs.iter().copied().map(TupleId::from_seq).collect()
    }

    fn set(cands: Vec<CandidateTuple>, degree: usize, p: Prescription) -> ClosedSet {
        ClosedSet {
            filter: FilterId(0),
            set_index: 0,
            candidates: cands,
            pick_degree: degree,
            prescription: p,
            si_choice: vec![],
            cause: CloseCause::Natural,
        }
    }

    #[test]
    fn cover_intersection() {
        let a = TimeCover {
            min: Micros(0),
            max: Micros(10),
        };
        let b = TimeCover {
            min: Micros(10),
            max: Micros(20),
        };
        let c = TimeCover {
            min: Micros(11),
            max: Micros(12),
        };
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
        assert_eq!(a.union(&c).max, Micros(12));
        assert_eq!(a.union(&c).span(), Micros(12));
    }

    #[test]
    fn cover_extend() {
        let mut c = TimeCover::point(Micros(5));
        c.extend(Micros(2));
        c.extend(Micros(9));
        assert_eq!(c.min, Micros(2));
        assert_eq!(c.max, Micros(9));
    }

    #[test]
    fn closed_set_cover_and_contains() {
        let s = set(
            vec![ct(3, 30, 45.0), ct(4, 40, 50.0), ct(5, 50, 59.0)],
            1,
            Prescription::Any,
        );
        let cover = s.cover();
        assert_eq!(cover.min, Micros::from_millis(30));
        assert_eq!(cover.max, Micros::from_millis(50));
        assert!(s.contains(TupleId::from_seq(4)));
        assert!(!s.contains(TupleId::from_seq(9)));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn eligible_any_is_single_rank() {
        let s = set(vec![ct(0, 0, 1.0), ct(1, 10, 2.0)], 1, Prescription::Any);
        assert_eq!(s.eligible_ranks(), vec![ids(&[0, 1])]);
        assert_eq!(s.eligible(), ids(&[0, 1]));
    }

    #[test]
    fn eligible_top_orders_by_key() {
        let s = set(
            vec![
                ct(0, 0, 1.0),
                ct(1, 10, 5.0),
                ct(2, 20, 3.0),
                ct(3, 30, 5.0),
            ],
            2,
            Prescription::Top,
        );
        // ranks: [5.0 -> {1,3}], [3.0 -> {2}]
        assert_eq!(s.eligible_ranks(), vec![ids(&[1, 3]), ids(&[2])]);
    }

    #[test]
    fn eligible_bottom_orders_ascending() {
        let s = set(
            vec![ct(0, 0, 4.0), ct(1, 10, 1.0), ct(2, 20, 2.0)],
            2,
            Prescription::Bottom,
        );
        assert_eq!(s.eligible_ranks(), vec![ids(&[1]), ids(&[2])]);
    }

    #[test]
    fn filter_id_display_and_index() {
        let f = FilterId::from_index(3);
        assert_eq!(f.index(), 3);
        assert_eq!(f.to_string(), "F3");
    }
}
