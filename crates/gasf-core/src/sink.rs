//! The streaming seam: push-based dataflow without per-push allocation.
//!
//! The paper's architecture (Fig. 4.1) is a push pipeline — source →
//! group-aware engine → output scheduler → tuple-level multicast. This
//! module is that seam as an API: an operator *emits into a sink* instead
//! of materialising a fresh `Vec<Emission>` on every step.
//!
//! * [`EmissionSink`] — anything that consumes released [`Emission`]s by
//!   reference. Implementations decide what "consume" means: collect
//!   ([`VecSink`]), discard ([`NullSink`]), fan out ([`Tee`]), or — in
//!   `gasf-solar` — multicast over the overlay.
//! * [`StreamOperator`] — anything that turns a stream of [`Tuple`]s into
//!   emissions written to a sink. [`GroupEngine`](crate::engine::GroupEngine)
//!   is the canonical implementation.
//!
//! The engine's hot path writes into the sink through a reusable internal
//! scratch buffer, so a steady-state `push_into` performs **no**
//! `Vec<Emission>` allocation; the legacy `push → Vec<Emission>` methods
//! remain as thin [`VecSink`]-backed compatibility wrappers.
//!
//! # Writing a custom sink
//!
//! A sink only has to implement [`accept`](EmissionSink::accept); the
//! batch and flush hooks have sensible defaults. A counting sink in full:
//!
//! ```rust
//! use gasf_core::prelude::*;
//! use gasf_core::sink::EmissionSink;
//!
//! /// Counts emissions and recipient labels without keeping payloads.
//! #[derive(Debug, Default)]
//! struct CountingSink {
//!     emissions: u64,
//!     labels: u64,
//! }
//!
//! impl EmissionSink for CountingSink {
//!     fn accept(&mut self, emission: &Emission) {
//!         self.emissions += 1;
//!         self.labels += emission.recipients.len() as u64;
//!     }
//! }
//!
//! # fn main() -> Result<(), gasf_core::Error> {
//! let schema = Schema::new(["t"]);
//! let mut engine = GroupEngine::builder(schema.clone())
//!     .filter(FilterSpec::delta("t", 2.0, 0.9))
//!     .filter(FilterSpec::delta("t", 3.0, 1.4))
//!     .build()?;
//!
//! let mut b = TupleBuilder::new(&schema);
//! let tuples = (0..20).map(|i| {
//!     b.at_millis(10 * (i + 1)).set("t", (i as f64 * 0.7).sin() * 5.0).build().unwrap()
//! });
//!
//! let mut counter = CountingSink::default();
//! engine.run_into(tuples, &mut counter)?;
//! assert!(counter.emissions > 0);
//! assert!(counter.labels >= counter.emissions);
//! # Ok(())
//! # }
//! ```

use crate::engine::Emission;
use crate::error::Error;
use crate::tuple::Tuple;

/// A consumer of released [`Emission`]s.
///
/// Sinks receive emissions **by reference** in release order. A sink that
/// needs to keep an emission clones it (the payload is an `Arc<Tuple>`, so
/// a clone is a reference-count bump plus the recipient bitset); a sink
/// that only inspects or forwards pays nothing.
pub trait EmissionSink {
    /// Consumes one emission.
    fn accept(&mut self, emission: &Emission);

    /// Consumes a batch of emissions released by a single step.
    ///
    /// The default forwards to [`accept`](Self::accept) per emission;
    /// override it when the sink can amortise per-batch work.
    fn accept_batch(&mut self, emissions: &[Emission]) {
        for e in emissions {
            self.accept(e);
        }
    }

    /// Consumes a **patch** emission: a late-tuple correction produced
    /// under [`LatePolicy::EmitPatch`](crate::event_time::LatePolicy)
    /// after the watermark already passed the tuple's timestamp.
    ///
    /// The flag travels out-of-band of the [`Emission`] payload (the
    /// ordered stream's wire format is untouched): sinks that
    /// distinguish corrections override this, sinks that don't inherit
    /// the default and treat a patch like any other emission.
    fn accept_patch(&mut self, emission: &Emission) {
        self.accept(emission);
    }

    /// Flushes any internally buffered state.
    ///
    /// Called by [`GroupEngine::finish_into`](crate::engine::GroupEngine::finish_into)
    /// (and therefore at the end of every
    /// [`run_into`](crate::engine::GroupEngine::run_into)) after the final
    /// emissions. The default does nothing.
    fn flush(&mut self) {}
}

/// Sinks compose by mutable reference: `&mut S` forwards to `S`, so an
/// operator taking `&mut impl EmissionSink` can hand the same sink to
/// nested stages.
impl<S: EmissionSink + ?Sized> EmissionSink for &mut S {
    fn accept(&mut self, emission: &Emission) {
        (**self).accept(emission);
    }

    fn accept_batch(&mut self, emissions: &[Emission]) {
        (**self).accept_batch(emissions);
    }

    fn accept_patch(&mut self, emission: &Emission) {
        (**self).accept_patch(emission);
    }

    fn flush(&mut self) {
        (**self).flush();
    }
}

/// A push-based streaming operator: tuples in, emissions out through a
/// sink.
///
/// This is the operator shape the whole pipeline composes over —
/// [`GroupEngine`](crate::engine::GroupEngine) implements it, and
/// middleware layers (metering, dissemination) wrap it.
pub trait StreamOperator {
    /// Processes one input tuple, writing any released emissions to `sink`.
    ///
    /// # Errors
    /// Operator-specific; see the implementation.
    fn process(&mut self, tuple: Tuple, sink: &mut impl EmissionSink) -> Result<(), Error>;

    /// Ends the stream, writing the remaining emissions to `sink`.
    ///
    /// # Errors
    /// Operator-specific; see the implementation.
    fn finish(&mut self, sink: &mut impl EmissionSink) -> Result<(), Error>;

    /// Processes a slice-sized batch of tuples without per-tuple dispatch
    /// overhead. The default loops over [`process`](Self::process).
    ///
    /// # Errors
    /// Stops at (and returns) the first tuple that fails.
    fn process_batch(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        sink: &mut impl EmissionSink,
    ) -> Result<(), Error> {
        for t in tuples {
            self.process(t, sink)?;
        }
        Ok(())
    }
}

/// A sink that collects cloned emissions into a `Vec`.
///
/// This is the bridge between the streaming path and code that wants the
/// whole output materialised — the legacy
/// [`GroupEngine::push`](crate::engine::GroupEngine::push)/`finish`
/// wrappers are implemented with it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecSink {
    emissions: Vec<Emission>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of emissions collected so far.
    pub fn len(&self) -> usize {
        self.emissions.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.emissions.is_empty()
    }

    /// The collected emissions, in release order.
    pub fn as_slice(&self) -> &[Emission] {
        &self.emissions
    }

    /// Consumes the sink, returning the collected emissions.
    pub fn into_vec(self) -> Vec<Emission> {
        self.emissions
    }

    /// Removes and returns the collected emissions, leaving the sink
    /// empty (the returned `Vec` keeps the allocation; the sink restarts
    /// from an unallocated buffer).
    pub fn drain_vec(&mut self) -> Vec<Emission> {
        std::mem::take(&mut self.emissions)
    }

    /// Drops the collected emissions, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.emissions.clear();
    }
}

impl EmissionSink for VecSink {
    fn accept(&mut self, emission: &Emission) {
        self.emissions.push(emission.clone());
    }

    fn accept_batch(&mut self, emissions: &[Emission]) {
        self.emissions.extend_from_slice(emissions);
    }
}

/// A sink that discards everything — the zero-cost endpoint for runs that
/// only need engine metrics (benchmarks, capacity probes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EmissionSink for NullSink {
    fn accept(&mut self, _emission: &Emission) {}

    fn accept_batch(&mut self, _emissions: &[Emission]) {}
}

/// Fans every emission out to two sinks, `a` first.
///
/// Compose nested `Tee`s for wider fan-out; accounting adapters (e.g.
/// `gasf-solar`'s metering) are typically tee'd next to the real
/// destination.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tee<A, B> {
    a: A,
    b: B,
}

impl<A, B> Tee<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }

    /// The first sink.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The second sink.
    pub fn second(&self) -> &B {
        &self.b
    }

    /// Consumes the tee, returning both sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: EmissionSink, B: EmissionSink> EmissionSink for Tee<A, B> {
    fn accept(&mut self, emission: &Emission) {
        self.a.accept(emission);
        self.b.accept(emission);
    }

    fn accept_batch(&mut self, emissions: &[Emission]) {
        self.a.accept_batch(emissions);
        self.b.accept_batch(emissions);
    }

    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::FilterSet;
    use crate::candidate::FilterId;
    use crate::schema::Schema;
    use crate::time::Micros;
    use crate::tuple::TupleBuilder;
    use std::sync::Arc;

    fn emission(seq: u64) -> Emission {
        let schema = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&schema);
        let t = b
            .at_millis(10 * (seq + 1))
            .set("t", seq as f64)
            .build()
            .unwrap();
        let mut recipients = FilterSet::new();
        recipients.insert(FilterId::from_index(0));
        Emission {
            tuple: Arc::new(t),
            recipients,
            emitted_at: Micros::from_millis(10 * (seq + 1)),
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        assert!(sink.is_empty());
        let (a, b) = (emission(0), emission(1));
        sink.accept(&a);
        sink.accept_batch(std::slice::from_ref(&b));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.as_slice(), &[a.clone(), b.clone()]);
        assert_eq!(sink.drain_vec(), vec![a, b]);
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.accept(&emission(0));
        sink.accept_batch(&[emission(1), emission(2)]);
        sink.flush();
    }

    #[test]
    fn tee_duplicates_to_both() {
        let mut tee = Tee::new(VecSink::new(), VecSink::new());
        tee.accept(&emission(0));
        tee.accept_batch(&[emission(1)]);
        tee.flush();
        assert_eq!(tee.first().len(), 2);
        assert_eq!(tee.second().len(), 2);
        let (a, b) = tee.into_inner();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn mut_ref_forwards() {
        // Generic over S so `&mut VecSink` resolves to the blanket impl.
        fn feed<S: EmissionSink>(mut sink: S) {
            sink.accept(&emission(0));
            sink.accept_batch(&[emission(1)]);
            sink.flush();
        }
        let mut sink = VecSink::new();
        feed(&mut sink);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn default_batch_loops_over_accept() {
        struct Counter(u64);
        impl EmissionSink for Counter {
            fn accept(&mut self, _: &Emission) {
                self.0 += 1;
            }
        }
        let mut c = Counter(0);
        c.accept_batch(&[emission(0), emission(1), emission(2)]);
        assert_eq!(c.0, 3);
    }
}
