//! Event time: watermarks, bounded-disorder reordering and windowed
//! aggregation.
//!
//! Every engine in this crate consumes an **ordered** stream: dense
//! sequence numbers and non-decreasing timestamps (the paper's §2.2.1
//! source-side timestamps). Real sensor deployments — buoys behind lossy
//! radio links, seismometer relays, cow-mounted nodes — deliver tuples
//! *out of order*, so this module provides the seam that turns an
//! event-time-disordered arrival stream back into the ordered stream the
//! whole filtering machinery (compiled rosters, columnar batches,
//! sharding, checkpoints) already handles:
//!
//! * [`Watermark`] — per-source low-watermark tracking under a bounded
//!   disorder assumption: after seeing an arrival with event timestamp
//!   `t`, no future arrival may carry a timestamp below `t − bound`.
//! * [`ReorderBuffer`] — sits **ahead** of the engine (and ahead of
//!   `push_batch_columnar`), holding arrivals until the watermark passes
//!   them, then releasing in `(timestamp, source seq)` order with fresh
//!   dense sequence numbers. Downstream of the buffer nothing changes.
//! * [`LatePolicy`] — what happens to a tuple that arrives *after* the
//!   watermark already passed its timestamp: count-and-[`Drop`]
//!   (`LatePolicy::Drop`) or surface it as a flagged correction
//!   ([`LatePolicy::EmitPatch`] → [`LateTuple`]).
//! * [`WindowFilter`] — the windowed-aggregation branch of the filter
//!   taxonomy (tumbling + sliding windows; min/max/mean/count
//!   aggregators) whose windows close at **watermark advancement**, not
//!   arrival order.
//!
//! # The determinism contract
//!
//! *Byte-identical emissions given equal watermark schedules.* The
//! watermark schedule is a pure function of the arrival sequence, the
//! buffer releases in a total order (`(event timestamp, source sequence
//! number)` — the tiebreak that makes equal timestamps legal), and
//! released tuples are re-sequenced densely in release order. Two
//! consequences, pinned by `tests/disorder_equivalence.rs`:
//!
//! 1. a disordered arrival stream whose displacement stays within
//!    `bound` releases **exactly** the pre-sorted stream, so engine
//!    emissions are byte-identical to filtering the sorted trace, and
//! 2. an already-ordered stream passes through any buffer (including the
//!    trivial `bound = 0` watermark) unchanged — same tuples, same
//!    sequence numbers — so the event-time seam costs nothing in
//!    equivalence when disorder never happens.
//!
//! The buffer's full state ([`ReorderSnapshot`]) serializes next to the
//! engine's [`GroupSnapshot`](crate::snapshot::GroupSnapshot), so a
//! checkpoint/restore hop mid-stream carries the watermark and the
//! buffered suffix with it.

use crate::cuts::RuntimePredictor;
use crate::schema::AttrId;
use crate::time::Micros;
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What to do with a tuple whose event timestamp is already below the
/// watermark when it arrives (the watermark passed it; its slot in the
/// ordered stream has been released).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatePolicy {
    /// Count it ([`ReorderBuffer::late_dropped`]) and discard it.
    Drop,
    /// Surface it as a flagged correction ([`LateTuple`]) so the caller
    /// can disseminate a patch out-of-band of the ordered stream.
    EmitPatch,
}

/// Event-time configuration for one source: the disorder bound its
/// watermark assumes and the late-tuple policy applied at the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTimeConfig {
    /// Maximum event-time displacement an arrival may have (the bounded
    /// disorder assumption). `Micros::ZERO` means "already ordered".
    pub bound: Micros,
    /// Policy for tuples that violate the bound.
    pub late: LatePolicy,
}

impl EventTimeConfig {
    /// A config with the given bound and the counting [`LatePolicy::Drop`].
    pub fn bounded(bound: Micros) -> Self {
        EventTimeConfig {
            bound,
            late: LatePolicy::Drop,
        }
    }

    /// Replaces the late policy.
    pub fn late(mut self, late: LatePolicy) -> Self {
        self.late = late;
        self
    }
}

/// Per-source low-watermark tracker under bounded disorder.
///
/// After observing an arrival with event timestamp `t`, the watermark is
/// `max_seen − bound`: the promise that no future arrival carries a
/// timestamp **below** it. Tuples with `timestamp < watermark` can be
/// released (every equal-timestamp peer must already have arrived);
/// tuples *arriving* below the watermark are late.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watermark {
    bound: Micros,
    max_seen: Option<Micros>,
}

impl Watermark {
    /// A watermark assuming at most `bound` of event-time displacement.
    pub fn new(bound: Micros) -> Self {
        Watermark {
            bound,
            max_seen: None,
        }
    }

    /// The disorder bound.
    pub fn bound(&self) -> Micros {
        self.bound
    }

    /// Highest event timestamp observed so far.
    pub fn max_seen(&self) -> Option<Micros> {
        self.max_seen
    }

    /// Folds one arrival's event timestamp into the frontier.
    pub fn observe(&mut self, ts: Micros) {
        self.max_seen = Some(self.max_seen.map_or(ts, |m| m.max(ts)));
    }

    /// The current watermark (`max_seen − bound`), or `None` before any
    /// observation.
    pub fn current(&self) -> Option<Micros> {
        self.max_seen.map(|m| m.saturating_sub(self.bound))
    }
}

/// A tuple that arrived after the watermark passed its timestamp, handed
/// back by [`ReorderBuffer::push_into`] under [`LatePolicy::EmitPatch`].
#[derive(Debug, Clone, PartialEq)]
pub struct LateTuple {
    /// The late tuple, unmodified (it keeps its source sequence number —
    /// that is what identifies the stream position it corrects).
    pub tuple: Tuple,
    /// How far behind the watermark it arrived.
    pub late_by: Micros,
}

/// Outcome of pushing a late arrival, per the buffer's [`LatePolicy`].
#[derive(Debug, Clone, PartialEq)]
pub enum LateOutcome {
    /// The tuple was counted and discarded ([`LatePolicy::Drop`]).
    Dropped,
    /// The tuple should be disseminated as a flagged correction
    /// ([`LatePolicy::EmitPatch`]).
    Patch(LateTuple),
}

/// One buffered tuple in serialized form (see [`ReorderSnapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferedRow {
    /// Source-assigned sequence number (the sort tiebreak).
    pub seq: u64,
    /// Event timestamp.
    pub ts: Micros,
    /// Payload values (NaN marks absent slots, as in [`Tuple`]).
    pub values: Vec<f64>,
}

/// Serialized [`ReorderBuffer`] state: watermark frontier, release
/// cursor, late accounting and the still-buffered suffix. Captured by
/// [`ReorderBuffer::snapshot`] and rebuilt by [`ReorderBuffer::restore`],
/// it is what lets a checkpoint/restore hop mid-disordered-stream
/// continue byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReorderSnapshot {
    bound: Micros,
    late: LatePolicy,
    max_seen: Option<Micros>,
    next_seq: u64,
    late_dropped: u64,
    patches: u64,
    pending: Vec<BufferedRow>,
}

/// Bounded-disorder reorder buffer: the event-time front door of every
/// engine.
///
/// Arrivals carry their *source* sequence numbers (dense in event order,
/// the deterministic tiebreak for equal timestamps) and may be disordered
/// by at most the watermark's bound. The buffer holds them in a
/// `(timestamp, seq)`-ordered map and releases a prefix every time the
/// watermark advances past it; released tuples are re-sequenced densely
/// in release order, so downstream consumers see exactly the ordered
/// stream contract (`GroupEngine::push` / `push_batch_columnar`) they
/// always had.
///
/// ```rust
/// use gasf_core::event_time::{EventTimeConfig, ReorderBuffer};
/// use gasf_core::schema::Schema;
/// use gasf_core::time::Micros;
/// use gasf_core::tuple::series;
///
/// let schema = Schema::new(["t"]);
/// let tuples = series(&schema, "t", &[(10, 1.0), (20, 2.0), (30, 3.0)]);
/// let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::from_millis(15)));
/// let mut released = Vec::new();
/// // Arrivals disordered within the bound: 20ms, 10ms, 30ms.
/// for t in [&tuples[1], &tuples[0], &tuples[2]] {
///     assert!(buf.push_into(t.clone(), &mut released).is_none());
/// }
/// buf.flush_into(&mut released);
/// // Released in event order, re-sequenced densely — the sorted stream.
/// assert_eq!(released, tuples);
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    watermark: Watermark,
    late: LatePolicy,
    /// Buffered arrivals in `(event timestamp, source seq)` order — the
    /// total release order.
    pending: BTreeMap<(Micros, u64), Tuple>,
    /// Next dense sequence number to assign on release.
    next_seq: u64,
    late_dropped: u64,
    patches: u64,
}

impl ReorderBuffer {
    /// A buffer with the given event-time configuration.
    pub fn new(config: EventTimeConfig) -> Self {
        ReorderBuffer {
            watermark: Watermark::new(config.bound),
            late: config.late,
            pending: BTreeMap::new(),
            next_seq: 0,
            late_dropped: 0,
            patches: 0,
        }
    }

    /// The buffer's watermark.
    pub fn watermark(&self) -> &Watermark {
        &self.watermark
    }

    /// The configured late policy.
    pub fn late_policy(&self) -> LatePolicy {
        self.late
    }

    /// Tuples currently held back waiting for the watermark.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Late tuples counted and discarded ([`LatePolicy::Drop`]).
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Late tuples surfaced as corrections ([`LatePolicy::EmitPatch`]).
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// The next sequence number the release path will assign — i.e. how
    /// many tuples have been released so far.
    pub fn released(&self) -> u64 {
        self.next_seq
    }

    /// Accepts one arrival, appending any now-releasable prefix (in
    /// `(timestamp, seq)` order, re-sequenced densely) to `released`.
    ///
    /// Returns `Some` when the arrival was late — already counted and
    /// discarded under [`LatePolicy::Drop`], or wrapped as a
    /// [`LateTuple`] correction under [`LatePolicy::EmitPatch`]. Source
    /// `(timestamp, seq)` pairs must be unique; pushing a duplicate
    /// replaces the buffered twin (debug builds assert).
    pub fn push_into(&mut self, tuple: Tuple, released: &mut Vec<Tuple>) -> Option<LateOutcome> {
        let ts = tuple.timestamp();
        if let Some(w) = self.watermark.current() {
            if ts < w {
                return Some(self.on_late(tuple, w.saturating_sub(ts)));
            }
        }
        self.watermark.observe(ts);
        let evicted = self.pending.insert((ts, tuple.seq()), tuple);
        debug_assert!(evicted.is_none(), "duplicate (timestamp, seq) arrival");
        self.release_ready(released);
        None
    }

    /// End of stream: releases everything still buffered, in order.
    pub fn flush_into(&mut self, released: &mut Vec<Tuple>) {
        while let Some(entry) = self.pending.pop_first() {
            self.release(entry.1, released);
        }
    }

    /// Captures the buffer's full state at the current position.
    pub fn snapshot(&self) -> ReorderSnapshot {
        ReorderSnapshot {
            bound: self.watermark.bound(),
            late: self.late,
            max_seen: self.watermark.max_seen(),
            next_seq: self.next_seq,
            late_dropped: self.late_dropped,
            patches: self.patches,
            pending: self
                .pending
                .values()
                .map(|t| BufferedRow {
                    seq: t.seq(),
                    ts: t.timestamp(),
                    values: t.values().to_vec(),
                })
                .collect(),
        }
    }

    /// Rebuilds a buffer from a [`snapshot`](Self::snapshot), continuing
    /// the stream byte-identically.
    pub fn restore(snap: &ReorderSnapshot) -> Self {
        let mut watermark = Watermark::new(snap.bound);
        if let Some(m) = snap.max_seen {
            watermark.observe(m);
        }
        ReorderBuffer {
            watermark,
            late: snap.late,
            pending: snap
                .pending
                .iter()
                .map(|r| {
                    (
                        (r.ts, r.seq),
                        Tuple::from_wire(r.seq, r.ts, r.values.clone()),
                    )
                })
                .collect(),
            next_seq: snap.next_seq,
            late_dropped: snap.late_dropped,
            patches: snap.patches,
        }
    }

    fn on_late(&mut self, tuple: Tuple, late_by: Micros) -> LateOutcome {
        match self.late {
            LatePolicy::Drop => {
                self.late_dropped += 1;
                LateOutcome::Dropped
            }
            LatePolicy::EmitPatch => {
                self.patches += 1;
                LateOutcome::Patch(LateTuple { tuple, late_by })
            }
        }
    }

    fn release_ready(&mut self, released: &mut Vec<Tuple>) {
        let Some(w) = self.watermark.current() else {
            return;
        };
        // Strictly-below release rule: a tuple with `ts == watermark` may
        // still gain equal-timestamp peers (the tiebreak sort needs them
        // all), so it is held until the watermark moves past it.
        while let Some(entry) = self.pending.first_entry() {
            if entry.key().0 >= w {
                break;
            }
            let tuple = entry.remove();
            self.release(tuple, released);
        }
    }

    fn release(&mut self, tuple: Tuple, released: &mut Vec<Tuple>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        released.push(if tuple.seq() == seq {
            tuple
        } else {
            tuple.with_seq(seq)
        });
    }
}

/// Window shape of a [`WindowFilter`]: the WA branch of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowKind {
    /// Contiguous fixed-size windows `[k·size, (k+1)·size)`.
    Tumbling {
        /// Window length in event time.
        size: Micros,
    },
    /// Overlapping windows `[k·slide, k·slide + size)`.
    Sliding {
        /// Window length in event time.
        size: Micros,
        /// Offset between consecutive window starts.
        slide: Micros,
    },
}

impl WindowKind {
    fn size(&self) -> Micros {
        match *self {
            WindowKind::Tumbling { size } | WindowKind::Sliding { size, .. } => size,
        }
    }

    fn slide(&self) -> Micros {
        match *self {
            WindowKind::Tumbling { size } => size,
            WindowKind::Sliding { slide, .. } => slide,
        }
    }
}

/// Aggregation function applied over one window's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Aggregate {
    /// Smallest value in the window.
    Min,
    /// Largest value in the window.
    Max,
    /// Arithmetic mean of the window.
    Mean,
    /// Number of (non-absent) values in the window.
    Count,
}

/// One closed window's result.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutput {
    /// Window start (inclusive, event time).
    pub start: Micros,
    /// Window end (exclusive, event time).
    pub end: Micros,
    /// The aggregate value.
    pub value: f64,
    /// Values that fell into the window.
    pub count: u64,
}

/// Per-open-window accumulator (constant space per window regardless of
/// how many tuples fall into it).
#[derive(Debug, Clone, Copy)]
struct WindowAcc {
    min: f64,
    max: f64,
    sum: f64,
    count: u64,
}

impl WindowAcc {
    fn new(v: f64) -> Self {
        WindowAcc {
            min: v,
            max: v,
            sum: v,
            count: 1,
        }
    }

    fn fold(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
    }

    fn value(&self, agg: Aggregate) -> f64 {
        match agg {
            Aggregate::Min => self.min,
            Aggregate::Max => self.max,
            Aggregate::Mean => self.sum / self.count as f64,
            Aggregate::Count => self.count as f64,
        }
    }
}

/// Windowed aggregation over one attribute of the *released* (ordered)
/// stream, closing windows at watermark advancement.
///
/// This is the event-time branch of the filter taxonomy: where DC1–DC3
/// forward a subset of the stream's tuples, a window filter summarises
/// event-time intervals of it — and because a window only closes once the
/// watermark proves no further tuple can land in it, the results are a
/// pure function of the watermark schedule, never of arrival order.
///
/// Feed it released tuples via [`observe`](Self::observe), advance it
/// with the buffer's watermark ([`advance_into`](Self::advance_into)) and
/// close the tail at end of stream with [`finish_into`](Self::finish_into).
/// Window-close cost is observed into a [`RuntimePredictor`] (the same
/// online regression the timely-cut machinery uses), so callers can ask
/// [`predicted_close_us`](Self::predicted_close_us) what a pending close
/// will cost before scheduling it.
#[derive(Debug, Clone)]
pub struct WindowFilter {
    attr: AttrId,
    kind: WindowKind,
    agg: Aggregate,
    /// Open windows by start timestamp; every open window holds at least
    /// one value (empty windows are never materialised).
    open: BTreeMap<Micros, WindowAcc>,
    predictor: RuntimePredictor,
}

impl WindowFilter {
    /// A window filter over `attr`.
    ///
    /// # Panics
    /// Panics if the window size or slide is zero.
    pub fn new(attr: AttrId, kind: WindowKind, agg: Aggregate) -> Self {
        assert!(kind.size() > Micros::ZERO, "window size must be positive");
        assert!(kind.slide() > Micros::ZERO, "window slide must be positive");
        WindowFilter {
            attr,
            kind,
            agg,
            open: BTreeMap::new(),
            predictor: RuntimePredictor::new(),
        }
    }

    /// The attribute this filter aggregates.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The window shape.
    pub fn kind(&self) -> WindowKind {
        self.kind
    }

    /// The aggregation function.
    pub fn aggregate(&self) -> Aggregate {
        self.agg
    }

    /// Windows currently open (seen a value, not yet closed).
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    /// Folds one released tuple into every window containing its
    /// timestamp. Tuples without a value for the attribute are skipped
    /// (NaN "absent" slots never contribute).
    pub fn observe(&mut self, tuple: &Tuple) {
        let Some(v) = tuple.get(self.attr) else {
            return;
        };
        let ts = tuple.timestamp().as_micros();
        let size = self.kind.size().as_micros();
        let slide = self.kind.slide().as_micros();
        let hi = ts / slide;
        let lo = if ts >= size {
            (ts - size) / slide + 1
        } else {
            0
        };
        for k in lo..=hi {
            let start = Micros(k * slide);
            self.open
                .entry(start)
                .and_modify(|acc| acc.fold(v))
                .or_insert_with(|| WindowAcc::new(v));
        }
    }

    /// Closes every open window whose end lies at or below `watermark`,
    /// appending results in start order. The close cost is observed into
    /// the filter's [`RuntimePredictor`].
    pub fn advance_into(&mut self, watermark: Micros, out: &mut Vec<WindowOutput>) {
        let started = std::time::Instant::now();
        let mut closed_values = 0usize;
        while let Some(entry) = self.open.first_entry() {
            let start = *entry.key();
            let Some(end) = start.checked_add(self.kind.size()) else {
                break;
            };
            if end > watermark {
                break;
            }
            let acc = entry.remove();
            closed_values += acc.count as usize;
            out.push(WindowOutput {
                start,
                end,
                value: acc.value(self.agg),
                count: acc.count,
            });
        }
        if closed_values > 0 {
            self.predictor.observe(
                closed_values,
                Micros(started.elapsed().as_micros().min(u64::MAX as u128) as u64),
            );
        }
    }

    /// End of stream: closes all remaining windows in start order.
    pub fn finish_into(&mut self, out: &mut Vec<WindowOutput>) {
        self.advance_into(Micros::MAX, out);
        // Micros::MAX may not be expressible as `start + size`; drain the
        // remainder explicitly.
        while let Some(entry) = self.open.first_entry() {
            let start = *entry.key();
            let acc = entry.remove();
            out.push(WindowOutput {
                start,
                end: start.checked_add(self.kind.size()).unwrap_or(Micros::MAX),
                value: acc.value(self.agg),
                count: acc.count,
            });
        }
    }

    /// Predicted cost (microseconds) of closing windows totalling
    /// `values` buffered values — the watermark-driven window scheduler's
    /// view into [`RuntimePredictor::predict_us`].
    pub fn predicted_close_us(&self, values: usize) -> f64 {
        self.predictor.predict_us(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::series;

    fn tuples(points: &[(u64, f64)]) -> (Schema, Vec<Tuple>) {
        let schema = Schema::new(["t"]);
        let t = series(&schema, "t", points);
        (schema, t)
    }

    #[test]
    fn in_order_stream_passes_through_unchanged() {
        let (_, tuples) = tuples(&[(10, 1.0), (20, 2.0), (30, 3.0), (40, 4.0)]);
        for bound in [0u64, 5, 1000] {
            let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::from_millis(bound)));
            let mut out = Vec::new();
            for t in &tuples {
                assert!(buf.push_into(t.clone(), &mut out).is_none());
            }
            buf.flush_into(&mut out);
            assert_eq!(out, tuples, "bound {bound}ms");
            assert_eq!(buf.late_dropped(), 0);
        }
    }

    #[test]
    fn bounded_disorder_releases_the_sorted_stream() {
        let (_, tuples) = tuples(&[(10, 1.0), (20, 2.0), (30, 3.0), (40, 4.0), (50, 5.0)]);
        // Arrival order displaced by up to 20 ms.
        let arrival = [2usize, 0, 1, 4, 3];
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::from_millis(20)));
        let mut out = Vec::new();
        for &i in &arrival {
            assert!(buf.push_into(tuples[i].clone(), &mut out).is_none());
        }
        buf.flush_into(&mut out);
        assert_eq!(out, tuples);
        assert_eq!(buf.released(), 5);
    }

    #[test]
    fn equal_timestamps_release_in_seq_order() {
        let mk =
            |seq: u64, ms: u64, v: f64| Tuple::from_wire(seq, Micros::from_millis(ms), vec![v]);
        let sorted = vec![
            mk(0, 10, 1.0),
            mk(1, 10, 2.0),
            mk(2, 10, 3.0),
            mk(3, 30, 4.0),
        ];
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::from_millis(10)));
        let mut out = Vec::new();
        for i in [1usize, 2, 0, 3] {
            assert!(buf.push_into(sorted[i].clone(), &mut out).is_none());
        }
        buf.flush_into(&mut out);
        assert_eq!(out, sorted, "(ts, seq) is the total release order");
    }

    #[test]
    fn late_tuple_is_dropped_and_counted() {
        let (_, tuples) = tuples(&[(10, 1.0), (100, 2.0)]);
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::from_millis(20)));
        let mut out = Vec::new();
        assert!(buf.push_into(tuples[1].clone(), &mut out).is_none());
        // Watermark is now 80 ms; a 10 ms arrival is 70 ms late.
        let outcome = buf.push_into(tuples[0].clone(), &mut out);
        assert_eq!(outcome, Some(LateOutcome::Dropped));
        assert_eq!(buf.late_dropped(), 1);
        assert_eq!(buf.patches(), 0);
        buf.flush_into(&mut out);
        assert_eq!(out, vec![tuples[1].with_seq(0)]);
    }

    #[test]
    fn late_tuple_surfaces_as_patch_under_emit_patch() {
        let (_, tuples) = tuples(&[(10, 1.0), (100, 2.0)]);
        let cfg = EventTimeConfig::bounded(Micros::from_millis(20)).late(LatePolicy::EmitPatch);
        let mut buf = ReorderBuffer::new(cfg);
        let mut out = Vec::new();
        assert!(buf.push_into(tuples[1].clone(), &mut out).is_none());
        match buf.push_into(tuples[0].clone(), &mut out) {
            Some(LateOutcome::Patch(late)) => {
                assert_eq!(late.tuple, tuples[0]);
                assert_eq!(late.late_by, Micros::from_millis(70));
            }
            other => panic!("expected a patch, got {other:?}"),
        }
        assert_eq!(buf.patches(), 1);
        assert_eq!(buf.late_dropped(), 0);
    }

    #[test]
    fn watermark_held_tuples_wait_for_equal_ts_peers() {
        // bound 0: a tuple at the watermark is NOT released until the
        // watermark moves past its timestamp (equal-ts peers may follow).
        let (_, tuples) = tuples(&[(10, 1.0), (20, 2.0)]);
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::ZERO));
        let mut out = Vec::new();
        buf.push_into(tuples[0].clone(), &mut out);
        assert!(out.is_empty(), "held at the watermark");
        assert_eq!(buf.buffered(), 1);
        buf.push_into(tuples[1].clone(), &mut out);
        assert_eq!(out, vec![tuples[0].clone()]);
        buf.flush_into(&mut out);
        assert_eq!(out, tuples);
    }

    #[test]
    fn snapshot_restore_continues_byte_identically() {
        let (_, tuples) = tuples(&[
            (10, 1.0),
            (20, 2.0),
            (30, 3.0),
            (40, 4.0),
            (50, 5.0),
            (60, 6.0),
        ]);
        let arrival = [1usize, 0, 3, 2, 5, 4];
        let bound = Micros::from_millis(25);

        let mut reference = Vec::new();
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(bound));
        for &i in &arrival {
            buf.push_into(tuples[i].clone(), &mut reference);
        }
        buf.flush_into(&mut reference);

        let mut hopped = Vec::new();
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(bound));
        for (n, &i) in arrival.iter().enumerate() {
            if n == 3 {
                let snap = buf.snapshot();
                buf = ReorderBuffer::restore(&snap);
            }
            buf.push_into(tuples[i].clone(), &mut hopped);
        }
        buf.flush_into(&mut hopped);
        assert_eq!(hopped, reference);
        assert_eq!(reference, tuples);
    }

    #[test]
    fn snapshot_carries_late_accounting() {
        let (_, tuples) = tuples(&[(10, 1.0), (200, 2.0)]);
        let mut buf = ReorderBuffer::new(EventTimeConfig::bounded(Micros::from_millis(20)));
        let mut out = Vec::new();
        buf.push_into(tuples[1].clone(), &mut out);
        buf.push_into(tuples[0].clone(), &mut out);
        assert_eq!(buf.late_dropped(), 1);
        let restored = ReorderBuffer::restore(&buf.snapshot());
        assert_eq!(restored.late_dropped(), 1);
        assert_eq!(restored.buffered(), buf.buffered());
        assert_eq!(restored.watermark().current(), buf.watermark().current());
    }

    fn window_oracle(points: &[(u64, f64)], kind: WindowKind, agg: Aggregate) -> Vec<WindowOutput> {
        let size = kind.size().as_micros();
        let slide = kind.slide().as_micros();
        let mut out = Vec::new();
        let max_ts = points.iter().map(|&(ms, _)| ms * 1000).max().unwrap_or(0);
        let mut start = 0u64;
        while start <= max_ts {
            let vals: Vec<f64> = points
                .iter()
                .filter(|&&(ms, _)| {
                    let ts = ms * 1000;
                    ts >= start && ts < start + size
                })
                .map(|&(_, v)| v)
                .collect();
            if !vals.is_empty() {
                let value = match agg {
                    Aggregate::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
                    Aggregate::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    Aggregate::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                    Aggregate::Count => vals.len() as f64,
                };
                out.push(WindowOutput {
                    start: Micros(start),
                    end: Micros(start + size),
                    value,
                    count: vals.len() as u64,
                });
            }
            start += slide;
        }
        out
    }

    #[test]
    fn tumbling_windows_match_the_oracle() {
        let points = [(5u64, 2.0), (12, 4.0), (18, 6.0), (25, 8.0), (39, 1.0)];
        let (schema, tuples) = tuples(&points);
        let attr = schema.attr("t").unwrap();
        let kind = WindowKind::Tumbling {
            size: Micros::from_millis(10),
        };
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
            Aggregate::Count,
        ] {
            let mut wf = WindowFilter::new(attr, kind, agg);
            let mut out = Vec::new();
            for t in &tuples {
                wf.observe(t);
            }
            wf.finish_into(&mut out);
            assert_eq!(out, window_oracle(&points, kind, agg), "{agg:?}");
        }
    }

    #[test]
    fn sliding_windows_match_the_oracle() {
        let points = [(5u64, 2.0), (12, 4.0), (18, 6.0), (25, 8.0), (39, 1.0)];
        let (schema, tuples) = tuples(&points);
        let attr = schema.attr("t").unwrap();
        let kind = WindowKind::Sliding {
            size: Micros::from_millis(20),
            slide: Micros::from_millis(5),
        };
        let mut wf = WindowFilter::new(attr, kind, Aggregate::Mean);
        let mut out = Vec::new();
        for t in &tuples {
            wf.observe(t);
        }
        wf.finish_into(&mut out);
        assert_eq!(out, window_oracle(&points, kind, Aggregate::Mean));
    }

    #[test]
    fn windows_close_only_when_the_watermark_passes_them() {
        let points = [(5u64, 2.0), (12, 4.0), (25, 8.0)];
        let (schema, tuples) = tuples(&points);
        let attr = schema.attr("t").unwrap();
        let kind = WindowKind::Tumbling {
            size: Micros::from_millis(10),
        };
        let mut wf = WindowFilter::new(attr, kind, Aggregate::Max);
        let mut out = Vec::new();
        wf.observe(&tuples[0]);
        wf.advance_into(Micros::from_millis(9), &mut out);
        assert!(out.is_empty(), "watermark below the window end");
        wf.advance_into(Micros::from_millis(10), &mut out);
        assert_eq!(out.len(), 1, "end == watermark closes");
        wf.observe(&tuples[1]);
        wf.observe(&tuples[2]);
        wf.finish_into(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 2.0);
        assert_eq!(out[1].value, 4.0);
        assert_eq!(out[2].value, 8.0);
    }

    #[test]
    fn window_close_feeds_the_runtime_predictor() {
        let points: Vec<(u64, f64)> = (0..40).map(|i| (i * 5, i as f64)).collect();
        let (schema, tuples) = tuples(&points);
        let attr = schema.attr("t").unwrap();
        let mut wf = WindowFilter::new(
            attr,
            WindowKind::Tumbling {
                size: Micros::from_millis(20),
            },
            Aggregate::Mean,
        );
        let mut out = Vec::new();
        for (i, t) in tuples.iter().enumerate() {
            wf.observe(t);
            if i % 8 == 7 {
                wf.advance_into(t.timestamp(), &mut out);
            }
        }
        wf.finish_into(&mut out);
        assert!(wf.predicted_close_us(10) >= 0.0);
        assert!(!out.is_empty());
    }

    #[test]
    fn absent_values_never_contribute() {
        let schema = Schema::new(["a", "b"]);
        let mut b = crate::tuple::TupleBuilder::new(&schema);
        let t0 = b.at_millis(5).set("a", 1.0).build().unwrap(); // b absent
        let t1 = b.at_millis(6).set("a", 2.0).set("b", 9.0).build().unwrap();
        let attr = schema.attr("b").unwrap();
        let mut wf = WindowFilter::new(
            attr,
            WindowKind::Tumbling {
                size: Micros::from_millis(10),
            },
            Aggregate::Count,
        );
        wf.observe(&t0);
        wf.observe(&t1);
        let mut out = Vec::new();
        wf.finish_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].count, 1, "absent slot skipped");
    }
}
