//! The typed expression IR filters lower into, and the logical-plan
//! optimizer that hoists loads, normalizes comparisons and shares common
//! subexpressions across a roster.

use crate::candidate::FilterId;
use crate::engine::Algorithm;
use crate::error::Error;
use crate::quality::{Dependency, FilterKind, FilterSpec, Prescription};
use crate::schema::{AttrId, Schema};
use crate::time::Micros;
use crate::tuple::Tuple;
use std::fmt;

/// A typed expression over one stream tuple plus a filter's comparison
/// base (its last reference / last chosen output).
///
/// This is the lowering target of every [`FilterSpec`] kind — the grammar
/// is exactly what the paper's filter taxonomy needs: attribute loads
/// (plain, trend, mean), the last-emitted-value reference ([`Base`](Expr::Base)),
/// absolute deltas compared against thresholds with slack, time-window
/// membership, and boolean combination. Expressions exist for plan
/// construction, CSE identity and documentation; execution uses the
/// specialized arenas of [`CompiledRoster`](super::CompiledRoster), which
/// are derived from the same plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Load of one attribute value.
    Attr(AttrId),
    /// Discrete derivative of an attribute per second (the DC2 "trend"
    /// derivation; stateful in the previous sample).
    Trend(AttrId),
    /// Mean of several attribute loads (DC3). The summation order is
    /// semantic — floating-point addition does not commute bit-exactly —
    /// so the list is never reordered.
    Mean(Vec<AttrId>),
    /// The filter's comparison base: the last reference value (stateless)
    /// or the last chosen output value (stateful).
    Base,
    /// A literal.
    Const(f64),
    /// `|a − b|`.
    AbsDelta(Box<Expr>, Box<Expr>),
    /// `a ≥ b` (1.0 / 0.0).
    Ge(Box<Expr>, Box<Expr>),
    /// `a ≤ b` (1.0 / 0.0).
    Le(Box<Expr>, Box<Expr>),
    /// Whether the tuple's timestamp falls in the filter's currently open
    /// sampling window of the given length (window-gate membership).
    InWindow(Micros),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
}

impl Expr {
    /// Normalizes the expression into the canonical form the planner
    /// shares subexpressions over:
    ///
    /// * constants fold (`|c₁ − c₂|` → literal);
    /// * a single-attribute mean collapses to the plain load (`x/1.0 ≡ x`
    ///   bit-exactly, so DC1 and single-attribute DC3 share one class);
    /// * threshold comparisons are normalized with the derived value on
    ///   the **left** and the threshold on the right (`c ≥ x` ⇒ `x ≤ c`),
    ///   so equal checks become structurally equal;
    /// * nested conjunctions/disjunctions flatten, duplicate branches
    ///   drop, and single-branch combinators unwrap.
    #[must_use]
    pub fn normalize(self) -> Expr {
        match self {
            Expr::Mean(attrs) if attrs.len() == 1 => Expr::Attr(attrs[0]),
            Expr::AbsDelta(a, b) => match (a.normalize(), b.normalize()) {
                (Expr::Const(a), Expr::Const(b)) => Expr::Const((a - b).abs()),
                (a, b) => Expr::AbsDelta(Box::new(a), Box::new(b)),
            },
            Expr::Ge(a, b) => match (a.normalize(), b.normalize()) {
                (Expr::Const(c), x) => Expr::Le(Box::new(x), Box::new(Expr::Const(c))),
                (a, b) => Expr::Ge(Box::new(a), Box::new(b)),
            },
            Expr::Le(a, b) => match (a.normalize(), b.normalize()) {
                (Expr::Const(c), x) => Expr::Ge(Box::new(x), Box::new(Expr::Const(c))),
                (a, b) => Expr::Le(Box::new(a), Box::new(b)),
            },
            Expr::And(xs) => normalize_variadic(xs, true),
            Expr::Or(xs) => normalize_variadic(xs, false),
            other => other,
        }
    }

    /// Evaluates a *pure* expression against one tuple and a base value;
    /// booleans are 1.0/0.0. Returns `None` for stateful nodes
    /// ([`Trend`](Expr::Trend), [`InWindow`](Expr::InWindow) — those only
    /// evaluate inside a [`CompiledRoster`](super::CompiledRoster), which
    /// owns their state) and for missing attribute values.
    pub fn eval_pure(&self, tuple: &Tuple, base: f64) -> Option<f64> {
        match self {
            Expr::Attr(a) => tuple.require(*a).ok(),
            Expr::Trend(_) | Expr::InWindow(_) => None,
            Expr::Mean(attrs) => {
                let mut sum = 0.0;
                for a in attrs {
                    sum += tuple.require(*a).ok()?;
                }
                Some(sum / attrs.len() as f64)
            }
            Expr::Base => Some(base),
            Expr::Const(c) => Some(*c),
            Expr::AbsDelta(a, b) => {
                Some((a.eval_pure(tuple, base)? - b.eval_pure(tuple, base)?).abs())
            }
            Expr::Ge(a, b) => Some(f64::from(
                a.eval_pure(tuple, base)? >= b.eval_pure(tuple, base)?,
            )),
            Expr::Le(a, b) => Some(f64::from(
                a.eval_pure(tuple, base)? <= b.eval_pure(tuple, base)?,
            )),
            Expr::And(xs) => {
                for x in xs {
                    if x.eval_pure(tuple, base)? == 0.0 {
                        return Some(0.0);
                    }
                }
                Some(1.0)
            }
            Expr::Or(xs) => {
                for x in xs {
                    if x.eval_pure(tuple, base)? != 0.0 {
                        return Some(1.0);
                    }
                }
                Some(0.0)
            }
        }
    }
}

/// Shared normalization of `And`/`Or`: flatten, dedupe, unwrap.
fn normalize_variadic(xs: Vec<Expr>, conjunction: bool) -> Expr {
    let mut flat: Vec<Expr> = Vec::with_capacity(xs.len());
    for x in xs {
        match x.normalize() {
            Expr::And(inner) if conjunction => flat.extend(inner),
            Expr::Or(inner) if !conjunction => flat.extend(inner),
            other => flat.push(other),
        }
    }
    let mut dedup: Vec<Expr> = Vec::with_capacity(flat.len());
    for x in flat {
        if !dedup.contains(&x) {
            dedup.push(x);
        }
    }
    match dedup.len() {
        0 => Expr::Const(if conjunction { 1.0 } else { 0.0 }),
        1 => dedup.into_iter().next().expect("len checked"),
        _ if conjunction => Expr::And(dedup),
        _ => Expr::Or(dedup),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, xs: &[Expr], sep: &str) -> fmt::Result {
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, "{sep}")?;
                }
                write!(f, "{x}")?;
            }
            Ok(())
        }
        match self {
            Expr::Attr(a) => write!(f, "a{}", a.index()),
            Expr::Trend(a) => write!(f, "trend(a{})", a.index()),
            Expr::Mean(attrs) => {
                write!(f, "mean(")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "a{}", a.index())?;
                }
                write!(f, ")")
            }
            Expr::Base => write!(f, "base"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::AbsDelta(a, b) => write!(f, "|{a} - {b}|"),
            Expr::Ge(a, b) => write!(f, "{a} >= {b}"),
            Expr::Le(a, b) => write!(f, "{a} <= {b}"),
            Expr::InWindow(w) => write!(f, "win({w})"),
            Expr::And(xs) => {
                write!(f, "(")?;
                list(f, xs, " && ")?;
                write!(f, ")")
            }
            Expr::Or(xs) => {
                write!(f, "(")?;
                list(f, xs, " || ")?;
                write!(f, ")")
            }
        }
    }
}

/// The executable gate parameters of one lowered filter — the part of the
/// plan the fused evaluator specializes on (the admission [`Expr`] is the
/// same predicate in IR form).
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// A `(slack, delta)` admission automaton (DC1/DC2/DC3).
    Delta {
        /// Compression granularity.
        delta: f64,
        /// Tolerated deviation.
        slack: f64,
        /// Whether the base tracks the chosen output (vs. the reference).
        stateful: bool,
    },
    /// A fixed-`k`-per-window reservoir gate (RS).
    Reservoir {
        /// Window length used to segment the stream.
        window: Micros,
        /// Samples per window.
        k: u32,
    },
    /// A stratified sampling gate (SS): the window's sample range picks
    /// the high or low rate.
    Stratified {
        /// Window length used to segment the stream.
        window: Micros,
        /// Sample-range threshold separating the strata.
        threshold: f64,
        /// Sampling percentage for high-dynamics windows.
        high_pct: f64,
        /// Sampling percentage for low-dynamics windows.
        low_pct: f64,
        /// Which candidates are eligible.
        prescription: Prescription,
    },
}

/// One filter of the roster, lowered: its key derivation, its admission
/// predicate (both normalized IR) and the executable gate parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterPlan {
    /// The filter's stable slot id.
    pub id: FilterId,
    /// Normalized derivation of the scalar the filter compares (the CSE
    /// unit: structurally equal keys share one evaluation per tuple).
    pub key: Expr,
    /// Normalized admission predicate over `key` and [`Expr::Base`].
    pub admit: Expr,
    /// The gate parameters the evaluator specializes on.
    pub gate: Gate,
}

impl FilterPlan {
    /// Lowers one validated spec into its plan.
    ///
    /// Under [`Algorithm::SelfInterested`] a stateful delta filter lowers
    /// as its stateless twin (the chosen output *is* the reference, so the
    /// bases coincide) — the same rule the trait-object factory applies.
    ///
    /// # Errors
    /// [`Error::InvalidSpec`] / [`Error::UnknownAttribute`] /
    /// [`Error::InvalidConfig`] exactly as filter instantiation reports
    /// them.
    pub fn lower(
        spec: &FilterSpec,
        id: FilterId,
        schema: &Schema,
        algorithm: Algorithm,
    ) -> Result<FilterPlan, Error> {
        if spec.is_stateful() && algorithm == Algorithm::RegionGreedy {
            return Err(Error::InvalidConfig {
                reason: format!(
                    "filter {id} is stateful; stateful candidate sets require \
                     Algorithm::PerCandidateSet"
                ),
            });
        }
        spec.validate()?;
        let delta_plan = |key: Expr, delta: f64, slack: f64, stateful: bool| {
            // Admitted ⇔ far enough from the base to qualify for the next
            // set (searching/tentative), or inside the slack vicinity of
            // the current reference.
            let dist = Expr::AbsDelta(Box::new(key.clone()), Box::new(Expr::Base));
            let admit = Expr::Or(vec![
                Expr::Ge(Box::new(dist.clone()), Box::new(Expr::Const(delta - slack))),
                Expr::Le(Box::new(dist), Box::new(Expr::Const(slack))),
            ])
            .normalize();
            FilterPlan {
                id,
                key: key.normalize(),
                admit,
                gate: Gate::Delta {
                    delta,
                    slack,
                    stateful,
                },
            }
        };
        Ok(match &spec.kind {
            FilterKind::Delta {
                attr,
                delta,
                slack,
                dependency,
            } => {
                let stateful =
                    *dependency == Dependency::Stateful && algorithm != Algorithm::SelfInterested;
                delta_plan(Expr::Attr(schema.attr(attr)?), *delta, *slack, stateful)
            }
            FilterKind::TrendDelta { attr, delta, slack } => {
                delta_plan(Expr::Trend(schema.attr(attr)?), *delta, *slack, false)
            }
            FilterKind::MultiAttrDelta {
                attrs,
                delta,
                slack,
            } => {
                let attrs = attrs
                    .iter()
                    .map(|a| schema.attr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                delta_plan(Expr::Mean(attrs), *delta, *slack, false)
            }
            FilterKind::Reservoir { attr, window, k } => FilterPlan {
                id,
                key: Expr::Attr(schema.attr(attr)?).normalize(),
                admit: Expr::InWindow(*window).normalize(),
                gate: Gate::Reservoir {
                    window: *window,
                    k: *k,
                },
            },
            FilterKind::StratifiedSample {
                attr,
                window,
                threshold,
                high_pct,
                low_pct,
                prescription,
            } => FilterPlan {
                id,
                key: Expr::Attr(schema.attr(attr)?).normalize(),
                admit: Expr::InWindow(*window).normalize(),
                gate: Gate::Stratified {
                    window: *window,
                    threshold: *threshold,
                    high_pct: *high_pct,
                    low_pct: *low_pct,
                    prescription: *prescription,
                },
            },
        })
    }
}

/// The logical plan of a whole roster: every occupied slot lowered, with
/// structurally equal key derivations shared into **classes** (the
/// common-subexpression units — one class evaluates once per tuple, no
/// matter how many filters consume it).
#[derive(Debug, Clone)]
pub struct RosterPlan {
    /// Lowered filters, ascending by slot id.
    pub filters: Vec<FilterPlan>,
    /// Distinct normalized key derivations, ordered by first use.
    pub classes: Vec<Expr>,
    /// `class_of[i]` is the index into [`classes`](Self::classes) of
    /// `filters[i]`'s key.
    pub class_of: Vec<usize>,
}

impl RosterPlan {
    /// Lowers a roster (occupied slots, ascending by id) and shares the
    /// key derivations.
    ///
    /// # Errors
    /// The first per-filter lowering error, in slot order.
    pub fn lower<'a>(
        roster: impl IntoIterator<Item = (FilterId, &'a FilterSpec)>,
        schema: &Schema,
        algorithm: Algorithm,
    ) -> Result<RosterPlan, Error> {
        let mut plan = RosterPlan {
            filters: Vec::new(),
            classes: Vec::new(),
            class_of: Vec::new(),
        };
        for (id, spec) in roster {
            let fp = FilterPlan::lower(spec, id, schema, algorithm)?;
            let ci = match plan.classes.iter().position(|c| *c == fp.key) {
                Some(ci) => ci,
                None => {
                    plan.classes.push(fp.key.clone());
                    plan.classes.len() - 1
                }
            };
            plan.class_of.push(ci);
            plan.filters.push(fp);
        }
        Ok(plan)
    }

    /// Number of shared key-derivation classes (≤ number of filters; the
    /// gap is the work CSE eliminates per tuple).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleBuilder;

    fn schema() -> Schema {
        Schema::new(["x", "y"])
    }

    #[test]
    fn threshold_comparisons_normalize_to_value_on_the_left() {
        let x = Expr::Attr(AttrId(0));
        let e = Expr::Ge(Box::new(Expr::Const(5.0)), Box::new(x.clone()));
        assert_eq!(
            e.normalize(),
            Expr::Le(Box::new(x), Box::new(Expr::Const(5.0)))
        );
    }

    #[test]
    fn single_attr_mean_collapses_and_shares_with_plain_delta() {
        let s = schema();
        let plan = RosterPlan::lower(
            [
                (FilterId::from_index(0), &FilterSpec::delta("x", 10.0, 1.0)),
                (
                    FilterId::from_index(1),
                    &FilterSpec::multi_attr_delta(["x"], 20.0, 2.0),
                ),
                (
                    FilterId::from_index(2),
                    &FilterSpec::multi_attr_delta(["x", "y"], 20.0, 2.0),
                ),
            ],
            &s,
            Algorithm::RegionGreedy,
        )
        .unwrap();
        assert_eq!(plan.class_count(), 2, "x and mean(x,y)");
        assert_eq!(plan.class_of, vec![0, 0, 1]);
    }

    #[test]
    fn and_or_flatten_dedupe_and_unwrap() {
        let a = Expr::Attr(AttrId(0));
        let e = Expr::And(vec![
            Expr::And(vec![a.clone(), a.clone()]),
            Expr::And(vec![a.clone()]),
        ]);
        assert_eq!(e.normalize(), a);
        assert_eq!(Expr::Or(vec![]).normalize(), Expr::Const(0.0));
    }

    #[test]
    fn admit_predicate_matches_the_automaton_regions() {
        // delta 10, slack 2 over base 0: admitted iff |v| >= 8 or |v| <= 2.
        let s = schema();
        let plan = FilterPlan::lower(
            &FilterSpec::delta("x", 10.0, 2.0),
            FilterId::from_index(0),
            &s,
            Algorithm::RegionGreedy,
        )
        .unwrap();
        let mut b = TupleBuilder::new(&s);
        for (v, admit) in [(0.5, 1.0), (5.0, 0.0), (8.0, 1.0), (12.0, 1.0)] {
            let t = b.at_millis(10).set("x", v).set("y", 0.0).build().unwrap();
            assert_eq!(plan.admit.eval_pure(&t, 0.0), Some(admit), "v={v}");
        }
    }

    #[test]
    fn stateful_lowers_stateless_under_self_interested() {
        let s = schema();
        let spec = FilterSpec::stateful_delta("x", 10.0, 1.0);
        let si = FilterPlan::lower(
            &spec,
            FilterId::from_index(0),
            &s,
            Algorithm::SelfInterested,
        )
        .unwrap();
        assert!(matches!(
            si.gate,
            Gate::Delta {
                stateful: false,
                ..
            }
        ));
        let ps = FilterPlan::lower(
            &spec,
            FilterId::from_index(0),
            &s,
            Algorithm::PerCandidateSet,
        )
        .unwrap();
        assert!(matches!(ps.gate, Gate::Delta { stateful: true, .. }));
        assert!(
            FilterPlan::lower(&spec, FilterId::from_index(0), &s, Algorithm::RegionGreedy).is_err()
        );
    }

    #[test]
    fn display_renders_the_ir_grammar() {
        let s = schema();
        let plan = FilterPlan::lower(
            &FilterSpec::delta("x", 10.0, 2.0),
            FilterId::from_index(0),
            &s,
            Algorithm::RegionGreedy,
        )
        .unwrap();
        assert_eq!(plan.key.to_string(), "a0");
        assert_eq!(
            plan.admit.to_string(),
            "(|a0 - base| >= 8 || |a0 - base| <= 2)"
        );
    }
}
