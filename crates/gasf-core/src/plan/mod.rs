//! Roster compilation: expression plan → CSE → fused one-pass evaluators.
//!
//! The engines' first stage (candidate admission) originally drove every
//! filter as an opaque [`GroupFilter`](crate::filter::GroupFilter) trait
//! object, one virtual call per filter per tuple, each re-reading the same
//! attributes and re-computing the same `|Δ|` distances. Filters in a
//! group overlap *by construction* — that is the paper's whole premise —
//! so the roster is compiled instead:
//!
//! 1. **Lowering** — every [`FilterSpec`](crate::quality::FilterSpec) kind
//!    (delta, stateful delta, trend delta, multi-attr delta, sampling
//!    window gates) lowers into a small typed expression IR over tuple
//!    attributes ([`Expr`]): attribute loads, the last-emitted-value
//!    reference, `|Δ|` against a threshold-with-slack, time-window
//!    membership, and/or.
//! 2. **Logical-plan optimization** ([`RosterPlan`]) — attribute loads are
//!    hoisted and threshold comparisons normalized
//!    ([`Expr::normalize`]), then structurally equal key derivations are
//!    shared across the group's filters (CSE): same attribute ⇒ one load,
//!    one derived value per tuple, feeding N threshold checks.
//! 3. **Fusion** ([`CompiledRoster`]) — the admission automata of all
//!    members run in one monomorphized pass per tuple. Per-filter state
//!    (bases, reference values, window cursors, open candidate lists)
//!    lives in packed struct-of-arrays arenas instead of per-trait-object
//!    fields. Members that share a key *and* a comparison base are grouped
//!    into a cohort sorted by qualification threshold, so one
//!    `|Δ|` computation plus one binary search admits/skips whole runs of
//!    filters at once, and sampler admissions fill the recipient
//!    [`FilterSet`](crate::bitset::FilterSet) by `u64`-block union rather
//!    than bit by bit.
//!
//! Compilation is a **pure function of the roster** (specs + slot ids +
//! algorithm): it holds no durable state of its own, so snapshots stay
//! format-stable — a restored engine simply recompiles — and the control
//! plane recompiles at every epoch safe point (vacancy holes preserved).
//! The trait-object path is kept as the *oracle*: build with
//! [`EvaluatorTier::Interpreted`] to run it, and
//! `tests/tests/compile_equivalence.rs` pins the two tiers byte-identical
//! across every algorithm, output strategy and parallelism, including
//! under churn and recovery.

mod compiled;
mod expr;

pub use compiled::CompiledRoster;
pub(crate) use compiled::StepActions;
pub use expr::{Expr, FilterPlan, Gate, RosterPlan};

/// Which first-stage evaluator a [`GroupEngine`](crate::engine::GroupEngine)
/// drives.
///
/// Both tiers are byte-for-byte equivalent on every input (the contract
/// `tests/tests/compile_equivalence.rs` pins); they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvaluatorTier {
    /// The fused [`CompiledRoster`] evaluator (the default): one pass per
    /// tuple over shared key derivations and cohort cascades.
    #[default]
    Compiled,
    /// The original per-filter trait-object path — the reference
    /// implementation the compiled tier is checked against.
    Interpreted,
}
