//! The fused one-pass evaluator: the execution back end of a
//! [`RosterPlan`].
//!
//! All per-filter admission state lives in packed struct-of-arrays arenas
//! ([`DeltaArena`] / [`WindowArena`]) instead of per-trait-object fields,
//! and members are indexed by *class* (shared key derivation): each tuple
//! derives every distinct key exactly once, window gates fill the
//! recipient [`FilterSet`] by block-union, and delta members that share a
//! key **and** a comparison base form a *cohort* sorted by qualification
//! threshold — one `|Δ|` plus one binary search decides, for the whole
//! cohort, which members the tuple can possibly touch.
//!
//! Every state transition here mirrors the trait-object implementations in
//! `crate::filter` **verbatim** (same float comparisons, same event
//! order); the equivalence suite pins the two byte-identical.

use super::{Expr, Gate, RosterPlan};
use crate::batch::TupleBatch;
use crate::bitset::FilterSet;
use crate::candidate::{CandidateTuple, CloseCause, ClosedSet, FilterAction, FilterId, TimeCover};
use crate::engine::Algorithm;
use crate::error::Error;
use crate::filter::ForceCloseOutcome;
use crate::quality::{FilterSpec, PickDegree, Prescription};
use crate::schema::{AttrId, Schema};
use crate::time::Micros;
use crate::tuple::{Tuple, TupleId};
use std::collections::BTreeMap;

/// Everything one tuple did to the roster, in packed form: membership
/// bits for the common events (admission, reference) written a block at a
/// time, and an ordered sparse list of the rare ones (dismissals,
/// closures). The engine replays it slot-by-slot through the same
/// bookkeeping the trait-object path uses.
#[derive(Debug, Default)]
pub(crate) struct StepActions {
    /// Slots whose open set admitted the tuple.
    pub(crate) admitted: FilterSet,
    /// Slots for which the tuple is a reference output.
    pub(crate) references: FilterSet,
    /// Every slot with at least one event this step (superset of the
    /// above plus the event slots) — the engine's iteration order.
    pub(crate) touched: FilterSet,
    /// Rare events, ascending by slot; at most one entry per slot.
    pub(crate) events: Vec<(u32, StepEvent)>,
}

/// The non-bitmask events one filter produced for one tuple.
#[derive(Debug, Default)]
pub(crate) struct StepEvent {
    /// Ids dismissed from the filter's open set.
    pub(crate) dismissed: Vec<TupleId>,
    /// A candidate set that closed during this step.
    pub(crate) closed: Option<ClosedSet>,
}

impl StepActions {
    fn clear(&mut self) {
        self.admitted.clear();
        self.references.clear();
        self.touched.clear();
        self.events.clear();
    }
}

/// Folds a per-filter [`FilterAction`] into the step.
fn record(step: &mut StepActions, slot: u32, action: FilterAction) {
    let id = FilterId::from_index(slot as usize);
    let mut any = false;
    if action.admitted {
        step.admitted.insert(id);
        any = true;
    }
    if action.reference {
        step.references.insert(id);
        any = true;
    }
    if !action.dismissed.is_empty() || action.closed.is_some() {
        any = true;
        step.events.push((
            slot,
            StepEvent {
                dismissed: action.dismissed,
                closed: action.closed,
            },
        ));
    }
    if any {
        step.touched.insert(id);
    }
}

fn candidate_at(id: TupleId, ts: Micros, key: f64) -> CandidateTuple {
    CandidateTuple {
        id,
        timestamp: ts,
        key,
    }
}

fn cover_of(open: &[CandidateTuple]) -> Option<TimeCover> {
    let first = open.first()?;
    let last = open.last()?;
    Some(TimeCover {
        min: first.timestamp,
        max: last.timestamp,
    })
}

/// One shared key derivation, executed once per tuple for its whole class
/// (the hoisted-load form of the pure [`Expr`] key).
#[derive(Debug, Clone)]
enum KeyDeriver {
    Single(AttrId),
    Trend {
        attr: AttrId,
        prev: Option<(Micros, f64)>,
    },
    Mean(Vec<AttrId>),
}

impl KeyDeriver {
    fn from_expr(key: &Expr) -> KeyDeriver {
        match key {
            Expr::Attr(a) => KeyDeriver::Single(*a),
            Expr::Trend(a) => KeyDeriver::Trend {
                attr: *a,
                prev: None,
            },
            Expr::Mean(attrs) => KeyDeriver::Mean(attrs.clone()),
            other => unreachable!("lowering only emits Attr/Trend/Mean keys, got {other}"),
        }
    }

    /// Mirrors `filter::delta::Deriver::derive` exactly (same summation
    /// order, same error-before-state-update rule for trends).
    fn derive(&mut self, tuple: &Tuple) -> Result<f64, Error> {
        match self {
            KeyDeriver::Single(a) => tuple.require(*a),
            KeyDeriver::Trend { attr, prev } => {
                let v = tuple.require(*attr)?;
                let now = tuple.timestamp();
                let trend = match *prev {
                    Some((t0, v0)) if now > t0 => (v - v0) / (now - t0).as_secs_f64(),
                    _ => 0.0,
                };
                *prev = Some((now, v));
                Ok(trend)
            }
            KeyDeriver::Mean(attrs) => {
                let mut sum = 0.0;
                for a in attrs.iter() {
                    sum += tuple.require(*a)?;
                }
                Ok(sum / attrs.len() as f64)
            }
        }
    }

    /// First row of `batch[..rows]` whose [`derive`](Self::derive) would
    /// fail (a required attribute is NaN), or `rows` when every row is
    /// derivable. Pure — no deriver state is touched.
    fn first_missing_row(&self, batch: &TupleBatch, rows: usize) -> usize {
        let first_nan = |a: &AttrId| -> usize {
            batch.column(*a)[..rows]
                .iter()
                .position(|v| v.is_nan())
                .unwrap_or(rows)
        };
        match self {
            KeyDeriver::Single(a) => first_nan(a),
            KeyDeriver::Trend { attr, .. } => first_nan(attr),
            KeyDeriver::Mean(attrs) => attrs.iter().map(first_nan).min().unwrap_or(rows),
        }
    }

    /// Derives `out[0..rows]` column-at-a-time. Every float operation
    /// happens in exactly the order the per-row [`derive`](Self::derive)
    /// loop would have used (rows outer, attributes inner), so the
    /// results — and any trend state left behind — are bit-identical.
    /// The caller guarantees (via [`first_missing_row`]) that no required
    /// value in `0..rows` is NaN.
    ///
    /// [`first_missing_row`]: Self::first_missing_row
    fn derive_column(&mut self, batch: &TupleBatch, rows: usize, out: &mut Vec<f64>) {
        out.clear();
        match self {
            KeyDeriver::Single(a) => out.extend_from_slice(&batch.column(*a)[..rows]),
            KeyDeriver::Trend { attr, prev } => {
                let col = &batch.column(*attr)[..rows];
                for (r, &v) in col.iter().enumerate() {
                    let now = batch.timestamp(r);
                    let trend = match *prev {
                        Some((t0, v0)) if now > t0 => (v - v0) / (now - t0).as_secs_f64(),
                        _ => 0.0,
                    };
                    *prev = Some((now, v));
                    out.push(trend);
                }
            }
            KeyDeriver::Mean(attrs) => {
                for r in 0..rows {
                    let mut sum = 0.0;
                    for a in attrs.iter() {
                        sum += batch.column(*a)[r];
                    }
                    out.push(sum / attrs.len() as f64);
                }
            }
        }
    }
}

/// Phase of a delta member's admission automaton (mirror of
/// `filter::delta::Phase`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Initial,
    Searching,
    Tentative,
    Vicinity,
}

/// Where an occupied roster slot's state lives.
#[derive(Debug, Clone, Copy)]
enum MemberRef {
    /// Index into the [`DeltaArena`].
    Delta(u32),
    /// Index into the [`WindowArena`].
    Window(u32),
}

/// Struct-of-arrays state of every delta member, indexed by member id.
/// The method bodies mirror `filter::delta::DeltaCore` statement for
/// statement — only the storage layout differs.
#[derive(Debug, Default)]
struct DeltaArena {
    slot: Vec<u32>,
    class: Vec<u32>,
    delta: Vec<f64>,
    slack: Vec<f64>,
    /// `delta - slack`: the cohort sort key ("qualification threshold" —
    /// the least distance `search_step` reacts to).
    qualify: Vec<f64>,
    stateful: Vec<bool>,
    phase: Vec<Phase>,
    base: Vec<f64>,
    reference_val: Vec<f64>,
    reference_id: Vec<Option<TupleId>>,
    set_index: Vec<u64>,
    open: Vec<Vec<CandidateTuple>>,
}

impl DeltaArena {
    fn push_member(
        &mut self,
        slot: u32,
        class: u32,
        delta: f64,
        slack: f64,
        stateful: bool,
    ) -> u32 {
        let m = self.slot.len() as u32;
        self.slot.push(slot);
        self.class.push(class);
        self.delta.push(delta);
        self.slack.push(slack);
        self.qualify.push(delta - slack);
        self.stateful.push(stateful);
        self.phase.push(Phase::Initial);
        self.base.push(0.0);
        self.reference_val.push(0.0);
        self.reference_id.push(None);
        self.set_index.push(0);
        self.open.push(Vec::new());
        m
    }

    fn seal(&mut self, m: usize, cause: CloseCause) -> ClosedSet {
        let candidates = std::mem::take(&mut self.open[m]);
        let si_choice = self.reference_id[m].take().into_iter().collect();
        let set = ClosedSet {
            filter: FilterId::from_index(self.slot[m] as usize),
            set_index: self.set_index[m],
            candidates,
            pick_degree: 1,
            prescription: Prescription::Any,
            si_choice,
            cause,
        };
        self.set_index[m] += 1;
        self.phase[m] = Phase::Searching;
        set
    }

    fn on_reference(
        &mut self,
        m: usize,
        id: TupleId,
        ts: Micros,
        key: f64,
        action: &mut FilterAction,
    ) {
        // Keep only the contiguous run (by id, i.e. arrival order)
        // immediately preceding the reference whose keys are within slack
        // of it.
        let mut keep_from = self.open[m].len();
        let mut expected = id;
        for (i, c) in self.open[m].iter().enumerate().rev() {
            if c.id.next() == expected && (c.key - key).abs() <= self.slack[m] {
                keep_from = i;
                expected = c.id;
            } else {
                break;
            }
        }
        for c in self.open[m].drain(..keep_from) {
            action.dismissed.push(c.id);
        }
        self.open[m].push(candidate_at(id, ts, key));
        self.reference_id[m] = Some(id);
        self.reference_val[m] = key;
        if !self.stateful[m] {
            self.base[m] = key;
        }
        self.phase[m] = Phase::Vicinity;
        action.admitted = true;
        action.reference = true;
    }

    fn search_step(
        &mut self,
        m: usize,
        id: TupleId,
        ts: Micros,
        key: f64,
        action: &mut FilterAction,
    ) {
        let dist = (key - self.base[m]).abs();
        if dist >= self.delta[m] {
            self.on_reference(m, id, ts, key, action);
        } else if dist >= self.delta[m] - self.slack[m] {
            self.open[m].push(candidate_at(id, ts, key));
            self.phase[m] = Phase::Tentative;
            action.admitted = true;
        }
    }

    fn force_close(&mut self, m: usize, cause: CloseCause) -> ForceCloseOutcome {
        match self.phase[m] {
            Phase::Vicinity => ForceCloseOutcome {
                closed: Some(self.seal(m, cause)),
                dismissed: Vec::new(),
            },
            Phase::Tentative => {
                let dismissed = self.open[m].drain(..).map(|c| c.id).collect();
                self.phase[m] = Phase::Searching;
                ForceCloseOutcome {
                    closed: None,
                    dismissed,
                }
            }
            Phase::Initial | Phase::Searching => ForceCloseOutcome::default(),
        }
    }
}

/// Gate parameters of one window member.
#[derive(Debug, Clone, Copy)]
enum WindowGate {
    Reservoir {
        k: u32,
    },
    Stratified {
        threshold: f64,
        high_pct: f64,
        low_pct: f64,
        prescription: Prescription,
    },
}

/// Struct-of-arrays state of every sampling-window member. Mirrors
/// `filter::sampling::{ReservoirSampler, StratifiedSampler}`.
#[derive(Debug, Default)]
struct WindowArena {
    slot: Vec<u32>,
    window: Vec<Micros>,
    gate: Vec<WindowGate>,
    current: Vec<Option<u64>>,
    min_val: Vec<f64>,
    max_val: Vec<f64>,
    set_index: Vec<u64>,
    open: Vec<Vec<CandidateTuple>>,
}

impl WindowArena {
    fn push_member(&mut self, slot: u32, window: Micros, gate: WindowGate) -> u32 {
        let m = self.slot.len() as u32;
        self.slot.push(slot);
        self.window.push(window);
        self.gate.push(gate);
        self.current.push(None);
        self.min_val.push(f64::INFINITY);
        self.max_val.push(f64::NEG_INFINITY);
        self.set_index.push(0);
        self.open.push(Vec::new());
        m
    }

    /// One tuple through one window member: maybe close the previous
    /// window, then accumulate. Admission is unconditional and recorded by
    /// the caller's block-union, not here.
    fn step(&mut self, m: usize, id: TupleId, ts: Micros, v: f64) -> Option<ClosedSet> {
        let w = ts.as_micros() / self.window[m].as_micros().max(1);
        let mut closed = None;
        if self.current[m] != Some(w) {
            if self.current[m].is_some() {
                closed = self.seal(m, CloseCause::Natural);
            }
            self.current[m] = Some(w);
        }
        self.open[m].push(candidate_at(id, ts, v));
        if matches!(self.gate[m], WindowGate::Stratified { .. }) {
            self.min_val[m] = self.min_val[m].min(v);
            self.max_val[m] = self.max_val[m].max(v);
        }
        closed
    }

    fn seal(&mut self, m: usize, cause: CloseCause) -> Option<ClosedSet> {
        if self.open[m].is_empty() {
            return None;
        }
        let candidates = std::mem::take(&mut self.open[m]);
        let (pick_degree, prescription) = match self.gate[m] {
            WindowGate::Reservoir { k } => ((k as usize).min(candidates.len()), Prescription::Any),
            WindowGate::Stratified {
                threshold,
                high_pct,
                low_pct,
                prescription,
            } => {
                let rate = if self.max_val[m] - self.min_val[m] >= threshold {
                    high_pct
                } else {
                    low_pct
                };
                self.min_val[m] = f64::INFINITY;
                self.max_val[m] = f64::NEG_INFINITY;
                (
                    PickDegree::Percent(rate).resolve(candidates.len()),
                    prescription,
                )
            }
        };
        let si_choice = crate::filter::StratifiedSampler::si_sample(&candidates, pick_degree);
        let set = ClosedSet {
            filter: FilterId::from_index(self.slot[m] as usize),
            set_index: self.set_index[m],
            candidates,
            pick_degree,
            prescription,
            si_choice,
            cause,
        };
        self.set_index[m] += 1;
        Some(set)
    }
}

/// Run-time bookkeeping of one key-derivation class: the shared deriver
/// plus its members bucketed by automaton situation, so the per-tuple pass
/// touches each bucket with the cheapest loop that is still exact.
#[derive(Debug)]
struct ClassState {
    deriver: KeyDeriver,
    /// Delta members that have not seen a tuple yet (first tuple is always
    /// a reference).
    initial: Vec<u32>,
    /// Delta members in the vicinity phase (compare against their own
    /// `reference_val`).
    vicinity: Vec<u32>,
    /// Delta members searching/tentative, grouped by comparison-base bits;
    /// each cohort is sorted ascending by `(qualify, member)`, so
    /// `partition_point` over one shared distance yields exactly the
    /// members `search_step` would touch.
    cohorts: BTreeMap<u64, Vec<u32>>,
    /// Window members of this class.
    window_members: Vec<u32>,
    /// Recipient bits of `window_members` — window admission is
    /// unconditional, so one block-union fills them all.
    sampler_mask: FilterSet,
}

/// Inserts `m` into the cohort for its current base, keeping the
/// `(qualify, member)` sort order.
fn insert_cohort(class: &mut ClassState, delta: &DeltaArena, m: u32) {
    let list = class
        .cohorts
        .entry(delta.base[m as usize].to_bits())
        .or_default();
    let q = delta.qualify[m as usize];
    let pos = list.partition_point(|&o| (delta.qualify[o as usize], o) <= (q, m));
    list.insert(pos, m);
}

/// Removes `m` from the cohort keyed by `bits` (its base at insertion
/// time).
fn remove_from_cohort(class: &mut ClassState, bits: u64, m: u32) {
    if let Some(list) = class.cohorts.get_mut(&bits) {
        list.retain(|&o| o != m);
        if list.is_empty() {
            class.cohorts.remove(&bits);
        }
    }
}

/// Dense bitmask over engine slots whose open candidate set is currently
/// non-empty. Maintained at every arena mutation site, so the batch
/// ingest path can enumerate open covers in O(open slots) instead of
/// scanning the whole roster each row. Bits are exact (set iff the slot's
/// open set is non-empty) and iteration is ascending by slot, so the
/// cover list it yields is identical to a full roster scan.
#[derive(Debug, Default)]
struct OpenIndex {
    words: Vec<u64>,
    /// Cover of each slot's open set, valid only where the bit is set.
    /// Written at mutation time — when the open vec is hot in cache — so
    /// the per-row drain reads one dense array instead of chasing
    /// `member_of` → arena → candidate vec per open slot.
    covers: Vec<TimeCover>,
}

impl OpenIndex {
    fn with_slots(n: usize) -> OpenIndex {
        OpenIndex {
            words: vec![0; n.div_ceil(64)],
            covers: vec![TimeCover::point(Micros::ZERO); n],
        }
    }

    #[inline]
    fn update(&mut self, slot: usize, cover: Option<TimeCover>) {
        let (w, b) = (slot / 64, slot % 64);
        match cover {
            Some(c) => {
                self.words[w] |= 1 << b;
                self.covers[slot] = c;
            }
            None => self.words[w] &= !(1 << b),
        }
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            // `successors` computes the next value eagerly, so the
            // clear-lowest-bit step must be total at w = 0.
            std::iter::successors(Some(word), |&w| Some(w & w.wrapping_sub(1)))
                .take_while(|&w| w != 0)
                .map(move |w| wi * 64 + w.trailing_zeros() as usize)
        })
    }
}

/// A roster compiled into fused evaluators: the execution form of a
/// [`RosterPlan`].
///
/// Construction is a pure function of `(roster, schema, algorithm)` — the
/// compiled state holds nothing a snapshot would need to persist, which is
/// what keeps [`GroupSnapshot`](crate::snapshot::GroupSnapshot) format-
/// stable: restore simply recompiles. The engine recompiles at every epoch
/// safe point (vacancy holes preserved), exactly when the trait-object
/// tier would rebuild its filters.
#[derive(Debug)]
pub struct CompiledRoster {
    plan: RosterPlan,
    classes: Vec<ClassState>,
    delta: DeltaArena,
    windows: WindowArena,
    /// Per engine slot: where that filter's state lives (`None` =
    /// vacancy).
    member_of: Vec<Option<MemberRef>>,
    /// Per-class derived-key scratch, refilled each tuple.
    keys: Vec<f64>,
    /// Per-class derived-key *columns*, refilled each batch by
    /// [`derive_batch`](Self::derive_batch) (class-major; allocations are
    /// reused across batches).
    key_cols: Vec<Vec<f64>>,
    /// Relocation scratch (members changing bucket mid-pass are staged so
    /// a tuple never reaches the same member twice).
    to_vicinity: Vec<u32>,
    to_cohort: Vec<u32>,
    /// Slots whose open set is non-empty (batch-path cover enumeration).
    open_idx: OpenIndex,
}

impl CompiledRoster {
    /// Lowers and compiles a roster (occupied `(id, spec)` slots,
    /// ascending by id).
    ///
    /// # Errors
    /// Exactly the errors filter instantiation would report, in the same
    /// slot order ([`super::FilterPlan::lower`]).
    pub fn compile<'a>(
        roster: impl IntoIterator<Item = (FilterId, &'a FilterSpec)>,
        schema: &Schema,
        algorithm: Algorithm,
    ) -> Result<CompiledRoster, Error> {
        let plan = RosterPlan::lower(roster, schema, algorithm)?;
        let mut classes: Vec<ClassState> = plan
            .classes
            .iter()
            .map(|key| ClassState {
                deriver: KeyDeriver::from_expr(key),
                initial: Vec::new(),
                vicinity: Vec::new(),
                cohorts: BTreeMap::new(),
                window_members: Vec::new(),
                sampler_mask: FilterSet::new(),
            })
            .collect();
        let mut darena = DeltaArena::default();
        let mut warena = WindowArena::default();
        let width = plan.filters.last().map_or(0, |fp| fp.id.index() + 1);
        let mut member_of: Vec<Option<MemberRef>> = vec![None; width];
        for (i, fp) in plan.filters.iter().enumerate() {
            let ci = plan.class_of[i];
            let slot = fp.id.index() as u32;
            match fp.gate {
                Gate::Delta {
                    delta,
                    slack,
                    stateful,
                } => {
                    let m = darena.push_member(slot, ci as u32, delta, slack, stateful);
                    classes[ci].initial.push(m);
                    member_of[slot as usize] = Some(MemberRef::Delta(m));
                }
                Gate::Reservoir { window, k } => {
                    let m = warena.push_member(slot, window, WindowGate::Reservoir { k });
                    classes[ci].window_members.push(m);
                    classes[ci].sampler_mask.insert(fp.id);
                    member_of[slot as usize] = Some(MemberRef::Window(m));
                }
                Gate::Stratified {
                    window,
                    threshold,
                    high_pct,
                    low_pct,
                    prescription,
                } => {
                    let m = warena.push_member(
                        slot,
                        window,
                        WindowGate::Stratified {
                            threshold,
                            high_pct,
                            low_pct,
                            prescription,
                        },
                    );
                    classes[ci].window_members.push(m);
                    classes[ci].sampler_mask.insert(fp.id);
                    member_of[slot as usize] = Some(MemberRef::Window(m));
                }
            }
        }
        let keys = vec![0.0; classes.len()];
        let key_cols = vec![Vec::new(); classes.len()];
        Ok(CompiledRoster {
            plan,
            classes,
            delta: darena,
            windows: warena,
            member_of,
            keys,
            key_cols,
            to_vicinity: Vec::new(),
            to_cohort: Vec::new(),
            open_idx: OpenIndex::with_slots(width),
        })
    }

    /// The logical plan this roster was compiled from.
    pub fn plan(&self) -> &RosterPlan {
        &self.plan
    }

    /// Number of shared key-derivation classes (the CSE result).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of compiled filter members.
    pub fn member_count(&self) -> usize {
        self.delta.slot.len() + self.windows.slot.len()
    }

    /// Runs one tuple through every member in a single pass, filling
    /// `step` with the roster's combined actions.
    ///
    /// # Errors
    /// The first derivation error in class (= first-use slot) order —
    /// identical to the error the slot loop would return.
    pub(crate) fn process_tuple(
        &mut self,
        tuple: &Tuple,
        step: &mut StepActions,
    ) -> Result<(), Error> {
        step.clear();
        // Stage 1 — hoisted loads: derive every distinct key once.
        for (ci, class) in self.classes.iter_mut().enumerate() {
            self.keys[ci] = class.deriver.derive(tuple)?;
        }
        self.evaluate_derived(tuple.id(), tuple.timestamp(), step);
        Ok(())
    }

    /// Derives every key class over `batch` column-at-a-time, filling the
    /// per-class key columns for [`evaluate_row`](Self::evaluate_row).
    ///
    /// Returns the number of *derivable* leading rows: the prefix before
    /// the first row on which any class's derivation would fail (a
    /// required value is NaN). Deriver state (trend history) advances for
    /// exactly that prefix, so delegating the failing row to the
    /// single-tuple path afterwards reproduces the per-tuple run — error,
    /// partial state and all — bit for bit.
    pub(crate) fn derive_batch(&mut self, batch: &TupleBatch) -> usize {
        let rows = batch.rows();
        let ok_rows = self
            .classes
            .iter()
            .map(|c| c.deriver.first_missing_row(batch, rows))
            .min()
            .unwrap_or(rows);
        for (ci, class) in self.classes.iter_mut().enumerate() {
            class
                .deriver
                .derive_column(batch, ok_rows, &mut self.key_cols[ci]);
        }
        ok_rows
    }

    /// Runs one already-derived batch row through every member — stage 2
    /// of [`process_tuple`] against row `r`'s column of keys. Only valid
    /// for `r` within the prefix the last [`derive_batch`](Self::derive_batch)
    /// returned.
    ///
    /// [`process_tuple`]: Self::process_tuple
    pub(crate) fn evaluate_row(
        &mut self,
        r: usize,
        id: TupleId,
        ts: Micros,
        step: &mut StepActions,
    ) {
        step.clear();
        for ci in 0..self.keys.len() {
            self.keys[ci] = self.key_cols[ci][r];
        }
        self.evaluate_derived(id, ts, step);
    }

    /// Stage 2 — fused evaluation per class over `self.keys`. Shared by
    /// the per-tuple and columnar paths: the tuple identity is fully
    /// captured by `(id, ts, keys)`, so both paths run the identical
    /// member loops and produce the identical step.
    fn evaluate_derived(&mut self, id: TupleId, ts: Micros, step: &mut StepActions) {
        for ci in 0..self.classes.len() {
            let key = self.keys[ci];
            // Window members: accumulate, closing on window boundaries;
            // admission is one block-union over the whole class.
            for wi in 0..self.classes[ci].window_members.len() {
                let m = self.classes[ci].window_members[wi] as usize;
                if let Some(set) = self.windows.step(m, id, ts, key) {
                    let slot = self.windows.slot[m];
                    step.events.push((
                        slot,
                        StepEvent {
                            dismissed: Vec::new(),
                            closed: Some(set),
                        },
                    ));
                }
                // `step` always pushes the current tuple.
                self.open_idx.update(
                    self.windows.slot[m] as usize,
                    cover_of(&self.windows.open[m]),
                );
            }
            step.admitted.union_with(&self.classes[ci].sampler_mask);
            step.touched.union_with(&self.classes[ci].sampler_mask);

            // Delta members still in Initial: first tuple is a reference.
            for ii in 0..self.classes[ci].initial.len() {
                let m = self.classes[ci].initial[ii] as usize;
                let mut action = FilterAction::none();
                self.delta.on_reference(m, id, ts, key, &mut action);
                // The reference itself stays open.
                self.open_idx
                    .update(self.delta.slot[m] as usize, cover_of(&self.delta.open[m]));
                record(step, self.delta.slot[m], action);
                self.to_vicinity.push(m as u32);
            }
            self.classes[ci].initial.clear();

            // Vicinity members: within slack of their own reference stay
            // open; otherwise seal and fall through to the search step.
            let mut vi = 0;
            while vi < self.classes[ci].vicinity.len() {
                let m = self.classes[ci].vicinity[vi] as usize;
                let mut action = FilterAction::none();
                if (key - self.delta.reference_val[m]).abs() <= self.delta.slack[m] {
                    self.delta.open[m].push(candidate_at(id, ts, key));
                    action.admitted = true;
                } else {
                    action.closed = Some(self.delta.seal(m, CloseCause::Natural));
                    self.delta.search_step(m, id, ts, key, &mut action);
                }
                self.open_idx
                    .update(self.delta.slot[m] as usize, cover_of(&self.delta.open[m]));
                record(step, self.delta.slot[m], action);
                if self.delta.phase[m] == Phase::Vicinity {
                    vi += 1;
                } else {
                    self.classes[ci].vicinity.swap_remove(vi);
                    self.to_cohort.push(m as u32);
                }
            }

            // Cohorts: one distance + one binary search per distinct
            // base; the non-qualifying suffix provably produces no
            // action, so only the qualifying prefix runs `search_step`.
            for (&bits, members) in self.classes[ci].cohorts.iter_mut() {
                let base = f64::from_bits(bits);
                let dist = (key - base).abs();
                let cut = members.partition_point(|&m| self.delta.qualify[m as usize] <= dist);
                if cut == 0 {
                    continue;
                }
                let mut w = 0;
                for r in 0..members.len() {
                    let m = members[r] as usize;
                    if r < cut {
                        let mut action = FilterAction::none();
                        self.delta.search_step(m, id, ts, key, &mut action);
                        self.open_idx
                            .update(self.delta.slot[m] as usize, cover_of(&self.delta.open[m]));
                        record(step, self.delta.slot[m], action);
                        if self.delta.phase[m] == Phase::Vicinity {
                            self.to_vicinity.push(m as u32);
                            continue; // leaves the cohort
                        }
                    }
                    members[w] = members[r];
                    w += 1;
                }
                members.truncate(w);
            }
            self.classes[ci].cohorts.retain(|_, v| !v.is_empty());

            // Staged relocations (never within the same scan, so a tuple
            // reaches each member exactly once).
            let moved = std::mem::take(&mut self.to_vicinity);
            self.classes[ci].vicinity.extend_from_slice(&moved);
            self.to_vicinity = moved;
            self.to_vicinity.clear();
            for i in 0..self.to_cohort.len() {
                let m = self.to_cohort[i];
                insert_cohort(&mut self.classes[ci], &self.delta, m);
            }
            self.to_cohort.clear();
        }
        // Engine replay order is ascending slot (≤ 1 event per slot).
        step.events.sort_unstable_by_key(|(slot, _)| *slot);
    }

    /// Force-closes the open set of the filter in `slot` (timely cut /
    /// epoch boundary / end of stream). No-op for vacancies.
    pub(crate) fn force_close(&mut self, slot: usize, cause: CloseCause) -> ForceCloseOutcome {
        match self.member_of.get(slot).copied().flatten() {
            Some(MemberRef::Window(m)) => {
                let closed = self.windows.seal(m as usize, cause);
                self.open_idx.update(slot, None);
                ForceCloseOutcome {
                    closed,
                    dismissed: Vec::new(),
                }
            }
            Some(MemberRef::Delta(m)) => {
                let mi = m as usize;
                let was_vicinity = self.delta.phase[mi] == Phase::Vicinity;
                let out = self.delta.force_close(mi, cause);
                self.open_idx.update(slot, cover_of(&self.delta.open[mi]));
                if was_vicinity {
                    // Sealed out of the vicinity: the member now searches
                    // from its (unchanged) base.
                    let ci = self.delta.class[mi] as usize;
                    self.classes[ci].vicinity.retain(|&o| o != m);
                    insert_cohort(&mut self.classes[ci], &self.delta, m);
                }
                out
            }
            None => ForceCloseOutcome::default(),
        }
    }

    /// Informs a stateful member which value the group chose for its last
    /// set, rebasing its cohort membership if the base moved.
    pub(crate) fn output_chosen(&mut self, slot: usize, key: f64) {
        if let Some(MemberRef::Delta(m)) = self.member_of.get(slot).copied().flatten() {
            let mi = m as usize;
            if !self.delta.stateful[mi] {
                return;
            }
            let old = self.delta.base[mi];
            self.delta.base[mi] = key;
            if old.to_bits() != key.to_bits()
                && matches!(self.delta.phase[mi], Phase::Searching | Phase::Tentative)
            {
                let ci = self.delta.class[mi] as usize;
                remove_from_cohort(&mut self.classes[ci], old.to_bits(), m);
                insert_cohort(&mut self.classes[ci], &self.delta, m);
            }
        }
    }

    /// Time cover of the open set of the filter in `slot`.
    pub(crate) fn open_cover(&self, slot: usize) -> Option<TimeCover> {
        match self.member_of.get(slot).copied().flatten()? {
            MemberRef::Delta(m) => cover_of(&self.delta.open[m as usize]),
            MemberRef::Window(m) => cover_of(&self.windows.open[m as usize]),
        }
    }

    /// Fills `out` (cleared first) with the cover of every slot whose
    /// open set is non-empty, ascending by slot — the identical list a
    /// full roster scan produces, in O(open slots). The batch ingest
    /// path calls this once per row for its region-drain check.
    pub(crate) fn open_covers_into(&self, out: &mut Vec<TimeCover>) {
        out.clear();
        for slot in self.open_idx.iter() {
            out.push(self.open_idx.covers[slot]);
        }
    }

    /// Number of candidates in the open set of the filter in `slot`.
    pub(crate) fn open_len(&self, slot: usize) -> usize {
        match self.member_of.get(slot).copied().flatten() {
            Some(MemberRef::Delta(m)) => self.delta.open[m as usize].len(),
            Some(MemberRef::Window(m)) => self.windows.open[m as usize].len(),
            None => 0,
        }
    }

    /// Whether the filter in `slot` emits at reference identification
    /// under the self-interested baseline (DC yes, samplers no).
    pub(crate) fn si_emits_at_reference(&self, slot: usize) -> bool {
        !matches!(
            self.member_of.get(slot).copied().flatten(),
            Some(MemberRef::Window(_))
        )
    }

    /// Whether the filter in `slot` is stateful.
    pub(crate) fn is_stateful(&self, slot: usize) -> bool {
        match self.member_of.get(slot).copied().flatten() {
            Some(MemberRef::Delta(m)) => self.delta.stateful[m as usize],
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{build_filter, GroupFilter};
    use crate::tuple::series;

    /// Drives the compiled roster and the trait objects over the same
    /// stream and asserts identical per-slot actions at every tuple.
    fn assert_lockstep(specs: Vec<FilterSpec>, algorithm: Algorithm, points: &[(u64, f64)]) {
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", points);
        let roster: Vec<(FilterId, FilterSpec)> = specs
            .into_iter()
            .enumerate()
            .map(|(i, s)| (FilterId::from_index(i), s))
            .collect();
        let mut compiled =
            CompiledRoster::compile(roster.iter().map(|(id, s)| (*id, s)), &schema, algorithm)
                .unwrap();
        let mut oracles: Vec<Box<dyn GroupFilter>> = roster
            .iter()
            .map(|(id, s)| {
                let effective = if s.is_stateful() && algorithm == Algorithm::SelfInterested {
                    let mut s = s.clone();
                    if let crate::quality::FilterKind::Delta { dependency, .. } = &mut s.kind {
                        *dependency = crate::quality::Dependency::Stateless;
                    }
                    s
                } else {
                    s.clone()
                };
                build_filter(&effective, *id, &schema).unwrap()
            })
            .collect();
        let mut step = StepActions::default();
        for t in &tuples {
            compiled.process_tuple(t, &mut step).unwrap();
            let mut events = std::mem::take(&mut step.events);
            events.reverse(); // pop from the front via pop()
            for (slot, oracle) in oracles.iter_mut().enumerate() {
                let want = oracle.process(t).unwrap();
                let id = FilterId::from_index(slot);
                assert_eq!(
                    step.admitted.contains(id),
                    want.admitted,
                    "admit slot {slot}"
                );
                assert_eq!(
                    step.references.contains(id),
                    want.reference,
                    "reference slot {slot}"
                );
                let ev = match events.last() {
                    Some((s, _)) if *s as usize == slot => {
                        let (_, ev) = events.pop().expect("peeked");
                        ev
                    }
                    _ => StepEvent::default(),
                };
                assert_eq!(ev.dismissed, want.dismissed, "dismissed slot {slot}");
                assert_eq!(ev.closed, want.closed, "closed slot {slot}");
            }
            assert!(events.is_empty(), "event for a slot that saw none");
        }
        for (slot, oracle) in oracles.iter_mut().enumerate() {
            let want = oracle.force_close(CloseCause::EndOfStream);
            let got = compiled.force_close(slot, CloseCause::EndOfStream);
            assert_eq!(got, want, "force_close slot {slot}");
        }
    }

    fn paper_points() -> Vec<(u64, f64)> {
        vec![
            (10, 0.0),
            (20, 35.0),
            (30, 29.0),
            (40, 45.0),
            (50, 50.0),
            (60, 59.0),
            (70, 80.0),
            (80, 97.0),
            (90, 100.0),
            (100, 112.0),
        ]
    }

    #[test]
    fn lockstep_on_the_paper_roster() {
        assert_lockstep(
            vec![
                FilterSpec::delta("t", 50.0, 10.0),
                FilterSpec::delta("t", 40.0, 5.0),
                FilterSpec::delta("t", 80.0, 25.0),
            ],
            Algorithm::RegionGreedy,
            &paper_points(),
        );
    }

    #[test]
    fn lockstep_with_samplers_and_trends() {
        assert_lockstep(
            vec![
                FilterSpec::delta("t", 50.0, 10.0),
                FilterSpec::trend_delta("t", 400.0, 40.0),
                FilterSpec::reservoir("t", Micros::from_millis(30), 2),
                FilterSpec::stratified_sample("t", Micros::from_millis(40), 20.0, 60.0, 25.0),
                FilterSpec::multi_attr_delta(["t"], 30.0, 3.0),
            ],
            Algorithm::PerCandidateSet,
            &paper_points(),
        );
    }

    #[test]
    fn lockstep_with_stateful_under_si() {
        assert_lockstep(
            vec![
                FilterSpec::stateful_delta("t", 50.0, 10.0),
                FilterSpec::delta("t", 50.0, 10.0),
            ],
            Algorithm::SelfInterested,
            &paper_points(),
        );
    }

    #[test]
    fn cse_shares_identical_attrs() {
        let schema = Schema::new(["t"]);
        let specs = [
            FilterSpec::delta("t", 50.0, 10.0),
            FilterSpec::delta("t", 40.0, 5.0),
            FilterSpec::reservoir("t", Micros::from_millis(100), 2),
        ];
        let compiled = CompiledRoster::compile(
            specs
                .iter()
                .enumerate()
                .map(|(i, s)| (FilterId::from_index(i), s)),
            &schema,
            Algorithm::RegionGreedy,
        )
        .unwrap();
        assert_eq!(compiled.class_count(), 1, "all three watch `t`");
        assert_eq!(compiled.member_count(), 3);
        assert!(!compiled.is_stateful(0));
        assert!(compiled.si_emits_at_reference(0));
        assert!(!compiled.si_emits_at_reference(2), "sampler emits at close");
    }

    #[test]
    fn cohort_cascade_skips_non_qualifying_members() {
        // Two filters share base 0 after the first reference; a small step
        // must only touch the tighter filter.
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", &[(10, 0.0), (20, 3.0), (30, 9.0)]);
        let specs = [
            FilterSpec::delta("t", 10.0, 2.0),
            FilterSpec::delta("t", 100.0, 2.0),
        ];
        let mut compiled = CompiledRoster::compile(
            specs
                .iter()
                .enumerate()
                .map(|(i, s)| (FilterId::from_index(i), s)),
            &schema,
            Algorithm::RegionGreedy,
        )
        .unwrap();
        let mut step = StepActions::default();
        compiled.process_tuple(&tuples[0], &mut step).unwrap();
        assert_eq!(step.references.len(), 2, "first tuple references both");
        compiled.process_tuple(&tuples[1], &mut step).unwrap();
        // 3.0 closes both vicinities (slack 2); dist 3 < qualify 8 and 98.
        assert!(step.admitted.is_empty());
        compiled.process_tuple(&tuples[2], &mut step).unwrap();
        // dist 9 ≥ 10−2 qualifies only the tight filter (tentative).
        assert!(step.admitted.contains(FilterId::from_index(0)));
        assert!(!step.admitted.contains(FilterId::from_index(1)));
        assert!(!step.touched.contains(FilterId::from_index(1)));
    }

    fn assert_steps_equal(a: &StepActions, b: &StepActions, ctx: &str) {
        assert_eq!(a.admitted, b.admitted, "admitted blocks: {ctx}");
        assert_eq!(a.references, b.references, "reference blocks: {ctx}");
        assert_eq!(a.touched, b.touched, "touched blocks: {ctx}");
        assert_eq!(a.events.len(), b.events.len(), "event count: {ctx}");
        for ((sa, ea), (sb, eb)) in a.events.iter().zip(&b.events) {
            assert_eq!(sa, sb, "event slot: {ctx}");
            assert_eq!(ea.dismissed, eb.dismissed, "dismissed: {ctx}");
            assert_eq!(ea.closed, eb.closed, "closed: {ctx}");
        }
    }

    /// Deterministic xorshift so the randomised oracle sweep needs no
    /// external RNG.
    struct XorShift(u64);

    impl XorShift {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn chance(&mut self, p: f64) -> bool {
            self.next_f64() < p
        }
    }

    /// The columnar-evaluation oracle: random rosters over random column
    /// batches (random batch splits, NaN holes included) produce, row for
    /// row, bit-identical block masks and events to both the per-tuple
    /// compiled pass and the interpreted trait objects.
    #[test]
    fn columnar_evaluation_matches_per_tuple_and_interpreted() {
        let schema = Schema::new(["t", "u"]);
        for seed in 1..=16u64 {
            let mut rng = XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            // Random roster: always one delta, plus a random mix of every
            // other taxonomy branch.
            let mut specs = vec![FilterSpec::delta(
                "t",
                15.0 + 25.0 * rng.next_f64(),
                2.0 + 5.0 * rng.next_f64(),
            )];
            if rng.chance(0.6) {
                specs.push(FilterSpec::delta("t", 35.0, 8.0));
            }
            if rng.chance(0.6) {
                specs.push(FilterSpec::trend_delta("t", 300.0, 50.0));
            }
            if rng.chance(0.6) {
                specs.push(FilterSpec::multi_attr_delta(["t", "u"], 25.0, 4.0));
            }
            if rng.chance(0.5) {
                specs.push(FilterSpec::reservoir("t", Micros::from_millis(50), 2));
            }
            if rng.chance(0.5) {
                specs.push(FilterSpec::stratified_sample(
                    "u",
                    Micros::from_millis(70),
                    30.0,
                    60.0,
                    20.0,
                ));
            }
            let roster: Vec<(FilterId, FilterSpec)> = specs
                .into_iter()
                .enumerate()
                .map(|(i, s)| (FilterId::from_index(i), s))
                .collect();
            let compile = |algorithm| {
                CompiledRoster::compile(roster.iter().map(|(id, s)| (*id, s)), &schema, algorithm)
                    .unwrap()
            };
            let mut by_tuple = compile(Algorithm::PerCandidateSet);
            let mut by_batch = compile(Algorithm::PerCandidateSet);
            let mut oracles: Vec<Box<dyn GroupFilter>> = roster
                .iter()
                .map(|(id, s)| build_filter(s, *id, &schema).unwrap())
                .collect();

            // Random column data: a walk on `t`, a correlated `u` with
            // occasional NaN holes on half the seeds.
            let mut tuples = Vec::new();
            let mut b = crate::tuple::TupleBuilder::new(&schema);
            let mut val = 50.0;
            for i in 0..200u64 {
                val += (rng.next_f64() - 0.5) * 40.0;
                b.at_millis(i * 10 + 1).set("t", val);
                if seed % 2 == 1 || !rng.chance(0.02) {
                    b.set("u", val * 0.5 + rng.next_f64());
                }
                tuples.push(b.build().unwrap());
            }

            let mut step_t = StepActions::default();
            let mut step_b = StepActions::default();
            let mut pos = 0usize;
            'stream: while pos < tuples.len() {
                let size = 1 + (rng.next_u64() % 9) as usize;
                let chunk = &tuples[pos..(pos + size).min(tuples.len())];
                let batch = TupleBatch::from_tuples(&schema, chunk).unwrap();
                let ok = by_batch.derive_batch(&batch);
                for (r, t) in chunk.iter().enumerate().take(ok) {
                    by_tuple.process_tuple(t, &mut step_t).unwrap();
                    by_batch.evaluate_row(r, t.id(), t.timestamp(), &mut step_b);
                    let ctx = format!("seed {seed} tuple {}", t.seq());
                    assert_steps_equal(&step_b, &step_t, &ctx);
                    // ... and the interpreted trait objects agree too.
                    for (slot, oracle) in oracles.iter_mut().enumerate() {
                        let want = oracle.process(t).unwrap();
                        let fid = FilterId::from_index(slot);
                        assert_eq!(step_b.admitted.contains(fid), want.admitted, "{ctx}");
                        assert_eq!(step_b.references.contains(fid), want.reference, "{ctx}");
                    }
                }
                if ok < chunk.len() {
                    // The failing row errors identically on both tiers;
                    // the engine stops a stream there, and so do we.
                    let row = batch.materialize_row(ok);
                    let e1 = by_tuple.process_tuple(&row, &mut step_t).unwrap_err();
                    let e2 = by_batch.process_tuple(&row, &mut step_b).unwrap_err();
                    assert_eq!(format!("{e1:?}"), format!("{e2:?}"), "seed {seed}");
                    break 'stream;
                }
                pos += chunk.len();
            }
        }
    }

    #[test]
    fn vacancies_are_inert() {
        let schema = Schema::new(["t"]);
        let spec = FilterSpec::delta("t", 10.0, 2.0);
        let mut compiled = CompiledRoster::compile(
            [(FilterId::from_index(1), &spec)],
            &schema,
            Algorithm::RegionGreedy,
        )
        .unwrap();
        assert_eq!(compiled.member_count(), 1);
        assert!(compiled.open_cover(0).is_none());
        assert_eq!(compiled.open_len(0), 0);
        assert_eq!(
            compiled.force_close(0, CloseCause::Cut),
            ForceCloseOutcome::default()
        );
        assert!(compiled.open_cover(7).is_none(), "past-width slots inert");
    }
}
