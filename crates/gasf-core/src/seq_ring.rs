//! Dense ring storage keyed by monotonically increasing sequence numbers.
//!
//! [`TuplePool`](crate::tuple::TuplePool) and
//! [`GroupUtility`](crate::utility::GroupUtility) both need the same
//! shape of storage: entries keyed by stream-ordered `u64` seqs that
//! enter near the back, leave near the front (region cleanup follows the
//! stream), and must resolve in O(1). [`SeqRing`] is that shared
//! mechanism — a `VecDeque` indexed by `seq - base`.
//!
//! **Spent seqs stay spent.** When the front of the ring is vacated,
//! `base` advances and never goes back — even across a full drain. A seq
//! below `base` is *spent*: `get` returns `None` and `set` refuses it.
//! This is what makes interned ids safe to hold: a stale id can never
//! alias a later entry's value.

use std::collections::VecDeque;

/// A dense ring of optional entries keyed by `u64` sequence numbers.
#[derive(Debug, Clone)]
pub(crate) struct SeqRing<T> {
    /// Seq of `slots[0]`. Seqs below `base` are spent forever.
    base: u64,
    slots: VecDeque<Option<T>>,
    live: usize,
}

impl<T> Default for SeqRing<T> {
    fn default() -> Self {
        SeqRing {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }
}

impl<T> SeqRing<T> {
    /// Creates an empty ring (all seqs fresh).
    #[cfg(test)]
    pub fn new() -> Self {
        SeqRing::default()
    }

    /// One past the highest seq ever stored (the next "fresh" seq).
    pub fn end(&self) -> u64 {
        self.base + self.slots.len() as u64
    }

    fn index(&self, seq: u64) -> Option<usize> {
        if seq < self.base {
            return None;
        }
        let idx = (seq - self.base) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// Stores `value` at `seq`, growing the ring (with vacant slots over
    /// any gap) as needed. Returns `false` — and stores nothing — if the
    /// seq is already spent. Replaces and drops any existing entry.
    pub fn set(&mut self, seq: u64, value: T) -> bool {
        if seq < self.base {
            return false;
        }
        if self.slots.is_empty() {
            // First entry at or past the spent frontier: rebase.
            self.base = seq;
        }
        for _ in self.end()..=seq {
            self.slots.push_back(None);
        }
        let idx = (seq - self.base) as usize;
        if self.slots[idx].is_none() {
            self.live += 1;
        }
        self.slots[idx] = Some(value);
        true
    }

    /// Pre-allocates room for `additional` more slots past the current
    /// end, so a bulk run of [`set`](Self::set)s performs at most one
    /// `VecDeque` growth instead of amortised per-entry reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
    }

    /// The entry at `seq`, if live.
    pub fn get(&self, seq: u64) -> Option<&T> {
        self.index(seq).and_then(|i| self.slots[i].as_ref())
    }

    /// Mutable access to the entry at `seq`, if live.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        self.index(seq).and_then(|i| self.slots[i].as_mut())
    }

    /// Removes and returns the entry at `seq`, trimming the vacated front
    /// so `base` follows the stream. Spent or vacant seqs yield `None`.
    pub fn take(&mut self, seq: u64) -> Option<T> {
        let taken = self.index(seq).and_then(|i| self.slots[i].take());
        if taken.is_some() {
            self.live -= 1;
            while let Some(None) = self.slots.front() {
                self.slots.pop_front();
                self.base += 1;
            }
        }
        taken
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_take_roundtrip_with_gaps() {
        let mut r = SeqRing::new();
        assert!(r.set(5, "a"));
        assert!(r.set(8, "b"), "gap seqs stay vacant");
        assert_eq!(r.get(5), Some(&"a"));
        assert_eq!(r.get(6), None);
        assert_eq!(r.get(8), Some(&"b"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.take(5), Some("a"));
        assert_eq!(r.take(5), None, "double take is None");
        assert_eq!(r.len(), 1);
        *r.get_mut(8).unwrap() = "c";
        assert_eq!(r.take(8), Some("c"));
        assert!(r.is_empty());
    }

    #[test]
    fn spent_seqs_stay_spent_across_full_drain() {
        let mut r = SeqRing::new();
        r.set(10, 1u32);
        assert_eq!(r.take(10), Some(1));
        assert!(r.is_empty());
        // The frontier does not rewind: a stale seq can never alias.
        assert!(!r.set(3, 9));
        assert_eq!(r.get(3), None);
        assert_eq!(r.end(), 11);
        // Fresh seqs at or past the frontier are fine.
        assert!(r.set(11, 2));
        assert_eq!(r.get(11), Some(&2));
    }

    #[test]
    fn interior_vacancies_can_be_refilled() {
        let mut r = SeqRing::new();
        r.set(0, 1u32);
        r.set(4, 1);
        assert_eq!(r.take(2), None);
        assert!(r.set(2, 7), "vacant interior slot is not spent");
        assert_eq!(r.get(2), Some(&7));
        // replacing an existing entry keeps live count right
        assert!(r.set(2, 8));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn front_trim_advances_base() {
        let mut r = SeqRing::new();
        for seq in 0..100u64 {
            r.set(seq, seq);
        }
        for seq in 0..90u64 {
            r.take(seq);
        }
        assert_eq!(r.len(), 10);
        assert!(!r.set(42, 0), "trimmed seqs are spent");
        assert_eq!(r.get(95), Some(&95));
    }
}
