//! Delta-compression filters (DC1/DC2/DC3) and the shared admission
//! automaton.
//!
//! A `(slack, delta)` delta-compression filter selects data at `delta`-unit
//! granularity with `slack` units of tolerated deviation (§2.1.1). The
//! *reference tuples* are exactly what a self-interested DC filter would
//! emit: the first tuple, then every first tuple whose value moved by at
//! least `delta` from the previous reference (stateless) or from the
//! previously *chosen* output (stateful, Fig. 2.9). The candidate set of a
//! reference is the contiguous run of tuples around it whose derived value
//! is within `slack` of the reference value (Fig. 2.3).

use super::{ForceCloseOutcome, GroupFilter};
use crate::candidate::{CandidateTuple, CloseCause, ClosedSet, FilterAction, FilterId, TimeCover};
use crate::error::Error;
use crate::quality::{Dependency, FilterKind, FilterSpec, PickSpec, Prescription};
use crate::schema::AttrId;
use crate::time::Micros;
use crate::tuple::{Tuple, TupleId};

/// Derivation of the scalar a DC filter compresses: the taxonomy's
/// "state-update function" applied to the watched attributes (Fig. 5.1).
#[derive(Debug, Clone)]
enum Deriver {
    /// DC1 — the raw value of one attribute.
    Single(AttrId),
    /// DC2 — rate of change of one attribute per second.
    Trend {
        attr: AttrId,
        prev: Option<(Micros, f64)>,
    },
    /// DC3 — mean of several attributes.
    Mean(Vec<AttrId>),
}

impl Deriver {
    fn derive(&mut self, tuple: &Tuple) -> Result<f64, Error> {
        match self {
            Deriver::Single(a) => tuple.require(*a),
            Deriver::Trend { attr, prev } => {
                let v = tuple.require(*attr)?;
                let now = tuple.timestamp();
                let trend = match *prev {
                    Some((t0, v0)) if now > t0 => (v - v0) / (now - t0).as_secs_f64(),
                    _ => 0.0,
                };
                *prev = Some((now, v));
                Ok(trend)
            }
            Deriver::Mean(attrs) => {
                let mut sum = 0.0;
                for a in attrs.iter() {
                    sum += tuple.require(*a)?;
                }
                Ok(sum / attrs.len() as f64)
            }
        }
    }
}

/// Phase of the admission automaton.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// No tuple seen yet; the first tuple is always a reference.
    Initial,
    /// Previous set closed; waiting for tuples near the predicted next
    /// reference (`|v - base| >= delta - slack` admits tentatively).
    Searching,
    /// Open set holds tentative candidates; the reference
    /// (`|v - base| >= delta`) has not arrived yet.
    Tentative,
    /// Reference identified; admitting the contiguous vicinity
    /// (`|v - ref| <= slack`) until a tuple falls outside.
    Vicinity,
}

/// The shared `(slack, delta)` admission automaton used by DC1/DC2/DC3.
#[derive(Debug, Clone)]
struct DeltaCore {
    id: FilterId,
    delta: f64,
    slack: f64,
    stateful: bool,
    /// Comparison base: last reference value (stateless) or last chosen
    /// output value (stateful).
    base: f64,
    phase: Phase,
    open: Vec<CandidateTuple>,
    reference_id: Option<TupleId>,
    reference_val: f64,
    set_index: u64,
}

impl DeltaCore {
    fn new(id: FilterId, delta: f64, slack: f64, stateful: bool) -> Self {
        DeltaCore {
            id,
            delta,
            slack,
            stateful,
            base: 0.0,
            phase: Phase::Initial,
            open: Vec::new(),
            reference_id: None,
            reference_val: 0.0,
            set_index: 0,
        }
    }

    fn candidate(&self, tuple: &Tuple, key: f64) -> CandidateTuple {
        CandidateTuple {
            id: tuple.id(),
            timestamp: tuple.timestamp(),
            key,
        }
    }

    /// Seals the open candidates into a `ClosedSet`.
    fn seal(&mut self, cause: CloseCause) -> ClosedSet {
        let candidates = std::mem::take(&mut self.open);
        let si_choice = self.reference_id.take().into_iter().collect();
        let set = ClosedSet {
            filter: self.id,
            set_index: self.set_index,
            candidates,
            pick_degree: 1,
            prescription: Prescription::Any,
            si_choice,
            cause,
        };
        self.set_index += 1;
        self.phase = Phase::Searching;
        set
    }

    /// Handles reference identification: admits the tuple, dismisses
    /// tentative candidates that are not contiguous-with and within `slack`
    /// of the reference, and switches to the vicinity phase.
    fn on_reference(&mut self, tuple: &Tuple, key: f64, action: &mut FilterAction) {
        // Keep only the contiguous run (by id, i.e. arrival order)
        // immediately preceding the reference whose keys are within slack
        // of it.
        let mut keep_from = self.open.len();
        let mut expected = tuple.id();
        for (i, c) in self.open.iter().enumerate().rev() {
            if c.id.next() == expected && (c.key - key).abs() <= self.slack {
                keep_from = i;
                expected = c.id;
            } else {
                break;
            }
        }
        for c in self.open.drain(..keep_from) {
            action.dismissed.push(c.id);
        }
        self.open.push(self.candidate(tuple, key));
        self.reference_id = Some(tuple.id());
        self.reference_val = key;
        if !self.stateful {
            self.base = key;
        }
        self.phase = Phase::Vicinity;
        action.admitted = true;
        action.reference = true;
    }

    fn process(&mut self, tuple: &Tuple, key: f64) -> FilterAction {
        let mut action = FilterAction::none();
        match self.phase {
            Phase::Initial => {
                // The first tuple is always a reference output.
                self.on_reference(tuple, key, &mut action);
            }
            Phase::Vicinity => {
                if (key - self.reference_val).abs() <= self.slack {
                    self.open.push(self.candidate(tuple, key));
                    action.admitted = true;
                } else {
                    // Closes the current set; the same tuple may then open
                    // (or even be the reference of) the next one.
                    action.closed = Some(self.seal(CloseCause::Natural));
                    self.search_step(tuple, key, &mut action);
                }
            }
            Phase::Searching | Phase::Tentative => {
                self.search_step(tuple, key, &mut action);
            }
        }
        action
    }

    /// Searching/tentative logic shared with the fall-through after closure.
    fn search_step(&mut self, tuple: &Tuple, key: f64, action: &mut FilterAction) {
        let dist = (key - self.base).abs();
        if dist >= self.delta {
            self.on_reference(tuple, key, action);
        } else if dist >= self.delta - self.slack {
            // Tentative admission based on the estimate of the next
            // reference tuple (§2.3.3).
            self.open.push(self.candidate(tuple, key));
            self.phase = Phase::Tentative;
            action.admitted = true;
        }
    }

    fn force_close(&mut self, cause: CloseCause) -> ForceCloseOutcome {
        match self.phase {
            Phase::Vicinity => ForceCloseOutcome {
                closed: Some(self.seal(cause)),
                dismissed: Vec::new(),
            },
            Phase::Tentative => {
                // No reference yet: the self-interested filter has not
                // committed to this output either, so the tentative
                // candidates are dismissed rather than closed — keeping the
                // guarantee that cuts never perform worse than SI (§3.3).
                let dismissed = self.open.drain(..).map(|c| c.id).collect();
                self.phase = Phase::Searching;
                ForceCloseOutcome {
                    closed: None,
                    dismissed,
                }
            }
            Phase::Initial | Phase::Searching => ForceCloseOutcome::default(),
        }
    }

    fn output_chosen(&mut self, key: f64) {
        if self.stateful {
            self.base = key;
        }
    }

    fn open_cover(&self) -> Option<TimeCover> {
        let first = self.open.first()?;
        let last = self.open.last()?;
        Some(TimeCover {
            min: first.timestamp,
            max: last.timestamp,
        })
    }
}

macro_rules! delegate_group_filter {
    ($ty:ty) => {
        impl GroupFilter for $ty {
            fn id(&self) -> FilterId {
                self.core.id
            }
            fn spec(&self) -> &FilterSpec {
                &self.spec
            }
            fn process(&mut self, tuple: &Tuple) -> Result<FilterAction, Error> {
                let key = self.deriver.derive(tuple)?;
                Ok(self.core.process(tuple, key))
            }
            fn force_close(&mut self, cause: CloseCause) -> ForceCloseOutcome {
                self.core.force_close(cause)
            }
            fn output_chosen(&mut self, _id: crate::tuple::TupleId, key: f64) {
                self.core.output_chosen(key);
            }
            fn is_stateful(&self) -> bool {
                self.core.stateful
            }
            fn open_cover(&self) -> Option<TimeCover> {
                self.core.open_cover()
            }
            fn open_len(&self) -> usize {
                self.core.open.len()
            }
        }
    };
}

/// DC1 — delta compression on a single attribute.
///
/// ```rust
/// use gasf_core::prelude::*;
/// # fn main() -> Result<(), gasf_core::Error> {
/// let schema = Schema::new(["t"]);
/// let spec = FilterSpec::delta("t", 50.0, 10.0);
/// let mut engine = GroupEngine::builder(schema).filter(spec).build()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeltaCompression {
    spec: FilterSpec,
    core: DeltaCore,
    deriver: Deriver,
}

impl DeltaCompression {
    /// Builds a DC1 filter from its (validated) spec.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSpec`] if the spec is not a `Delta` spec or
    /// fails validation.
    pub fn from_spec(spec: FilterSpec, id: FilterId, attr: AttrId) -> Result<Self, Error> {
        spec.validate()?;
        let FilterKind::Delta {
            delta,
            slack,
            dependency,
            ..
        } = &spec.kind
        else {
            return Err(Error::InvalidSpec {
                reason: "expected a Delta spec".into(),
            });
        };
        let stateful = *dependency == Dependency::Stateful;
        Ok(DeltaCompression {
            core: DeltaCore::new(id, *delta, *slack, stateful),
            deriver: Deriver::Single(attr),
            spec,
        })
    }

    /// The output-selection settings (always "pick any one" for DC).
    pub fn pick_spec(&self) -> PickSpec {
        PickSpec::one()
    }
}

delegate_group_filter!(DeltaCompression);

/// DC2 — delta compression on the rate of change (units per second) of an
/// attribute. Useful when applications care about *trends* rather than
/// levels (§5.1).
#[derive(Debug)]
pub struct TrendDelta {
    spec: FilterSpec,
    core: DeltaCore,
    deriver: Deriver,
}

impl TrendDelta {
    /// Builds a DC2 filter from its spec.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSpec`] if the spec is not a `TrendDelta`
    /// spec or fails validation.
    pub fn from_spec(spec: FilterSpec, id: FilterId, attr: AttrId) -> Result<Self, Error> {
        spec.validate()?;
        let FilterKind::TrendDelta { delta, slack, .. } = &spec.kind else {
            return Err(Error::InvalidSpec {
                reason: "expected a TrendDelta spec".into(),
            });
        };
        Ok(TrendDelta {
            core: DeltaCore::new(id, *delta, *slack, false),
            deriver: Deriver::Trend { attr, prev: None },
            spec,
        })
    }
}

delegate_group_filter!(TrendDelta);

/// DC3 — delta compression on the mean of several attributes (e.g.
/// co-located thermistors whose average an application monitors, §5.1).
#[derive(Debug)]
pub struct MultiAttrDelta {
    spec: FilterSpec,
    core: DeltaCore,
    deriver: Deriver,
}

impl MultiAttrDelta {
    /// Builds a DC3 filter from its spec.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSpec`] if the spec is not a `MultiAttrDelta`
    /// spec or fails validation.
    pub fn from_spec(spec: FilterSpec, id: FilterId, attrs: Vec<AttrId>) -> Result<Self, Error> {
        spec.validate()?;
        let FilterKind::MultiAttrDelta { delta, slack, .. } = &spec.kind else {
            return Err(Error::InvalidSpec {
                reason: "expected a MultiAttrDelta spec".into(),
            });
        };
        Ok(MultiAttrDelta {
            core: DeltaCore::new(id, *delta, *slack, false),
            deriver: Deriver::Mean(attrs),
            spec,
        })
    }
}

delegate_group_filter!(MultiAttrDelta);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::series;

    /// The paper's nine-tuple running example plus the closing tuple 112
    /// (Figs. 2.5/2.8): values at 10 ms intervals.
    fn paper_stream() -> (Schema, Vec<Tuple>) {
        let schema = Schema::new(["t"]);
        let tuples = series(
            &schema,
            "t",
            &[
                (10, 0.0),
                (20, 35.0),
                (30, 29.0),
                (40, 45.0),
                (50, 50.0),
                (60, 59.0),
                (70, 80.0),
                (80, 97.0),
                (90, 100.0),
                (100, 112.0),
            ],
        );
        (schema, tuples)
    }

    fn run_filter(mut f: Box<dyn GroupFilter>, tuples: &[Tuple]) -> (Vec<Vec<f64>>, Vec<u64>) {
        let mut sets = Vec::new();
        let mut refs = Vec::new();
        for t in tuples {
            let a = f.process(t).unwrap();
            if a.reference {
                refs.push(t.seq());
            }
            if let Some(s) = a.closed {
                sets.push(s.candidates.iter().map(|c| c.key).collect());
            }
        }
        let out = f.force_close(CloseCause::EndOfStream);
        if let Some(s) = out.closed {
            sets.push(s.candidates.iter().map(|c| c.key).collect());
        }
        (sets, refs)
    }

    fn dc(delta: f64, slack: f64, schema: &Schema) -> Box<dyn GroupFilter> {
        Box::new(
            DeltaCompression::from_spec(
                FilterSpec::delta("t", delta, slack),
                FilterId::from_index(0),
                schema.attr("t").unwrap(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn filter_a_matches_fig_2_5() {
        // (10, 50) DC filter: cands {0}, {45,50,59}, {97,100}
        let (schema, tuples) = paper_stream();
        let (sets, refs) = run_filter(dc(50.0, 10.0, &schema), &tuples);
        assert_eq!(
            sets,
            vec![vec![0.0], vec![45.0, 50.0, 59.0], vec![97.0, 100.0]]
        );
        // SI output {0, 50, 100} -> seqs 0, 4, 8
        assert_eq!(refs, vec![0, 4, 8]);
    }

    #[test]
    fn filter_b_matches_fig_2_5() {
        // (5, 40) DC filter: cands {0}, {45,50}, {97,100}
        let (schema, tuples) = paper_stream();
        let (sets, refs) = run_filter(dc(40.0, 5.0, &schema), &tuples);
        assert_eq!(sets, vec![vec![0.0], vec![45.0, 50.0], vec![97.0, 100.0]]);
        // SI output {0, 45, 97}
        assert_eq!(refs, vec![0, 3, 7]);
    }

    #[test]
    fn filter_c_matches_fig_2_5() {
        // (25, 80) DC filter: cands {0}, {59,80,97,100}
        let (schema, tuples) = paper_stream();
        let (sets, refs) = run_filter(dc(80.0, 25.0, &schema), &tuples);
        assert_eq!(sets, vec![vec![0.0], vec![59.0, 80.0, 97.0, 100.0]]);
        assert_eq!(refs, vec![0, 6]);
    }

    #[test]
    fn tentative_candidates_dismissed_at_reference() {
        // Filter B admits 35 tentatively (|35-0| >= 40-5) and must dismiss
        // it when the reference 45 arrives (|35-45| = 10 > 5).
        let (schema, tuples) = paper_stream();
        let mut f = dc(40.0, 5.0, &schema);
        let mut dismissed = Vec::new();
        for t in &tuples[..4] {
            let a = f.process(t).unwrap();
            dismissed.extend(a.dismissed);
        }
        assert_eq!(dismissed, vec![TupleId::from_seq(1)]); // seq 1 carries value 35
    }

    #[test]
    fn contiguity_enforced_at_reference() {
        // 0, then 8 (tentative for delta 10 slack 2), then 5 (gap), then 10
        // (reference). 8 is not contiguous with the reference, so it must
        // be dismissed even though |8 - 10| = 2 <= slack.
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", &[(0, 0.0), (10, 8.0), (20, 5.0), (30, 10.0)]);
        let mut f = dc(10.0, 2.0, &schema);
        let mut all_dismissed = Vec::new();
        let mut last_open: Vec<f64> = Vec::new();
        for t in &tuples {
            let a = f.process(t).unwrap();
            all_dismissed.extend(a.dismissed.clone());
            if a.admitted {
                last_open.push(t.get(schema.attr("t").unwrap()).unwrap());
            }
        }
        assert!(all_dismissed.contains(&TupleId::from_seq(1)));
        let out = f.force_close(CloseCause::EndOfStream);
        assert_eq!(
            out.closed
                .unwrap()
                .candidates
                .iter()
                .map(|c| c.key)
                .collect::<Vec<_>>(),
            vec![10.0]
        );
    }

    #[test]
    fn closing_tuple_can_become_next_reference() {
        // A jump of 2*delta closes the vicinity and is itself the next
        // reference.
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", &[(0, 0.0), (10, 100.0)]);
        let mut f = dc(50.0, 10.0, &schema);
        let a0 = f.process(&tuples[0]).unwrap();
        assert!(a0.reference);
        let a1 = f.process(&tuples[1]).unwrap();
        assert!(a1.reference, "100 jumps by 2*delta and is a reference");
        assert!(a1.closed.is_some(), "set {{0}} closed");
    }

    #[test]
    fn force_close_in_vicinity_closes_with_cut_cause() {
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", &[(0, 0.0)]);
        let mut f = dc(50.0, 10.0, &schema);
        f.process(&tuples[0]).unwrap();
        let out = f.force_close(CloseCause::Cut);
        let set = out.closed.unwrap();
        assert_eq!(set.cause, CloseCause::Cut);
        assert_eq!(set.si_choice, vec![TupleId::from_seq(0)]);
        assert!(out.dismissed.is_empty());
    }

    #[test]
    fn force_close_in_tentative_dismisses() {
        let schema = Schema::new(["t"]);
        // 0 (ref) closes at 20 (|20|>10 slack... delta 50 slack 10: 20 not
        // within slack of 0 -> closes set; |20-0|=20 < 40 -> searching).
        // Then 42 is tentative (40 <= 42 < 50).
        let tuples = series(&schema, "t", &[(0, 0.0), (10, 20.0), (20, 42.0)]);
        let mut f = dc(50.0, 10.0, &schema);
        for t in &tuples {
            f.process(t).unwrap();
        }
        let out = f.force_close(CloseCause::Cut);
        assert!(out.closed.is_none());
        assert_eq!(out.dismissed, vec![TupleId::from_seq(2)]);
    }

    #[test]
    fn stateful_uses_chosen_output_as_base() {
        let schema = Schema::new(["t"]);
        // Stateless: base after first set would be 50 (the reference).
        // Stateful with chosen output 59: next reference needs |v-59| >= 50.
        let spec = FilterSpec::stateful_delta("t", 50.0, 10.0);
        let mut f =
            DeltaCompression::from_spec(spec, FilterId::from_index(0), schema.attr("t").unwrap())
                .unwrap();
        assert!(f.is_stateful());
        let tuples = series(
            &schema,
            "t",
            &[(0, 50.0), (10, 59.0), (20, 75.0), (30, 102.0), (40, 106.0)],
        );
        let a0 = f.process(&tuples[0]).unwrap();
        assert!(a0.reference);
        f.process(&tuples[1]).unwrap(); // 59 in vicinity of 50
        let a2 = f.process(&tuples[2]).unwrap(); // 75 closes the set
        assert!(a2.closed.is_some());
        // The group chose 59; inform the filter.
        f.output_chosen(TupleId::from_seq(1), 59.0);
        // 102: |102 - 59| = 43 < 50 -> only tentative (43 >= 40).
        let a3 = f.process(&tuples[3]).unwrap();
        assert!(a3.admitted && !a3.reference);
        // 106: |106 - 59| = 47 < 50 -> still tentative.
        let a4 = f.process(&tuples[4]).unwrap();
        assert!(a4.admitted && !a4.reference);
    }

    #[test]
    fn trend_filter_fires_on_rate_changes() {
        let schema = Schema::new(["t"]);
        // 10 ms steps; values rising 1.0 per tuple = 100 units/s, then flat.
        let mut pts = Vec::new();
        for i in 0..10u64 {
            pts.push((i * 10, i as f64));
        }
        for i in 10..20u64 {
            pts.push((i * 10, 9.0));
        }
        let tuples = series(&schema, "t", &pts);
        let spec = FilterSpec::trend_delta("t", 80.0, 10.0);
        let mut f = TrendDelta::from_spec(spec, FilterId::from_index(0), schema.attr("t").unwrap())
            .unwrap();
        let mut refs = 0;
        for t in &tuples {
            if f.process(t).unwrap().reference {
                refs += 1;
            }
        }
        // trend goes 0 -> 100 (fires) -> 0 (fires again)
        assert!(refs >= 2, "trend filter fired {refs} times");
    }

    #[test]
    fn multi_attr_uses_mean() {
        let schema = Schema::new(["a", "b"]);
        let mut b = crate::tuple::TupleBuilder::new(&schema);
        let t0 = b.at_millis(0).set_all(&[0.0, 0.0]).build().unwrap();
        let t1 = b.at_millis(10).set_all(&[10.0, 0.0]).build().unwrap(); // mean 5
        let t2 = b.at_millis(20).set_all(&[10.0, 10.0]).build().unwrap(); // mean 10
        let spec = FilterSpec::multi_attr_delta(["a", "b"], 10.0, 1.0);
        let a_id = schema.attr("a").unwrap();
        let b_id = schema.attr("b").unwrap();
        let mut f =
            MultiAttrDelta::from_spec(spec, FilterId::from_index(0), vec![a_id, b_id]).unwrap();
        assert!(f.process(&t0).unwrap().reference);
        assert!(!f.process(&t1).unwrap().reference, "mean 5 below delta 10");
        assert!(f.process(&t2).unwrap().reference, "mean 10 hits delta");
    }

    #[test]
    fn missing_value_is_an_error() {
        let schema = Schema::new(["a", "b"]);
        let mut builder = crate::tuple::TupleBuilder::new(&schema);
        let t = builder.at_millis(0).set("a", 1.0).build().unwrap();
        let mut f = dc(1.0, 0.1, &Schema::new(["t"]));
        // filter built against schema ["t"] attr 0 == "a" here; use a filter
        // over "b" to provoke the missing value instead:
        let spec = FilterSpec::delta("b", 1.0, 0.1);
        let mut g =
            DeltaCompression::from_spec(spec, FilterId::from_index(1), schema.attr("b").unwrap())
                .unwrap();
        assert!(matches!(g.process(&t), Err(Error::MissingValue { .. })));
        // and the original filter still works on its own stream
        let s2 = Schema::new(["t"]);
        let ts = series(&s2, "t", &[(0, 1.0)]);
        assert!(f.process(&ts[0]).is_ok());
    }

    #[test]
    fn open_cover_tracks_open_set() {
        let (schema, tuples) = paper_stream();
        let mut f = dc(50.0, 10.0, &schema);
        f.process(&tuples[0]).unwrap();
        let c = f.open_cover().unwrap();
        assert_eq!(c.min, Micros::from_millis(10));
        assert_eq!(c.max, Micros::from_millis(10));
        f.process(&tuples[1]).unwrap(); // 35 closes {0}; searching
        assert!(f.open_cover().is_none());
    }

    #[test]
    fn set_indexes_increment() {
        let (schema, tuples) = paper_stream();
        let mut f = dc(50.0, 10.0, &schema);
        let mut indices = Vec::new();
        for t in &tuples {
            if let Some(s) = f.process(t).unwrap().closed {
                indices.push(s.set_index);
            }
        }
        if let Some(s) = f.force_close(CloseCause::EndOfStream).closed {
            indices.push(s.set_index);
        }
        assert_eq!(indices, vec![0, 1, 2]);
    }
}
