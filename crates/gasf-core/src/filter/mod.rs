//! Group-aware filters (the taxonomy of Ch. 5).
//!
//! A filter that fits group-aware stream filtering (§2.2.2):
//! * is exclusively a data-*selection* filter (its output is a subset of its
//!   input tuples),
//! * offers, for each logical output, a set of quality-equivalent candidate
//!   tuples,
//! * chooses all candidates of an output before any candidate of the next,
//! * can be asked to finish an output early (timely cuts), and
//! * computes candidates online.
//!
//! The engines drive filters through [`GroupFilter`]; this module provides
//! the paper's four concrete filter types ([`DeltaCompression`] /
//! [`TrendDelta`] / [`MultiAttrDelta`] / [`StratifiedSampler`]) and the
//! [`build_filter`] factory that instantiates them from a
//! [`crate::quality::FilterSpec`] values. Downstream crates can
//! implement [`GroupFilter`] for domain-specific selection rules — the
//! framework dimensions (candidate computation, output selection,
//! candidate-set dependency) are all expressed in the trait surface.

mod delta;
mod sampling;

pub use delta::{DeltaCompression, MultiAttrDelta, TrendDelta};
pub use sampling::{ReservoirSampler, StratifiedSampler};

use crate::candidate::{CloseCause, ClosedSet, FilterAction, FilterId, TimeCover};
use crate::error::Error;
use crate::quality::{FilterKind, FilterSpec};
use crate::schema::Schema;
use crate::tuple::{Tuple, TupleId};
use std::fmt;

/// Result of forcing a filter to close its open candidate set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForceCloseOutcome {
    /// The set that closed, if the filter had committed to an output
    /// (a reference had been identified / a window had content).
    pub closed: Option<ClosedSet>,
    /// Tuples dropped without closure (tentative candidates of an output
    /// the self-interested filter had not committed to either); the engine
    /// decrements their group utility.
    pub dismissed: Vec<TupleId>,
}

/// The contract between a filter and the group-aware engines.
///
/// Implementations must be deterministic given the input stream: the engines
/// replay the paper's two-stage process (admit candidates → decide outputs)
/// and rely on [`FilterAction`] events for all bookkeeping.
pub trait GroupFilter: fmt::Debug + Send {
    /// This filter's identity within its group.
    fn id(&self) -> FilterId;

    /// The specification the filter was built from.
    fn spec(&self) -> &FilterSpec;

    /// Feeds the next stream tuple through the filter's first stage.
    ///
    /// # Errors
    /// Returns [`Error::MissingValue`] if the tuple lacks an attribute this
    /// filter requires.
    fn process(&mut self, tuple: &Tuple) -> Result<FilterAction, Error>;

    /// Forces the open candidate set to finish (timely cut / end of stream).
    fn force_close(&mut self, cause: CloseCause) -> ForceCloseOutcome;

    /// Informs a *stateful* filter which tuple was chosen from its last
    /// closed set (`key` is the derived value recorded for that candidate).
    /// Stateless filters ignore this.
    fn output_chosen(&mut self, id: TupleId, key: f64) {
        let _ = (id, key);
    }

    /// Whether candidate sets depend on previously chosen outputs
    /// (requires the per-candidate-set algorithm).
    fn is_stateful(&self) -> bool {
        false
    }

    /// Whether the self-interested twin of this filter emits at reference
    /// identification (DC filters) rather than at set closure (samplers).
    fn si_emits_at_reference(&self) -> bool {
        true
    }

    /// Time cover of the currently open candidate set, if any — used for
    /// region-readiness checks and cut accounting.
    fn open_cover(&self) -> Option<TimeCover>;

    /// Number of candidates in the currently open set (run-time-prediction
    /// input). The default derives a coarse 0/1 estimate from
    /// [`open_cover`](Self::open_cover); implementations should override it.
    fn open_len(&self) -> usize {
        usize::from(self.open_cover().is_some())
    }
}

/// Instantiates a concrete filter from a specification.
///
/// # Errors
/// Returns [`Error::InvalidSpec`] for invalid parameters and
/// [`Error::UnknownAttribute`] if the spec references attributes missing
/// from `schema`.
pub fn build_filter(
    spec: &FilterSpec,
    id: FilterId,
    schema: &Schema,
) -> Result<Box<dyn GroupFilter>, Error> {
    spec.validate()?;
    match &spec.kind {
        FilterKind::Delta { attr, .. } => {
            let attr = schema.attr(attr)?;
            Ok(Box::new(DeltaCompression::from_spec(
                spec.clone(),
                id,
                attr,
            )?))
        }
        FilterKind::TrendDelta { attr, .. } => {
            let attr = schema.attr(attr)?;
            Ok(Box::new(TrendDelta::from_spec(spec.clone(), id, attr)?))
        }
        FilterKind::MultiAttrDelta { attrs, .. } => {
            let attrs = attrs
                .iter()
                .map(|a| schema.attr(a))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Box::new(MultiAttrDelta::from_spec(
                spec.clone(),
                id,
                attrs,
            )?))
        }
        FilterKind::Reservoir { attr, .. } => {
            let attr = schema.attr(attr)?;
            Ok(Box::new(ReservoirSampler::from_spec(
                spec.clone(),
                id,
                attr,
            )?))
        }
        FilterKind::StratifiedSample { attr, .. } => {
            let attr = schema.attr(attr)?;
            Ok(Box::new(StratifiedSampler::from_spec(
                spec.clone(),
                id,
                attr,
            )?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::FilterSpec;
    use crate::time::Micros;

    #[test]
    fn factory_builds_each_kind() {
        let schema = Schema::new(["a", "b"]);
        let specs = [
            FilterSpec::delta("a", 1.0, 0.2),
            FilterSpec::trend_delta("a", 1.0, 0.2),
            FilterSpec::multi_attr_delta(["a", "b"], 1.0, 0.2),
            FilterSpec::stratified_sample("a", Micros::from_secs(1), 0.1, 50.0, 20.0),
            FilterSpec::reservoir("a", Micros::from_secs(1), 3),
        ];
        for (i, s) in specs.iter().enumerate() {
            let f = build_filter(s, FilterId::from_index(i), &schema).unwrap();
            assert_eq!(f.id().index(), i);
        }
    }

    #[test]
    fn factory_rejects_unknown_attribute() {
        let schema = Schema::new(["a"]);
        let err = build_filter(
            &FilterSpec::delta("zz", 1.0, 0.2),
            FilterId::from_index(0),
            &schema,
        )
        .unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute { .. }));
    }

    #[test]
    fn factory_rejects_invalid_spec() {
        let schema = Schema::new(["a"]);
        let err = build_filter(
            &FilterSpec::delta("a", 1.0, 0.9),
            FilterId::from_index(0),
            &schema,
        )
        .unwrap_err();
        assert!(matches!(err, Error::InvalidSpec { .. }));
    }
}
