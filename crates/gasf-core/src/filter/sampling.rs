//! Stratified-sampling filters (SS).
//!
//! An `SS(attrib, timeInterval, threshold, highSmplRt, lowSmplRt)` filter
//! (Table 5.1) segments the stream into fixed time windows. Every tuple of
//! a window is a candidate; when the window ends, the *sample range*
//! (max − min of the watched attribute) decides whether the high or low
//! sample rate applies, which resolves the set's pick degree. The candidate
//! set therefore has **multi-degree candidacy** and the engines use the
//! multi-degree greedy hitting set (§5.3) for it.

use super::{ForceCloseOutcome, GroupFilter};
use crate::candidate::{CandidateTuple, CloseCause, ClosedSet, FilterAction, FilterId, TimeCover};
use crate::error::Error;
use crate::quality::{FilterKind, FilterSpec, PickDegree, Prescription};
use crate::schema::AttrId;
use crate::time::Micros;
use crate::tuple::{Tuple, TupleId};

/// A group-aware stratified sampler.
#[derive(Debug)]
pub struct StratifiedSampler {
    spec: FilterSpec,
    id: FilterId,
    attr: AttrId,
    window: Micros,
    threshold: f64,
    high_pct: f64,
    low_pct: f64,
    prescription: Prescription,
    /// Index of the window currently being accumulated.
    current_window: Option<u64>,
    open: Vec<CandidateTuple>,
    min_val: f64,
    max_val: f64,
    set_index: u64,
}

impl StratifiedSampler {
    /// Builds an SS filter from its spec.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSpec`] if the spec is not a
    /// `StratifiedSample` spec or fails validation.
    pub fn from_spec(spec: FilterSpec, id: FilterId, attr: AttrId) -> Result<Self, Error> {
        spec.validate()?;
        let FilterKind::StratifiedSample {
            window,
            threshold,
            high_pct,
            low_pct,
            prescription,
            ..
        } = &spec.kind
        else {
            return Err(Error::InvalidSpec {
                reason: "expected a StratifiedSample spec".into(),
            });
        };
        Ok(StratifiedSampler {
            id,
            attr,
            window: *window,
            threshold: *threshold,
            high_pct: *high_pct,
            low_pct: *low_pct,
            prescription: *prescription,
            current_window: None,
            open: Vec::new(),
            min_val: f64::INFINITY,
            max_val: f64::NEG_INFINITY,
            set_index: 0,
            spec,
        })
    }

    fn window_of(&self, ts: Micros) -> u64 {
        ts.as_micros() / self.window.as_micros().max(1)
    }

    /// The sample range observed in the open window.
    fn sample_range(&self) -> f64 {
        if self.open.is_empty() {
            0.0
        } else {
            self.max_val - self.min_val
        }
    }

    /// Evenly spaced deterministic sample — what the self-interested
    /// sampler ships (a fixed-rate pick, blind to the group).
    pub(crate) fn si_sample(candidates: &[CandidateTuple], k: usize) -> Vec<TupleId> {
        let n = candidates.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        (0..k).map(|i| candidates[i * n / k].id).collect()
    }

    fn seal(&mut self, cause: CloseCause) -> Option<ClosedSet> {
        if self.open.is_empty() {
            return None;
        }
        let rate = if self.sample_range() >= self.threshold {
            self.high_pct
        } else {
            self.low_pct
        };
        let candidates = std::mem::take(&mut self.open);
        let pick_degree = PickDegree::Percent(rate).resolve(candidates.len());
        let si_choice = Self::si_sample(&candidates, pick_degree);
        self.min_val = f64::INFINITY;
        self.max_val = f64::NEG_INFINITY;
        let set = ClosedSet {
            filter: self.id,
            set_index: self.set_index,
            candidates,
            pick_degree,
            prescription: self.prescription,
            si_choice,
            cause,
        };
        self.set_index += 1;
        Some(set)
    }
}

impl GroupFilter for StratifiedSampler {
    fn id(&self) -> FilterId {
        self.id
    }

    fn spec(&self) -> &FilterSpec {
        &self.spec
    }

    fn process(&mut self, tuple: &Tuple) -> Result<FilterAction, Error> {
        let v = tuple.require(self.attr)?;
        let w = self.window_of(tuple.timestamp());
        let mut action = FilterAction::none();
        if self.current_window != Some(w) {
            if self.current_window.is_some() {
                action.closed = self.seal(CloseCause::Natural);
            }
            self.current_window = Some(w);
        }
        self.open.push(CandidateTuple {
            id: tuple.id(),
            timestamp: tuple.timestamp(),
            key: v,
        });
        self.min_val = self.min_val.min(v);
        self.max_val = self.max_val.max(v);
        action.admitted = true;
        Ok(action)
    }

    fn force_close(&mut self, cause: CloseCause) -> ForceCloseOutcome {
        ForceCloseOutcome {
            closed: self.seal(cause),
            dismissed: Vec::new(),
        }
    }

    fn si_emits_at_reference(&self) -> bool {
        false
    }

    fn open_cover(&self) -> Option<TimeCover> {
        let first = self.open.first()?;
        let last = self.open.last()?;
        Some(TimeCover {
            min: first.timestamp,
            max: last.timestamp,
        })
    }

    fn open_len(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::series;

    fn sampler(
        window_ms: u64,
        threshold: f64,
        high: f64,
        low: f64,
        schema: &Schema,
    ) -> StratifiedSampler {
        StratifiedSampler::from_spec(
            FilterSpec::stratified_sample(
                "t",
                Micros::from_millis(window_ms),
                threshold,
                high,
                low,
            ),
            FilterId::from_index(0),
            schema.attr("t").unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn windows_close_on_boundary() {
        let schema = Schema::new(["t"]);
        // 100 ms windows; tuples every 30 ms.
        let tuples = series(
            &schema,
            "t",
            &[(0, 1.0), (30, 2.0), (60, 3.0), (90, 4.0), (120, 5.0)],
        );
        let mut f = sampler(100, 10.0, 50.0, 20.0, &schema);
        let mut closed = Vec::new();
        for t in &tuples {
            if let Some(s) = f.process(t).unwrap().closed {
                closed.push(s);
            }
        }
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].len(), 4, "first window holds ts 0..=90");
        let tail = f.force_close(CloseCause::EndOfStream).closed.unwrap();
        assert_eq!(tail.len(), 1);
    }

    #[test]
    fn rate_picked_by_sample_range() {
        let schema = Schema::new(["t"]);
        // Window 1: range 9 (high dynamics); window 2: range 0.2 (low).
        let tuples = series(
            &schema,
            "t",
            &[
                (0, 0.0),
                (20, 9.0),
                (40, 3.0),
                (60, 5.0),
                (100, 1.0),
                (120, 1.1),
                (140, 1.2),
                (160, 1.0),
            ],
        );
        let mut f = sampler(100, 5.0, 50.0, 25.0, &schema);
        let mut sets = Vec::new();
        for t in &tuples {
            if let Some(s) = f.process(t).unwrap().closed {
                sets.push(s);
            }
        }
        sets.extend(f.force_close(CloseCause::EndOfStream).closed);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].pick_degree, 2, "50% of 4 tuples");
        assert_eq!(sets[1].pick_degree, 1, "25% of 4 tuples");
    }

    #[test]
    fn si_sample_is_evenly_spaced_and_sized() {
        let cands: Vec<CandidateTuple> = (0..10)
            .map(|i| CandidateTuple {
                id: TupleId::from_seq(i),
                timestamp: Micros::from_millis(i * 10),
                key: i as f64,
            })
            .collect();
        let s = StratifiedSampler::si_sample(&cands, 5);
        assert_eq!(s.len(), 5);
        let want: Vec<TupleId> = [0, 2, 4, 6, 8]
            .iter()
            .map(|&i| TupleId::from_seq(i))
            .collect();
        assert_eq!(s, want);
        assert!(StratifiedSampler::si_sample(&cands, 0).is_empty());
        assert!(StratifiedSampler::si_sample(&[], 3).is_empty());
    }

    #[test]
    fn does_not_emit_at_reference() {
        let schema = Schema::new(["t"]);
        let f = sampler(100, 1.0, 50.0, 20.0, &schema);
        assert!(!f.si_emits_at_reference());
        assert!(!f.is_stateful());
    }

    #[test]
    fn empty_force_close_yields_nothing() {
        let schema = Schema::new(["t"]);
        let mut f = sampler(100, 1.0, 50.0, 20.0, &schema);
        let out = f.force_close(CloseCause::EndOfStream);
        assert!(out.closed.is_none());
        assert!(out.dismissed.is_empty());
    }

    #[test]
    fn prescription_propagates_to_sets() {
        let schema = Schema::new(["t"]);
        let spec = FilterSpec::stratified_sample("t", Micros::from_millis(50), 0.0, 50.0, 50.0)
            .with_prescription(Prescription::Top);
        let mut f =
            StratifiedSampler::from_spec(spec, FilterId::from_index(0), schema.attr("t").unwrap())
                .unwrap();
        let tuples = series(&schema, "t", &[(0, 1.0), (10, 9.0), (20, 3.0), (30, 7.0)]);
        for t in &tuples {
            f.process(t).unwrap();
        }
        let set = f.force_close(CloseCause::EndOfStream).closed.unwrap();
        assert_eq!(set.prescription, Prescription::Top);
        assert_eq!(set.pick_degree, 2);
        // top-2 ranks: 9.0 (seq 1), 7.0 (seq 3)
        assert_eq!(
            set.eligible_ranks(),
            vec![vec![TupleId::from_seq(1)], vec![TupleId::from_seq(3)]]
        );
    }
}

/// A group-aware reservoir sampler (RS): exactly `k` tuples per fixed time
/// window, all window tuples equivalent in quality (§5.1). The
/// self-interested twin ships an evenly spaced `k`-sample per window; the
/// group-aware version lets the group pick which `k` tuples, maximising
/// overlap with other filters.
#[derive(Debug)]
pub struct ReservoirSampler {
    spec: FilterSpec,
    id: FilterId,
    attr: AttrId,
    window: Micros,
    k: u32,
    current_window: Option<u64>,
    open: Vec<CandidateTuple>,
    set_index: u64,
}

impl ReservoirSampler {
    /// Builds an RS filter from its spec.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSpec`] if the spec is not a `Reservoir` spec
    /// or fails validation.
    pub fn from_spec(spec: FilterSpec, id: FilterId, attr: AttrId) -> Result<Self, Error> {
        spec.validate()?;
        let FilterKind::Reservoir { window, k, .. } = &spec.kind else {
            return Err(Error::InvalidSpec {
                reason: "expected a Reservoir spec".into(),
            });
        };
        Ok(ReservoirSampler {
            id,
            attr,
            window: *window,
            k: *k,
            current_window: None,
            open: Vec::new(),
            set_index: 0,
            spec,
        })
    }

    fn window_of(&self, ts: Micros) -> u64 {
        ts.as_micros() / self.window.as_micros().max(1)
    }

    fn seal(&mut self, cause: CloseCause) -> Option<ClosedSet> {
        if self.open.is_empty() {
            return None;
        }
        let candidates = std::mem::take(&mut self.open);
        let pick_degree = (self.k as usize).min(candidates.len());
        let si_choice = StratifiedSampler::si_sample(&candidates, pick_degree);
        let set = ClosedSet {
            filter: self.id,
            set_index: self.set_index,
            candidates,
            pick_degree,
            prescription: Prescription::Any,
            si_choice,
            cause,
        };
        self.set_index += 1;
        Some(set)
    }
}

impl GroupFilter for ReservoirSampler {
    fn id(&self) -> FilterId {
        self.id
    }

    fn spec(&self) -> &FilterSpec {
        &self.spec
    }

    fn process(&mut self, tuple: &Tuple) -> Result<FilterAction, Error> {
        let v = tuple.require(self.attr)?;
        let w = self.window_of(tuple.timestamp());
        let mut action = FilterAction::none();
        if self.current_window != Some(w) {
            if self.current_window.is_some() {
                action.closed = self.seal(CloseCause::Natural);
            }
            self.current_window = Some(w);
        }
        self.open.push(CandidateTuple {
            id: tuple.id(),
            timestamp: tuple.timestamp(),
            key: v,
        });
        action.admitted = true;
        Ok(action)
    }

    fn force_close(&mut self, cause: CloseCause) -> ForceCloseOutcome {
        ForceCloseOutcome {
            closed: self.seal(cause),
            dismissed: Vec::new(),
        }
    }

    fn si_emits_at_reference(&self) -> bool {
        false
    }

    fn open_cover(&self) -> Option<TimeCover> {
        let first = self.open.first()?;
        let last = self.open.last()?;
        Some(TimeCover {
            min: first.timestamp,
            max: last.timestamp,
        })
    }

    fn open_len(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod reservoir_tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::series;

    fn sampler(window_ms: u64, k: u32, schema: &Schema) -> ReservoirSampler {
        ReservoirSampler::from_spec(
            FilterSpec::reservoir("t", Micros::from_millis(window_ms), k),
            FilterId::from_index(0),
            schema.attr("t").unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn fixed_count_per_window() {
        let schema = Schema::new(["t"]);
        let pts: Vec<(u64, f64)> = (0..10).map(|i| (i * 20, i as f64)).collect();
        let tuples = series(&schema, "t", &pts);
        let mut f = sampler(100, 2, &schema);
        let mut sets = Vec::new();
        for t in &tuples {
            sets.extend(f.process(t).unwrap().closed);
        }
        sets.extend(f.force_close(CloseCause::EndOfStream).closed);
        assert_eq!(sets.len(), 2);
        for s in &sets {
            assert_eq!(s.pick_degree, 2);
            assert_eq!(s.si_choice.len(), 2);
            assert_eq!(s.prescription, Prescription::Any);
        }
    }

    #[test]
    fn k_clamped_to_window_size() {
        let schema = Schema::new(["t"]);
        let tuples = series(&schema, "t", &[(0, 1.0), (10, 2.0)]);
        let mut f = sampler(100, 50, &schema);
        for t in &tuples {
            f.process(t).unwrap();
        }
        let set = f.force_close(CloseCause::EndOfStream).closed.unwrap();
        assert_eq!(set.pick_degree, 2);
    }

    #[test]
    fn zero_k_rejected() {
        assert!(FilterSpec::reservoir("t", Micros::from_millis(10), 0)
            .validate()
            .is_err());
        assert!(FilterSpec::reservoir("t", Micros::ZERO, 3)
            .validate()
            .is_err());
    }

    #[test]
    fn display_notation() {
        let s = FilterSpec::reservoir("t", Micros::from_secs(1), 5);
        assert_eq!(s.to_string(), "RS(t, 1.000s, 5)");
    }
}
