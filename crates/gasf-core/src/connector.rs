//! The connector seam: how external worlds feed and drain the pipeline.
//!
//! Everything inside the middleware speaks interned tuples, columnar
//! batches and [`EmissionSink`]s; everything outside speaks files,
//! sockets and processes. A *connector* is the trait-shaped boundary
//! between the two (model: renoir's `operator/{source,sink}/connectors`):
//!
//! * [`SourceConnector`] — pulls the next [`Chunk`] of input from
//!   somewhere external (a replayed trace file, a localhost socket, a
//!   generator). The **ingest driver owns the pacing**: it asks for at
//!   most `max_rows` rows at a time and, when the bounded ingress path
//!   answers [`Throttled`](crate::shed::PushOutcome::Throttled), simply
//!   stops asking — backpressure propagates to the external producer as
//!   "the connector is not being polled" (a file stops being read, a
//!   socket's kernel buffer fills).
//! * [`SinkConnector`] — pushes delivered emissions somewhere external.
//!   Unlike [`EmissionSink`] it is fallible (the outside world fails);
//!   [`ConnectorSink`] adapts it to the infallible sink seam by latching
//!   the first error, exactly like the middleware's multicast sink.
//!
//! Concrete connectors live with their dependencies: file replay in
//! `gasf-sources`, the localhost-socket pair in `gasf-wire`.
//!
//! ```rust
//! use gasf_core::connector::{Chunk, SourceConnector};
//! use gasf_core::prelude::*;
//!
//! /// A source connector over an in-memory ordered run.
//! struct VecSource {
//!     schema: Schema,
//!     rows: Vec<Tuple>,
//!     at: usize,
//! }
//!
//! impl SourceConnector for VecSource {
//!     fn schema(&self) -> &Schema {
//!         &self.schema
//!     }
//!
//!     fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Chunk>, gasf_core::Error> {
//!         if self.at == self.rows.len() {
//!             return Ok(None); // EOF
//!         }
//!         let n = max_rows.max(1).min(self.rows.len() - self.at);
//!         let batch = TupleBatch::from_tuples(&self.schema, &self.rows[self.at..self.at + n])?;
//!         self.at += n;
//!         Ok(Some(Chunk::Batch(batch)))
//!     }
//! }
//!
//! # fn main() -> Result<(), gasf_core::Error> {
//! let schema = Schema::new(["t"]);
//! let mut b = TupleBuilder::new(&schema);
//! let rows: Vec<Tuple> = (0..10)
//!     .map(|i| b.at_millis(10 * (i + 1)).set("t", i as f64).build().unwrap())
//!     .collect();
//! let mut src = VecSource { schema: schema.clone(), rows, at: 0 };
//! let mut total = 0;
//! while let Some(chunk) = src.next_chunk(4)? {
//!     total += chunk.rows();
//! }
//! assert_eq!(total, 10);
//! # Ok(())
//! # }
//! ```

use crate::batch::TupleBatch;
use crate::engine::Emission;
use crate::error::Error;
use crate::schema::Schema;
use crate::sink::EmissionSink;
use crate::tuple::Tuple;

/// One unit of input pulled from a [`SourceConnector`].
///
/// Ordered sources hand over columnar [`TupleBatch`]es (dense seqs,
/// non-decreasing timestamps — the hot path); sources replaying
/// *disordered arrivals* cannot satisfy the batch invariants and hand
/// over row-form [`Tuple`]s instead, which the ingest driver routes
/// through the event-time reorder buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Chunk {
    /// A stream-ordered columnar run (fast path).
    Batch(TupleBatch),
    /// Row-form tuples in *arrival* order, possibly disordered
    /// (event-time path).
    Rows(Vec<Tuple>),
}

impl Chunk {
    /// Number of rows carried by the chunk.
    pub fn rows(&self) -> usize {
        match self {
            Chunk::Batch(b) => b.rows(),
            Chunk::Rows(r) => r.len(),
        }
    }

    /// Whether the chunk carries no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }
}

/// An external producer of stream input.
///
/// The contract is pull-based and EOF-terminated: the ingest driver
/// calls [`next_chunk`](Self::next_chunk) repeatedly; `Ok(None)` means
/// the source is exhausted (a clean end-of-stream, after which the
/// driver finishes the pipeline). Transient conditions — an empty
/// socket buffer, a peer mid-reconnect — are represented as `Ok(Some)`
/// of an **empty** chunk or handled inside the connector; errors are
/// reserved for unrecoverable failures.
pub trait SourceConnector {
    /// The schema of the tuples this source produces.
    fn schema(&self) -> &Schema;

    /// Pulls the next chunk, at most `max_rows` rows (`max_rows ≥ 1`;
    /// connectors may return fewer — ragged chunk sizes are legal and
    /// exercised by the round-trip proptests). `None` is end-of-stream.
    ///
    /// # Errors
    /// Unrecoverable connector failure (I/O, framing, validation).
    fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Chunk>, Error>;
}

/// An external consumer of delivered emissions.
///
/// The egress twin of [`SourceConnector`]: fallible, because delivery
/// crosses a process boundary. Adapted onto the infallible
/// [`EmissionSink`] seam by [`ConnectorSink`].
pub trait SinkConnector {
    /// Delivers one emission to the external destination.
    ///
    /// # Errors
    /// Unrecoverable delivery failure.
    fn deliver(&mut self, emission: &Emission) -> Result<(), Error>;

    /// Delivers a late-tuple patch correction. Defaults to
    /// [`deliver`](Self::deliver) for destinations that don't
    /// distinguish corrections.
    ///
    /// # Errors
    /// Unrecoverable delivery failure.
    fn deliver_patch(&mut self, emission: &Emission) -> Result<(), Error> {
        self.deliver(emission)
    }

    /// Ends the stream (flush buffers, write trailers, close frames).
    ///
    /// # Errors
    /// Unrecoverable finalisation failure.
    fn end(&mut self) -> Result<(), Error> {
        Ok(())
    }
}

impl<C: SinkConnector + ?Sized> SinkConnector for &mut C {
    fn deliver(&mut self, emission: &Emission) -> Result<(), Error> {
        (**self).deliver(emission)
    }

    fn deliver_patch(&mut self, emission: &Emission) -> Result<(), Error> {
        (**self).deliver_patch(emission)
    }

    fn end(&mut self) -> Result<(), Error> {
        (**self).end()
    }
}

/// Adapts a fallible [`SinkConnector`] onto the infallible
/// [`EmissionSink`] seam by **latching the first error**: after a
/// failure the sink swallows further emissions and the driver surfaces
/// the latched error once the engine hands control back (the same
/// pattern as the middleware's multicast sink).
#[derive(Debug)]
pub struct ConnectorSink<C> {
    connector: C,
    delivered: u64,
    error: Option<Error>,
}

impl<C: SinkConnector> ConnectorSink<C> {
    /// Wraps a connector.
    pub fn new(connector: C) -> Self {
        ConnectorSink {
            connector,
            delivered: 0,
            error: None,
        }
    }

    /// Emissions successfully delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The latched error, if any delivery failed.
    pub fn error(&self) -> Option<&Error> {
        self.error.as_ref()
    }

    /// Finishes the connector and returns the latched error (or the
    /// finalisation error), consuming the adapter.
    ///
    /// # Errors
    /// The first delivery error, or the [`SinkConnector::end`] failure.
    pub fn finish(mut self) -> Result<C, Error> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.connector.end()?;
        Ok(self.connector)
    }
}

impl<C: SinkConnector> EmissionSink for ConnectorSink<C> {
    fn accept(&mut self, emission: &Emission) {
        if self.error.is_some() {
            return;
        }
        match self.connector.deliver(emission) {
            Ok(()) => self.delivered += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn accept_patch(&mut self, emission: &Emission) {
        if self.error.is_some() {
            return;
        }
        match self.connector.deliver_patch(emission) {
            Ok(()) => self.delivered += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::FilterSet;
    use crate::candidate::FilterId;
    use crate::time::Micros;
    use crate::tuple::TupleBuilder;
    use std::sync::Arc;

    fn emission(seq: u64) -> Emission {
        let schema = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&schema);
        let t = b
            .at_millis(10 * (seq + 1))
            .set("t", seq as f64)
            .build()
            .unwrap();
        let mut recipients = FilterSet::new();
        recipients.insert(FilterId::from_index(0));
        Emission {
            tuple: Arc::new(t),
            recipients,
            emitted_at: Micros::from_millis(10 * (seq + 1)),
        }
    }

    /// Collects deliveries, failing after an optional budget.
    struct Probe {
        got: Vec<u64>,
        patches: u64,
        ended: bool,
        fail_after: Option<usize>,
    }

    impl SinkConnector for Probe {
        fn deliver(&mut self, emission: &Emission) -> Result<(), Error> {
            if self.fail_after == Some(self.got.len()) {
                return Err(Error::Connector {
                    reason: "probe budget exhausted".into(),
                });
            }
            self.got.push(emission.emitted_at.as_micros());
            Ok(())
        }

        fn deliver_patch(&mut self, emission: &Emission) -> Result<(), Error> {
            self.patches += 1;
            self.deliver(emission)
        }

        fn end(&mut self) -> Result<(), Error> {
            self.ended = true;
            Ok(())
        }
    }

    #[test]
    fn connector_sink_delivers_and_finishes() {
        let probe = Probe {
            got: vec![],
            patches: 0,
            ended: false,
            fail_after: None,
        };
        let mut sink = ConnectorSink::new(probe);
        sink.accept(&emission(0));
        sink.accept_patch(&emission(1));
        sink.flush();
        assert_eq!(sink.delivered(), 2);
        assert!(sink.error().is_none());
        let probe = sink.finish().unwrap();
        assert_eq!(probe.got, vec![10_000, 20_000]);
        assert_eq!(probe.patches, 1);
        assert!(probe.ended);
    }

    #[test]
    fn connector_sink_latches_first_error() {
        let probe = Probe {
            got: vec![],
            patches: 0,
            ended: false,
            fail_after: Some(1),
        };
        let mut sink = ConnectorSink::new(probe);
        sink.accept(&emission(0));
        sink.accept(&emission(1)); // fails, latches
        sink.accept(&emission(2)); // swallowed
        assert_eq!(sink.delivered(), 1);
        assert!(matches!(sink.error(), Some(Error::Connector { .. })));
        assert!(sink.finish().is_err());
    }

    #[test]
    fn chunk_row_counts() {
        let schema = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&schema);
        let rows: Vec<Tuple> = (0..3)
            .map(|i| b.at_millis(10 * (i + 1)).set("t", 0.0).build().unwrap())
            .collect();
        let batch = TupleBatch::from_tuples(&schema, &rows).unwrap();
        assert_eq!(Chunk::Batch(batch).rows(), 3);
        assert_eq!(Chunk::Rows(rows).rows(), 3);
        assert!(Chunk::Rows(vec![]).is_empty());
    }
}
