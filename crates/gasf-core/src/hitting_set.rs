//! Greedy hitting-set solvers.
//!
//! Group-aware filtering reduces to the minimum hitting-set problem
//! (Theorem 1): given the candidate sets of a region, pick one tuple from
//! each so that the union is minimal. The classical greedy algorithm gives
//! a `H(max |C|)` approximation; [`greedy_hitting_set`] implements it with
//! the paper's tie-break (freshest timestamp). [`ClosedSet::pick_degree`]
//! generalises to the **multi-degree hitting set** (Definition 6 /
//! Axiom 3) needed by sampling filters, with at most one tuple per rank
//! for top/bottom prescriptions (§5.3).
//!
//! ## Representation
//!
//! The solver operates purely on interned [`TupleId`]s — no `Tuple`
//! payloads enter the selection loop. The region's distinct ids are mapped
//! to a dense index space once, per-tuple state lives in a flat vector
//! (not a hash map), and per-set rank usage is tracked in packed
//! [`BitSet`]s. Ids are stable for the lifetime of the region being
//! solved (see [`crate::tuple`]), which is what makes the dense mapping
//! sound.

use crate::bitset::BitSet;
use crate::candidate::ClosedSet;
use crate::tuple::TupleId;

/// One tuple chosen by the solver and the sets it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// Interned id of the chosen tuple.
    pub id: TupleId,
    /// Indices (into the input slice) of the sets this choice counts
    /// toward.
    pub covers: Vec<usize>,
}

/// Per-tuple solver state: timestamp for the tie-break plus the
/// `(set, rank)` slots the tuple can fill.
struct TupleState {
    id: TupleId,
    ts: u64,
    slots: Vec<(usize, Option<usize>)>,
    chosen: bool,
}

/// Solves the (multi-degree) hitting-set instance formed by `sets` with the
/// greedy heuristic: repeatedly choose the tuple useful to the most
/// still-unsatisfied sets, preferring the freshest timestamp on ties
/// (Fig. 2.7).
///
/// Each returned [`Choice`] lists the sets it was counted for; every set
/// ends up covered by exactly `min(pick_degree, #ranks)` choices.
///
/// Sets with `pick_degree == 1` and
/// [`Prescription::Any`](crate::quality::Prescription::Any) reproduce the
/// classical greedy hitting set exactly.
pub fn greedy_hitting_set(sets: &[ClosedSet]) -> Vec<Choice> {
    greedy_hitting_set_over(sets, &collect_distinct_ids(sets))
}

/// The sorted distinct ids referenced by `sets` — the dense universe the
/// solver indexes over.
pub(crate) fn collect_distinct_ids(sets: &[ClosedSet]) -> Vec<TupleId> {
    let mut universe: Vec<TupleId> = sets
        .iter()
        .flat_map(|s| s.candidates.iter().map(|c| c.id))
        .collect();
    universe.sort_unstable();
    universe.dedup();
    universe
}

/// [`greedy_hitting_set`] with the universe precomputed, so callers that
/// already hold the region's distinct ids (the engine's region-completion
/// path) do not pay a second collect+sort+dedup pass.
pub(crate) fn greedy_hitting_set_over(sets: &[ClosedSet], universe: &[TupleId]) -> Vec<Choice> {
    let dense = |id: TupleId| {
        universe
            .binary_search(&id)
            .expect("universe covers every candidate id")
    };

    let mut tuples: Vec<TupleState> = universe
        .iter()
        .map(|&id| TupleState {
            id,
            ts: 0,
            slots: Vec::new(),
            chosen: false,
        })
        .collect();
    let mut needed: Vec<usize> = Vec::with_capacity(sets.len());
    // For ranked sets: which ranks are already used, as packed bits.
    let mut rank_used: Vec<BitSet> = Vec::with_capacity(sets.len());

    for (si, set) in sets.iter().enumerate() {
        let ranks = set.eligible_ranks();
        let ranked = ranks.len() > 1 || set.prescription != crate::quality::Prescription::Any;
        let effective = if ranked {
            set.pick_degree.min(ranks.len())
        } else {
            set.pick_degree.min(set.len())
        };
        needed.push(effective);
        rank_used.push(BitSet::with_capacity(ranks.len()));
        for c in &set.candidates {
            tuples[dense(c.id)].ts = c.timestamp.as_micros();
        }
        for (ri, rank) in ranks.iter().enumerate() {
            for &id in rank {
                tuples[dense(id)]
                    .slots
                    .push((si, if ranked { Some(ri) } else { None }));
            }
        }
    }

    let usefulness = |t: &TupleState, needed: &[usize], rank_used: &[BitSet]| -> u32 {
        t.slots
            .iter()
            .filter(|(si, rank)| {
                needed[*si] > 0 && rank.is_none_or(|r| !rank_used[*si].contains(r))
            })
            .count() as u32
    };

    let mut result = Vec::new();
    while needed.iter().any(|&n| n > 0) {
        // Pick the tuple with max utility; ties -> freshest timestamp,
        // then highest id (deterministic).
        let mut best: Option<(u32, u64, TupleId)> = None;
        for t in tuples.iter().filter(|t| !t.chosen) {
            let u = usefulness(t, &needed, &rank_used);
            if u == 0 {
                continue;
            }
            let key = (u, t.ts, t.id);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        let Some((_, _, id)) = best else {
            // No tuple can satisfy the remaining demand (can only happen
            // for ranked sets with fewer usable ranks than degree, which
            // `effective` already prevents) — defensive break.
            debug_assert!(false, "greedy hitting set ran out of useful tuples");
            break;
        };
        let t = &mut tuples[dense(id)];
        t.chosen = true;
        let slots = std::mem::take(&mut t.slots);
        let mut covers = Vec::new();
        for (si, rank) in slots {
            if needed[si] > 0 && rank.is_none_or(|r| !rank_used[si].contains(r)) {
                needed[si] -= 1;
                if let Some(r) = rank {
                    rank_used[si].insert(r);
                }
                covers.push(si);
            }
        }
        debug_assert!(!covers.is_empty());
        result.push(Choice { id, covers });
    }
    result
}

/// Exhaustive minimum hitting set for tiny instances (≤ ~20 candidate
/// tuples). Only 1-degree, unranked sets are supported. Used to validate
/// the greedy heuristic in tests and to measure approximation quality.
///
/// Returns the chosen ids, or `None` if the instance has more than
/// `max_universe` distinct tuples.
pub fn brute_force_minimum(sets: &[ClosedSet], max_universe: usize) -> Option<Vec<TupleId>> {
    let universe = collect_distinct_ids(sets);
    if universe.len() > max_universe || universe.len() > 25 {
        return None;
    }
    let n = universe.len();
    let mut best: Option<Vec<TupleId>> = None;
    for mask in 0u32..(1u32 << n) {
        let chosen: Vec<TupleId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| universe[i])
            .collect();
        if let Some(b) = &best {
            if chosen.len() >= b.len() {
                continue;
            }
        }
        let hits_all = sets
            .iter()
            .all(|s| s.candidates.iter().any(|c| chosen.contains(&c.id)));
        if hits_all {
            best = Some(chosen);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::{CandidateTuple, CloseCause, FilterId};
    use crate::quality::Prescription;
    use crate::time::Micros;

    fn id(seq: u64) -> TupleId {
        TupleId::from_seq(seq)
    }

    fn set(filter: usize, seqs: &[u64]) -> ClosedSet {
        set_with(filter, seqs, 1, Prescription::Any)
    }

    fn set_with(filter: usize, seqs: &[u64], degree: usize, p: Prescription) -> ClosedSet {
        ClosedSet {
            filter: FilterId::from_index(filter),
            set_index: 0,
            candidates: seqs
                .iter()
                .map(|&s| CandidateTuple {
                    id: id(s),
                    timestamp: Micros::from_millis(s * 10),
                    key: s as f64,
                })
                .collect(),
            pick_degree: degree,
            prescription: p,
            si_choice: vec![],
            cause: CloseCause::Natural,
        }
    }

    fn chosen_ids(sets: &[ClosedSet]) -> Vec<TupleId> {
        let mut v: Vec<TupleId> = greedy_hitting_set(sets).into_iter().map(|c| c.id).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn paper_region_2_example() {
        // Fig. 2.8 region 2: cands1-2 {45,50,59} = seqs {3,4,5},
        // cands2-2 {45,50} = {3,4}, cands3-2 {59,80,97,100} = {5,6,7,8},
        // cands1-3 {97,100} = {7,8}, cands2-3 {97,100} = {7,8}.
        let sets = vec![
            set(0, &[3, 4, 5]),
            set(1, &[3, 4]),
            set(2, &[5, 6, 7, 8]),
            set(0, &[7, 8]),
            set(1, &[7, 8]),
        ];
        let result = greedy_hitting_set(&sets);
        // Utilities: 7 and 8 have 3; freshest wins -> 8 (=tuple 100) first,
        // covering sets 2,3,4. Then 3,4 have utility 2 each; freshest -> 4
        // (=tuple 50), covering sets 0,1.
        assert_eq!(result[0].id, id(8));
        assert_eq!(result[0].covers, vec![2, 3, 4]);
        assert_eq!(result[1].id, id(4));
        assert_eq!(result[1].covers, vec![0, 1]);
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn every_set_is_hit() {
        let sets = vec![set(0, &[1, 2]), set(1, &[3]), set(2, &[2, 3])];
        let result = greedy_hitting_set(&sets);
        for (si, s) in sets.iter().enumerate() {
            let hit = result
                .iter()
                .any(|c| c.covers.contains(&si) && s.contains(c.id));
            assert!(hit, "set {si} not hit");
        }
    }

    #[test]
    fn singleton_sets_force_choices() {
        let sets = vec![set(0, &[1]), set(1, &[2])];
        assert_eq!(chosen_ids(&sets), vec![id(1), id(2)]);
    }

    #[test]
    fn greedy_matches_brute_force_on_small_instances() {
        let sets = vec![
            set(0, &[1, 2, 3]),
            set(1, &[2, 4]),
            set(2, &[3, 4]),
            set(3, &[4]),
        ];
        let greedy = chosen_ids(&sets);
        let best = brute_force_minimum(&sets, 20).unwrap();
        // 4 hits sets 1,2,3; one of {1,2,3} hits set 0 -> optimum 2.
        assert_eq!(best.len(), 2);
        assert_eq!(greedy.len(), 2);
    }

    #[test]
    fn multi_degree_set_gets_k_distinct_tuples() {
        let sets = vec![
            set_with(0, &[1, 2, 3, 4], 2, Prescription::Any),
            set(1, &[2]),
        ];
        let result = greedy_hitting_set(&sets);
        let covering: Vec<&Choice> = result.iter().filter(|c| c.covers.contains(&0)).collect();
        assert_eq!(covering.len(), 2, "degree-2 set covered twice");
        let ids: Vec<TupleId> = covering.iter().map(|c| c.id).collect();
        assert_eq!(
            ids.len(),
            ids.iter().collect::<std::collections::HashSet<_>>().len()
        );
        // 2 should be shared with the singleton set.
        assert!(result.iter().any(|c| c.id == id(2) && c.covers.len() == 2));
    }

    #[test]
    fn ranked_set_uses_one_tuple_per_rank() {
        // Top-2 of {1:10.0, 2:10.0, 3:5.0}: rank0 = {1,2} (tied), rank1 = {3}.
        let mut s = set_with(0, &[1, 2, 3], 2, Prescription::Top);
        s.candidates[0].key = 10.0;
        s.candidates[1].key = 10.0;
        s.candidates[2].key = 5.0;
        let result = greedy_hitting_set(&[s]);
        assert_eq!(result.len(), 2);
        let ids: Vec<TupleId> = result.iter().map(|c| c.id).collect();
        // must include 3 (only rank-1 tuple) and exactly one of {1,2}
        assert!(ids.contains(&id(3)));
        assert_eq!(ids.iter().filter(|&&i| i == id(1) || i == id(2)).count(), 1);
    }

    #[test]
    fn ranked_set_with_fewer_ranks_than_degree_is_satisfiable() {
        // All keys equal -> a single rank; degree 3 clamps to 1 choice.
        let mut s = set_with(0, &[1, 2, 3], 3, Prescription::Top);
        for c in &mut s.candidates {
            c.key = 1.0;
        }
        let result = greedy_hitting_set(&[s]);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(greedy_hitting_set(&[]).is_empty());
    }

    #[test]
    fn brute_force_gives_up_on_large_universe() {
        let sets = vec![set(0, &(0..30).collect::<Vec<u64>>())];
        assert!(brute_force_minimum(&sets, 20).is_none());
    }

    #[test]
    fn tie_break_prefers_freshest() {
        // Both 1 and 9 hit both sets; 9 is fresher.
        let sets = vec![set(0, &[1, 9]), set(1, &[1, 9])];
        let result = greedy_hitting_set(&sets);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].id, id(9));
    }
}
