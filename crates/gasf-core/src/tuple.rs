//! Stream tuples, their interned identities and the engine's tuple pool.
//!
//! "A tuple consists of a collection of attribute-value pairs … all tuples
//! are timestamped at the originating sources" (§2.2.1). Values are `f64`
//! aligned to the stream's [`Schema`]; an absent value is `NaN` and filters
//! reject tuples missing the attributes they need.
//!
//! ## Interned identities
//!
//! The selection hot path (candidate sets, hitting set, regions) never
//! moves tuple payloads around. Each tuple entering an engine is *interned*
//! once into a [`TuplePool`], which owns the payload behind an
//! `Arc<Tuple>` and hands out a [`TupleId`] — a copyable `u64` newtype
//! over the stream sequence number. Everything downstream (candidate
//! membership, utilities, greedy choices, pending emissions) carries
//! `TupleId`s and only resolves back to the payload at emission time.
//!
//! **Invariants:**
//! * a `TupleId` is stable for the whole lifetime of the region that
//!   references it — the pool never reuses or renumbers ids, and region
//!   cleanup is the only thing that releases them;
//! * ids are strictly increasing in stream order (they mirror the source
//!   sequence numbers the engine already requires to be contiguous), so
//!   `TupleId` order *is* arrival order, which the solvers' freshest-tie-
//!   break rule relies on;
//! * the pool's storage is a dense ring: lookup and release are O(1), and
//!   memory stays bounded by the live window (the region span), not the
//!   stream length.

use crate::batch::TupleBatch;
use crate::error::Error;
use crate::schema::{AttrId, Schema};
use crate::seq_ring::SeqRing;
use crate::time::Micros;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Stable, copyable identity of an interned tuple.
///
/// A `TupleId` is a `u64` newtype over the stream sequence number assigned
/// by the source. It is the currency of the whole selection data path:
/// candidate sets, group utilities, hitting-set choices and pending
/// emissions all reference tuples by id and never clone payloads. Ids are
/// strictly increasing in stream order, so comparing ids compares arrival
/// (and, for in-order streams, freshness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleId(u64);

impl TupleId {
    /// The id a tuple with stream sequence number `seq` interns to.
    pub const fn from_seq(seq: u64) -> Self {
        TupleId(seq)
    }

    /// The underlying stream sequence number.
    pub const fn seq(self) -> u64 {
        self.0
    }

    /// The id of the immediately following stream tuple.
    pub const fn next(self) -> Self {
        TupleId(self.0 + 1)
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Where an interned tuple's payload lives: already materialised behind a
/// shared `Arc`, or still a row of a columnar [`TupleBatch`] (materialised
/// lazily, the first time the payload is actually needed — i.e. at
/// emission).
#[derive(Debug, Clone)]
enum PoolSlot {
    Tuple(Arc<Tuple>),
    Row(Arc<TupleBatch>, u32),
}

/// Intern table owning the engine's live tuple window.
///
/// Tuples are interned in arrival order; the pool stores each payload once
/// and resolves [`TupleId`]s in O(1) via a dense ring buffer (`id - base`
/// indexing). Releasing ids from the front — which is what region cleanup
/// does, since regions complete oldest-first — trims the ring, keeping
/// memory proportional to the live window.
///
/// Two ingest shapes share the ring:
/// * [`intern`](Self::intern) — the single-tuple path, one `Arc<Tuple>`
///   per tuple;
/// * [`intern_rows`](Self::intern_rows) — the columnar path: one bulk
///   ring reservation and one `Arc<TupleBatch>` refcount bump per row,
///   **no per-tuple allocation**. Payloads materialise lazily through
///   [`resolve`](Self::resolve), so rows that are never emitted never
///   become `Arc<Tuple>`s at all.
#[derive(Debug, Default)]
pub struct TuplePool {
    ring: SeqRing<PoolSlot>,
    materialized: u64,
}

impl TuplePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        TuplePool::default()
    }

    /// Interns a tuple, returning its id and the shared payload.
    ///
    /// # Panics
    /// Panics if `tuple.seq()` does not come strictly after every
    /// sequence number this pool has ever interned (released or not) —
    /// ids are never reused, and the engine validates stream order before
    /// interning, so a violation here is a bug.
    pub fn intern(&mut self, tuple: Tuple) -> (TupleId, Arc<Tuple>) {
        let id = tuple.id();
        assert!(
            id.seq() >= self.ring.end(),
            "tuple {} interned out of order (expected >= {})",
            id.seq(),
            self.ring.end()
        );
        let arc = Arc::new(tuple);
        self.ring.set(id.seq(), PoolSlot::Tuple(Arc::clone(&arc)));
        (id, arc)
    }

    /// Bulk-interns the first `rows` rows of a columnar batch as lazy
    /// slots: the ring grows once, each slot holds `(batch, row)` and the
    /// payload is only gathered into an `Arc<Tuple>` if
    /// [`resolve`](Self::resolve) is ever called for it.
    ///
    /// # Panics
    /// Same ordering contract as [`intern`](Self::intern), checked on the
    /// batch's first row (rows within a batch are contiguous by
    /// construction).
    pub fn intern_rows(&mut self, batch: &Arc<TupleBatch>, rows: usize) {
        let rows = rows.min(batch.rows());
        if rows == 0 {
            return;
        }
        assert!(
            batch.first_seq() >= self.ring.end(),
            "tuple {} interned out of order (expected >= {})",
            batch.first_seq(),
            self.ring.end()
        );
        self.ring.reserve(rows);
        for r in 0..rows {
            self.ring
                .set(batch.seq(r), PoolSlot::Row(Arc::clone(batch), r as u32));
        }
    }

    /// The shared payload of a live, already-materialised id. Lazily
    /// interned batch rows read as `None` here until
    /// [`resolve`](Self::resolve)d — use [`contains`](Self::contains) for
    /// liveness.
    pub fn get(&self, id: TupleId) -> Option<&Arc<Tuple>> {
        match self.ring.get(id.seq())? {
            PoolSlot::Tuple(arc) => Some(arc),
            PoolSlot::Row(..) => None,
        }
    }

    /// The shared payload of a live id, materialising a lazy batch row in
    /// place on first resolution; `None` once released.
    pub fn resolve(&mut self, id: TupleId) -> Option<Arc<Tuple>> {
        let slot = self.ring.get_mut(id.seq())?;
        if let PoolSlot::Row(batch, r) = slot {
            let arc = Arc::new(batch.materialize_row(*r as usize));
            *slot = PoolSlot::Tuple(arc);
            self.materialized += 1;
        }
        match slot {
            PoolSlot::Tuple(arc) => Some(Arc::clone(arc)),
            PoolSlot::Row(..) => unreachable!("lazy slot materialised above"),
        }
    }

    /// Whether the id is still live in the pool (materialised or lazy).
    pub fn contains(&self, id: TupleId) -> bool {
        self.ring.get(id.seq()).is_some()
    }

    /// Releases an id, dropping the pool's reference to the payload.
    /// Releasing an unknown or already-released id is a no-op; a released
    /// id is spent forever and will never resolve again.
    pub fn release(&mut self, id: TupleId) {
        self.ring.take(id.seq());
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no tuple is live.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many lazy batch rows have been materialised into `Arc<Tuple>`s
    /// over the pool's lifetime — the steady-state columnar path keeps
    /// this equal to the number of *emitted* rows, not ingested ones (the
    /// allocation-regression contract of `batch_equivalence`).
    pub fn materializations(&self) -> u64 {
        self.materialized
    }
}

/// One item of a data stream.
///
/// Tuples are cheap to clone: the value payload is shared behind an `Arc`
/// because the same tuple flows into every filter of a group and may sit in
/// several buffers at once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    seq: u64,
    timestamp: Micros,
    values: Arc<[f64]>,
}

impl Tuple {
    /// Creates a tuple directly from parts.
    ///
    /// Most callers should prefer [`TupleBuilder`], which checks names
    /// against a schema. This constructor only checks the value count.
    ///
    /// # Errors
    /// Returns [`Error::SchemaMismatch`] when `values.len() != schema.len()`.
    pub fn new(
        schema: &Schema,
        seq: u64,
        timestamp: Micros,
        values: Vec<f64>,
    ) -> Result<Self, Error> {
        if values.len() != schema.len() {
            return Err(Error::SchemaMismatch {
                expected: schema.len(),
                actual: values.len(),
            });
        }
        Ok(Tuple {
            seq,
            timestamp,
            values: values.into(),
        })
    }

    /// Reassembles a tuple from its wire representation — sequence
    /// number, timestamp and raw values — with no schema check.
    ///
    /// This is the decode-side counterpart of [`Tuple::wire_size`]'s
    /// layout: codecs that shipped a tuple byte-for-byte must be able to
    /// rebuild it byte-for-byte, including NaN "absent" slots a schema
    /// check could not distinguish. Encode-side callers should keep using
    /// [`Tuple::new`] / [`TupleBuilder`].
    pub fn from_wire(seq: u64, timestamp: Micros, values: Vec<f64>) -> Self {
        Tuple {
            seq,
            timestamp,
            values: values.into(),
        }
    }

    /// Sequence number assigned by the source (strictly increasing).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The interned identity this tuple resolves to (its sequence number
    /// as a [`TupleId`]).
    pub fn id(&self) -> TupleId {
        TupleId(self.seq)
    }

    /// Source timestamp.
    pub fn timestamp(&self) -> Micros {
        self.timestamp
    }

    /// Value of an attribute, or `None` if it was never set (NaN).
    pub fn get(&self, attr: AttrId) -> Option<f64> {
        let v = *self.values.get(attr.index())?;
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Value of an attribute, failing with a descriptive error when absent.
    ///
    /// # Errors
    /// Returns [`Error::MissingValue`] when the attribute was never set.
    pub fn require(&self, attr: AttrId) -> Result<f64, Error> {
        self.get(attr).ok_or(Error::MissingValue {
            attr: attr.index(),
            seq: self.seq,
        })
    }

    /// All values in schema order (absent values are NaN).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Approximate on-the-wire size in bytes (seq + timestamp + payload),
    /// used by the network substrate for bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        8 + 8 + self.values.len() * 8
    }

    /// Re-sequences the tuple (used when splicing streams together).
    pub fn with_seq(&self, seq: u64) -> Tuple {
        Tuple {
            seq,
            timestamp: self.timestamp,
            values: Arc::clone(&self.values),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}@{}{:?}", self.seq, self.timestamp, &self.values[..])
    }
}

/// Incremental builder producing schema-checked, auto-sequenced tuples.
///
/// ```rust
/// use gasf_core::{schema::Schema, tuple::TupleBuilder};
/// # fn main() -> Result<(), gasf_core::Error> {
/// let schema = Schema::new(["t"]);
/// let mut b = TupleBuilder::new(&schema);
/// let t0 = b.at_millis(0).set("t", 1.0).build()?;
/// let t1 = b.at_millis(10).set("t", 2.0).build()?;
/// assert_eq!(t0.seq(), 0);
/// assert_eq!(t1.seq(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TupleBuilder {
    schema: Schema,
    next_seq: u64,
    pending_ts: Micros,
    pending: Vec<f64>,
    error: Option<Error>,
}

impl TupleBuilder {
    /// Creates a builder for `schema`, starting at sequence number 0.
    pub fn new(schema: &Schema) -> Self {
        TupleBuilder {
            schema: schema.clone(),
            next_seq: 0,
            pending_ts: Micros::ZERO,
            pending: vec![f64::NAN; schema.len()],
            error: None,
        }
    }

    /// Sets the timestamp of the tuple under construction (microseconds).
    pub fn at(&mut self, ts: Micros) -> &mut Self {
        self.pending_ts = ts;
        self
    }

    /// Sets the timestamp in milliseconds.
    pub fn at_millis(&mut self, ms: u64) -> &mut Self {
        self.at(Micros::from_millis(ms))
    }

    /// Sets one attribute by name.
    ///
    /// Unknown names are reported when [`build`](Self::build) is called, so
    /// call chains stay ergonomic.
    pub fn set(&mut self, name: &str, value: f64) -> &mut Self {
        match self.schema.attr(name) {
            Ok(id) => self.pending[id.index()] = value,
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Sets one attribute by id.
    pub fn set_attr(&mut self, attr: AttrId, value: f64) -> &mut Self {
        self.pending[attr.index()] = value;
        self
    }

    /// Sets all values at once, in schema order.
    pub fn set_all(&mut self, values: &[f64]) -> &mut Self {
        if values.len() != self.schema.len() {
            self.error = Some(Error::SchemaMismatch {
                expected: self.schema.len(),
                actual: values.len(),
            });
        } else {
            self.pending.copy_from_slice(values);
        }
        self
    }

    /// Finalises the pending tuple, assigns the next sequence number and
    /// resets the builder for the next tuple.
    ///
    /// # Errors
    /// Returns any error recorded by `set`/`set_all` (unknown attribute,
    /// schema mismatch).
    pub fn build(&mut self) -> Result<Tuple, Error> {
        if let Some(e) = self.error.take() {
            self.pending.fill(f64::NAN);
            return Err(e);
        }
        let values = std::mem::replace(&mut self.pending, vec![f64::NAN; self.schema.len()]);
        let t = Tuple {
            seq: self.next_seq,
            timestamp: self.pending_ts,
            values: values.into(),
        };
        self.next_seq += 1;
        Ok(t)
    }
}

/// Convenience: builds a single-attribute stream from `(millis, value)` pairs.
///
/// Used pervasively by tests and examples to transcribe the paper's worked
/// examples, e.g. the nine-tuple temperature sequence of §2.1.1.
///
/// # Panics
/// Panics if `schema` does not contain `attr` — this helper is meant for
/// literal test fixtures where that is a programming error.
pub fn series(schema: &Schema, attr: &str, points: &[(u64, f64)]) -> Vec<Tuple> {
    let mut b = TupleBuilder::new(schema);
    points
        .iter()
        .map(|(ms, v)| {
            b.at_millis(*ms)
                .set(attr, *v)
                .build()
                .expect("series fixture must match schema")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["a", "b"])
    }

    #[test]
    fn builder_sequences_and_checks() {
        let s = schema();
        let mut b = TupleBuilder::new(&s);
        let t = b.at_millis(5).set("a", 1.0).build().unwrap();
        assert_eq!(t.seq(), 0);
        assert_eq!(t.timestamp(), Micros::from_millis(5));
        assert_eq!(t.get(s.attr("a").unwrap()), Some(1.0));
        assert_eq!(t.get(s.attr("b").unwrap()), None);
        assert!(t.require(s.attr("b").unwrap()).is_err());

        let err = b.set("nope", 2.0).build().unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute { .. }));
        // builder recovers after an error
        let t2 = b.set("b", 3.0).build().unwrap();
        assert_eq!(t2.seq(), 1);
        assert_eq!(t2.get(s.attr("b").unwrap()), Some(3.0));
        assert_eq!(t2.get(s.attr("a").unwrap()), None, "pending was reset");
    }

    #[test]
    fn set_all_checks_width() {
        let s = schema();
        let mut b = TupleBuilder::new(&s);
        assert!(matches!(
            b.set_all(&[1.0]).build(),
            Err(Error::SchemaMismatch { .. })
        ));
        let t = b.set_all(&[1.0, 2.0]).build().unwrap();
        assert_eq!(t.values(), &[1.0, 2.0]);
    }

    #[test]
    fn direct_constructor_checks_width() {
        let s = schema();
        assert!(Tuple::new(&s, 0, Micros::ZERO, vec![0.0]).is_err());
        let t = Tuple::new(&s, 7, Micros(3), vec![0.0, 1.0]).unwrap();
        assert_eq!(t.seq(), 7);
        assert_eq!(t.with_seq(9).seq(), 9);
    }

    #[test]
    fn wire_size_counts_header_and_payload() {
        let s = schema();
        let t = Tuple::new(&s, 0, Micros::ZERO, vec![0.0, 1.0]).unwrap();
        assert_eq!(t.wire_size(), 8 + 8 + 16);
    }

    #[test]
    fn series_helper_builds_ordered_stream() {
        let s = Schema::new(["t"]);
        let ts = series(&s, "t", &[(0, 0.0), (10, 35.0), (20, 29.0)]);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[2].seq(), 2);
        assert_eq!(ts[1].get(s.attr("t").unwrap()), Some(35.0));
    }

    #[test]
    fn display_mentions_seq_and_time() {
        let s = Schema::new(["t"]);
        let t = Tuple::new(&s, 4, Micros::from_millis(2), vec![1.5]).unwrap();
        let txt = t.to_string();
        assert!(txt.contains("#4"));
        assert!(txt.contains("1.5"));
    }

    #[test]
    fn tuple_id_mirrors_seq_and_orders_by_arrival() {
        let s = Schema::new(["t"]);
        let t = Tuple::new(&s, 7, Micros(3), vec![0.0]).unwrap();
        assert_eq!(t.id(), TupleId::from_seq(7));
        assert_eq!(t.id().seq(), 7);
        assert_eq!(t.id().next(), TupleId::from_seq(8));
        assert!(TupleId::from_seq(7) < TupleId::from_seq(8));
        assert_eq!(TupleId::from_seq(7).to_string(), "t7");
    }

    #[test]
    fn pool_interns_resolves_and_releases() {
        let s = Schema::new(["t"]);
        let mut pool = TuplePool::new();
        assert!(pool.is_empty());
        let mut ids = Vec::new();
        for seq in 0..5u64 {
            let t = Tuple::new(&s, seq, Micros(seq * 10 + 1), vec![seq as f64]).unwrap();
            let (id, arc) = pool.intern(t);
            assert_eq!(id.seq(), seq);
            assert_eq!(arc.seq(), seq);
            ids.push(id);
        }
        assert_eq!(pool.len(), 5);
        assert_eq!(pool.get(ids[3]).unwrap().values(), &[3.0]);
        // releasing from the middle keeps later ids resolvable
        pool.release(ids[1]);
        assert!(!pool.contains(ids[1]));
        assert!(pool.contains(ids[4]));
        assert_eq!(pool.len(), 4);
        // double release is a no-op
        pool.release(ids[1]);
        assert_eq!(pool.len(), 4);
        // releasing the front trims the ring
        pool.release(ids[0]);
        assert_eq!(pool.len(), 3);
        assert!(pool.get(ids[0]).is_none());
        for id in &ids[2..] {
            pool.release(*id);
        }
        assert!(pool.is_empty());
    }

    #[test]
    fn pool_ids_are_never_reused_even_across_a_drain() {
        let s = Schema::new(["t"]);
        let mut pool = TuplePool::new();
        let (a, _) = pool.intern(Tuple::new(&s, 10, Micros(1), vec![0.0]).unwrap());
        pool.release(a);
        assert!(pool.is_empty());
        // a stale id held across the drain can never alias a new payload
        assert!(pool.get(a).is_none());
        let (b, _) = pool.intern(Tuple::new(&s, 11, Micros(2), vec![1.0]).unwrap());
        assert!(pool.contains(b));
        assert!(pool.get(a).is_none());
        // gaps (spliced streams) leave vacant, unresolvable slots
        let (c, _) = pool.intern(Tuple::new(&s, 14, Micros(3), vec![2.0]).unwrap());
        assert!(pool.contains(c));
        assert!(!pool.contains(TupleId::from_seq(12)));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_interns_batch_rows_lazily() {
        let s = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&s);
        let tuples: Vec<Tuple> = (0..6)
            .map(|i| b.at_millis(i * 10 + 1).set("t", i as f64).build().unwrap())
            .collect();
        let batch = Arc::new(crate::batch::TupleBatch::from_tuples(&s, &tuples).unwrap());
        let mut pool = TuplePool::new();
        pool.intern_rows(&batch, 4);
        assert_eq!(pool.len(), 4);
        assert_eq!(
            pool.materializations(),
            0,
            "interning allocates no payloads"
        );
        let id = TupleId::from_seq(2);
        assert!(pool.contains(id));
        assert!(pool.get(id).is_none(), "lazy row not materialised yet");
        let arc = pool.resolve(id).unwrap();
        assert_eq!(&*arc, &tuples[2]);
        assert_eq!(pool.materializations(), 1);
        // second resolve reuses the materialised payload
        let again = pool.resolve(id).unwrap();
        assert!(Arc::ptr_eq(&arc, &again));
        assert_eq!(pool.materializations(), 1);
        assert!(pool.get(id).is_some(), "materialised slot now reads back");
        // rows past the requested prefix were not interned
        assert!(!pool.contains(TupleId::from_seq(4)));
        // single-tuple interning continues after the batch run
        let (id5, _) = pool.intern(tuples[4].clone());
        assert_eq!(id5.seq(), 4);
        pool.release(id);
        assert!(pool.resolve(id).is_none(), "released ids never resolve");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn pool_rejects_batch_rows_behind_the_frontier() {
        let s = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&s);
        let tuples: Vec<Tuple> = (0..3)
            .map(|i| b.at_millis(i * 10 + 1).set("t", 0.0).build().unwrap())
            .collect();
        let batch = Arc::new(crate::batch::TupleBatch::from_tuples(&s, &tuples).unwrap());
        let mut pool = TuplePool::new();
        pool.intern(Tuple::new(&s, 9, Micros(1), vec![0.0]).unwrap());
        pool.intern_rows(&batch, 3);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn pool_rejects_reusing_a_drained_seq() {
        let s = Schema::new(["t"]);
        let mut pool = TuplePool::new();
        let (a, _) = pool.intern(Tuple::new(&s, 10, Micros(1), vec![0.0]).unwrap());
        pool.release(a);
        // the frontier never rewinds, even when the pool is empty
        pool.intern(Tuple::new(&s, 3, Micros(2), vec![1.0]).unwrap());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn pool_rejects_out_of_order_interning() {
        let s = Schema::new(["t"]);
        let mut pool = TuplePool::new();
        pool.intern(Tuple::new(&s, 5, Micros(1), vec![0.0]).unwrap());
        pool.intern(Tuple::new(&s, 5, Micros(2), vec![1.0]).unwrap());
    }
}
