//! Stream tuples.
//!
//! "A tuple consists of a collection of attribute-value pairs … all tuples
//! are timestamped at the originating sources" (§2.2.1). Values are `f64`
//! aligned to the stream's [`Schema`]; an absent value is `NaN` and filters
//! reject tuples missing the attributes they need.

use crate::error::Error;
use crate::schema::{AttrId, Schema};
use crate::time::Micros;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One item of a data stream.
///
/// Tuples are cheap to clone: the value payload is shared behind an `Arc`
/// because the same tuple flows into every filter of a group and may sit in
/// several buffers at once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    seq: u64,
    timestamp: Micros,
    values: Arc<[f64]>,
}

impl Tuple {
    /// Creates a tuple directly from parts.
    ///
    /// Most callers should prefer [`TupleBuilder`], which checks names
    /// against a schema. This constructor only checks the value count.
    ///
    /// # Errors
    /// Returns [`Error::SchemaMismatch`] when `values.len() != schema.len()`.
    pub fn new(
        schema: &Schema,
        seq: u64,
        timestamp: Micros,
        values: Vec<f64>,
    ) -> Result<Self, Error> {
        if values.len() != schema.len() {
            return Err(Error::SchemaMismatch {
                expected: schema.len(),
                actual: values.len(),
            });
        }
        Ok(Tuple {
            seq,
            timestamp,
            values: values.into(),
        })
    }

    /// Sequence number assigned by the source (strictly increasing).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Source timestamp.
    pub fn timestamp(&self) -> Micros {
        self.timestamp
    }

    /// Value of an attribute, or `None` if it was never set (NaN).
    pub fn get(&self, attr: AttrId) -> Option<f64> {
        let v = *self.values.get(attr.index())?;
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Value of an attribute, failing with a descriptive error when absent.
    ///
    /// # Errors
    /// Returns [`Error::MissingValue`] when the attribute was never set.
    pub fn require(&self, attr: AttrId) -> Result<f64, Error> {
        self.get(attr).ok_or(Error::MissingValue {
            attr: attr.index(),
            seq: self.seq,
        })
    }

    /// All values in schema order (absent values are NaN).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Approximate on-the-wire size in bytes (seq + timestamp + payload),
    /// used by the network substrate for bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        8 + 8 + self.values.len() * 8
    }

    /// Re-sequences the tuple (used when splicing streams together).
    pub fn with_seq(&self, seq: u64) -> Tuple {
        Tuple {
            seq,
            timestamp: self.timestamp,
            values: Arc::clone(&self.values),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}@{}{:?}", self.seq, self.timestamp, &self.values[..])
    }
}

/// Incremental builder producing schema-checked, auto-sequenced tuples.
///
/// ```rust
/// use gasf_core::{schema::Schema, tuple::TupleBuilder};
/// # fn main() -> Result<(), gasf_core::Error> {
/// let schema = Schema::new(["t"]);
/// let mut b = TupleBuilder::new(&schema);
/// let t0 = b.at_millis(0).set("t", 1.0).build()?;
/// let t1 = b.at_millis(10).set("t", 2.0).build()?;
/// assert_eq!(t0.seq(), 0);
/// assert_eq!(t1.seq(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TupleBuilder {
    schema: Schema,
    next_seq: u64,
    pending_ts: Micros,
    pending: Vec<f64>,
    error: Option<Error>,
}

impl TupleBuilder {
    /// Creates a builder for `schema`, starting at sequence number 0.
    pub fn new(schema: &Schema) -> Self {
        TupleBuilder {
            schema: schema.clone(),
            next_seq: 0,
            pending_ts: Micros::ZERO,
            pending: vec![f64::NAN; schema.len()],
            error: None,
        }
    }

    /// Sets the timestamp of the tuple under construction (microseconds).
    pub fn at(&mut self, ts: Micros) -> &mut Self {
        self.pending_ts = ts;
        self
    }

    /// Sets the timestamp in milliseconds.
    pub fn at_millis(&mut self, ms: u64) -> &mut Self {
        self.at(Micros::from_millis(ms))
    }

    /// Sets one attribute by name.
    ///
    /// Unknown names are reported when [`build`](Self::build) is called, so
    /// call chains stay ergonomic.
    pub fn set(&mut self, name: &str, value: f64) -> &mut Self {
        match self.schema.attr(name) {
            Ok(id) => self.pending[id.index()] = value,
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Sets one attribute by id.
    pub fn set_attr(&mut self, attr: AttrId, value: f64) -> &mut Self {
        self.pending[attr.index()] = value;
        self
    }

    /// Sets all values at once, in schema order.
    pub fn set_all(&mut self, values: &[f64]) -> &mut Self {
        if values.len() != self.schema.len() {
            self.error = Some(Error::SchemaMismatch {
                expected: self.schema.len(),
                actual: values.len(),
            });
        } else {
            self.pending.copy_from_slice(values);
        }
        self
    }

    /// Finalises the pending tuple, assigns the next sequence number and
    /// resets the builder for the next tuple.
    ///
    /// # Errors
    /// Returns any error recorded by `set`/`set_all` (unknown attribute,
    /// schema mismatch).
    pub fn build(&mut self) -> Result<Tuple, Error> {
        if let Some(e) = self.error.take() {
            self.pending.fill(f64::NAN);
            return Err(e);
        }
        let values = std::mem::replace(&mut self.pending, vec![f64::NAN; self.schema.len()]);
        let t = Tuple {
            seq: self.next_seq,
            timestamp: self.pending_ts,
            values: values.into(),
        };
        self.next_seq += 1;
        Ok(t)
    }
}

/// Convenience: builds a single-attribute stream from `(millis, value)` pairs.
///
/// Used pervasively by tests and examples to transcribe the paper's worked
/// examples, e.g. the nine-tuple temperature sequence of §2.1.1.
///
/// # Panics
/// Panics if `schema` does not contain `attr` — this helper is meant for
/// literal test fixtures where that is a programming error.
pub fn series(schema: &Schema, attr: &str, points: &[(u64, f64)]) -> Vec<Tuple> {
    let mut b = TupleBuilder::new(schema);
    points
        .iter()
        .map(|(ms, v)| {
            b.at_millis(*ms)
                .set(attr, *v)
                .build()
                .expect("series fixture must match schema")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["a", "b"])
    }

    #[test]
    fn builder_sequences_and_checks() {
        let s = schema();
        let mut b = TupleBuilder::new(&s);
        let t = b.at_millis(5).set("a", 1.0).build().unwrap();
        assert_eq!(t.seq(), 0);
        assert_eq!(t.timestamp(), Micros::from_millis(5));
        assert_eq!(t.get(s.attr("a").unwrap()), Some(1.0));
        assert_eq!(t.get(s.attr("b").unwrap()), None);
        assert!(t.require(s.attr("b").unwrap()).is_err());

        let err = b.set("nope", 2.0).build().unwrap_err();
        assert!(matches!(err, Error::UnknownAttribute { .. }));
        // builder recovers after an error
        let t2 = b.set("b", 3.0).build().unwrap();
        assert_eq!(t2.seq(), 1);
        assert_eq!(t2.get(s.attr("b").unwrap()), Some(3.0));
        assert_eq!(t2.get(s.attr("a").unwrap()), None, "pending was reset");
    }

    #[test]
    fn set_all_checks_width() {
        let s = schema();
        let mut b = TupleBuilder::new(&s);
        assert!(matches!(
            b.set_all(&[1.0]).build(),
            Err(Error::SchemaMismatch { .. })
        ));
        let t = b.set_all(&[1.0, 2.0]).build().unwrap();
        assert_eq!(t.values(), &[1.0, 2.0]);
    }

    #[test]
    fn direct_constructor_checks_width() {
        let s = schema();
        assert!(Tuple::new(&s, 0, Micros::ZERO, vec![0.0]).is_err());
        let t = Tuple::new(&s, 7, Micros(3), vec![0.0, 1.0]).unwrap();
        assert_eq!(t.seq(), 7);
        assert_eq!(t.with_seq(9).seq(), 9);
    }

    #[test]
    fn wire_size_counts_header_and_payload() {
        let s = schema();
        let t = Tuple::new(&s, 0, Micros::ZERO, vec![0.0, 1.0]).unwrap();
        assert_eq!(t.wire_size(), 8 + 8 + 16);
    }

    #[test]
    fn series_helper_builds_ordered_stream() {
        let s = Schema::new(["t"]);
        let ts = series(&s, "t", &[(0, 0.0), (10, 35.0), (20, 29.0)]);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[2].seq(), 2);
        assert_eq!(ts[1].get(s.attr("t").unwrap()), Some(35.0));
    }

    #[test]
    fn display_mentions_seq_and_time() {
        let s = Schema::new(["t"]);
        let t = Tuple::new(&s, 4, Micros::from_millis(2), vec![1.5]).unwrap();
        let txt = t.to_string();
        assert!(txt.contains("#4"));
        assert!(txt.contains("1.5"));
    }
}
