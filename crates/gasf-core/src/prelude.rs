//! Convenience re-exports for typical gasf-core usage.
//!
//! ```rust
//! use gasf_core::prelude::*;
//! ```

pub use crate::batch::TupleBatch;
pub use crate::bitset::{BitSet, FilterSet};
pub use crate::candidate::{CandidateTuple, CloseCause, ClosedSet, FilterId, TimeCover};
pub use crate::connector::{Chunk, ConnectorSink, SinkConnector, SourceConnector};
pub use crate::cuts::{RuntimePredictor, TimeConstraint};
pub use crate::engine::{Algorithm, Emission, GroupEngine, GroupEngineBuilder, OutputStrategy};
pub use crate::error::Error;
pub use crate::event_time::{
    Aggregate, EventTimeConfig, LatePolicy, LateTuple, ReorderBuffer, Watermark, WindowFilter,
    WindowKind, WindowOutput,
};
pub use crate::filter::{
    build_filter, DeltaCompression, GroupFilter, MultiAttrDelta, ReservoirSampler,
    StratifiedSampler, TrendDelta,
};
pub use crate::metrics::{BoxPlot, EngineMetrics, LatencyHistogram};
pub use crate::monitor::{BenefitMonitor, BenefitReport, Recommendation};
pub use crate::plan::{CompiledRoster, EvaluatorTier, RosterPlan};
pub use crate::quality::{Dependency, FilterKind, FilterSpec, PickDegree, PickSpec, Prescription};
pub use crate::region::{Region, RegionTracker};
pub use crate::schema::{AttrId, Schema};
pub use crate::shard::{ShardedEngine, ShardedEngineBuilder};
pub use crate::shed::{PushOutcome, ShedHeadroom};
pub use crate::sink::{EmissionSink, NullSink, StreamOperator, Tee, VecSink};
pub use crate::snapshot::{EngineSnapshot, GroupSnapshot};
pub use crate::time::Micros;
pub use crate::tuple::{series, Tuple, TupleBuilder, TupleId, TuplePool};
pub use crate::utility::GroupUtility;
