//! Error type for the `gasf-core` crate.

use std::fmt;

/// Errors produced by gasf-core APIs.
///
/// All public fallible functions in this crate return `Result<_, Error>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An attribute name was not found in the [`Schema`](crate::schema::Schema).
    UnknownAttribute {
        /// The attribute name that failed to resolve.
        name: String,
    },
    /// A tuple's value vector did not match the schema width.
    SchemaMismatch {
        /// Number of attributes the schema defines.
        expected: usize,
        /// Number of values the tuple carried.
        actual: usize,
    },
    /// Tuples must arrive in non-decreasing timestamp order (equal
    /// timestamps are legal; dense sequence numbers are the tiebreak).
    OutOfOrder {
        /// Timestamp of the previously accepted tuple (microseconds).
        last_us: u64,
        /// Timestamp of the offending tuple (microseconds).
        got_us: u64,
    },
    /// A filter specification violated a validity constraint.
    InvalidSpec {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The engine configuration is inconsistent
    /// (e.g. stateful filters with the region-based algorithm).
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// Tuple sequence numbers must be dense (each exactly one more than the
    /// previous) so that candidate-set contiguity is well defined.
    NonContiguousSeq {
        /// The sequence number the engine expected.
        expected: u64,
        /// The sequence number the tuple carried.
        got: u64,
    },
    /// `push` was called after `finish`.
    Finished,
    /// A filter id does not name a live member of the group (never
    /// assigned, or already removed by the subscription control plane).
    UnknownFilter {
        /// The unknown or vacated filter id.
        id: crate::candidate::FilterId,
    },
    /// A tuple was missing a value for an attribute a filter needs.
    MissingValue {
        /// The attribute index whose value was NaN/absent.
        attr: usize,
        /// Sequence number of the offending tuple.
        seq: u64,
    },
    /// A source or sink connector failed (I/O, framing, or transport).
    Connector {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute { name } => {
                write!(f, "unknown attribute `{name}`")
            }
            Error::SchemaMismatch { expected, actual } => {
                write!(f, "schema expects {expected} values, tuple has {actual}")
            }
            Error::OutOfOrder { last_us, got_us } => write!(
                f,
                "out-of-order tuple: timestamp {got_us}us not after {last_us}us"
            ),
            Error::NonContiguousSeq { expected, got } => {
                write!(
                    f,
                    "non-contiguous sequence number: expected {expected}, got {got}"
                )
            }
            Error::InvalidSpec { reason } => write!(f, "invalid filter spec: {reason}"),
            Error::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            Error::Finished => write!(f, "engine already finished"),
            Error::UnknownFilter { id } => write!(f, "unknown filter {id}"),
            Error::MissingValue { attr, seq } => {
                write!(f, "tuple {seq} has no value for attribute #{attr}")
            }
            Error::Connector { reason } => write!(f, "connector failure: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::UnknownAttribute { name: "x".into() };
        let s = e.to_string();
        assert!(s.starts_with("unknown attribute"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn out_of_order_message_mentions_both_timestamps() {
        let e = Error::OutOfOrder {
            last_us: 10,
            got_us: 5,
        };
        let s = e.to_string();
        assert!(s.contains("10us") && s.contains("5us"));
    }
}
