//! Stream schemas: interned attribute names.
//!
//! Sources are "time-ordered series with self-describing data types"
//! (§2.2.1); a tuple is a collection of attribute–value pairs. We intern
//! attribute names into dense [`AttrId`]s once, so that per-tuple processing
//! never touches strings.

use crate::error::Error;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of an attribute within a [`Schema`].
///
/// An `AttrId` is only meaningful together with the schema that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub(crate) u32);

impl AttrId {
    /// Index of the attribute in the schema (and in tuple value vectors).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attr#{}", self.0)
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Inner {
    names: Vec<String>,
}

/// An ordered set of named attributes carried by every tuple of a stream.
///
/// Cloning a `Schema` is cheap (shared `Arc`).
///
/// ```rust
/// use gasf_core::schema::Schema;
/// let schema = Schema::new(["fluoro", "tmpr2", "tmpr4"]);
/// let id = schema.attr("tmpr4").unwrap();
/// assert_eq!(schema.name(id), "tmpr4");
/// assert_eq!(schema.len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    inner: Arc<Inner>,
}

impl Schema {
    /// Creates a schema from attribute names, in order.
    ///
    /// # Panics
    /// Panics if two attributes share a name — a schema with duplicate
    /// names could silently misroute filter subscriptions.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate attribute name `{n}` in schema"
            );
        }
        Schema {
            inner: Arc::new(Inner { names }),
        }
    }

    /// Resolves an attribute name to its id.
    ///
    /// # Errors
    /// Returns [`Error::UnknownAttribute`] if the name is not in the schema.
    pub fn attr(&self, name: &str) -> Result<AttrId, Error> {
        self.inner
            .names
            .iter()
            .position(|n| n == name)
            .map(|i| AttrId(i as u32))
            .ok_or_else(|| Error::UnknownAttribute { name: name.into() })
    }

    /// The name of an attribute id.
    ///
    /// # Panics
    /// Panics if `id` came from a different, wider schema.
    pub fn name(&self, id: AttrId) -> &str {
        &self.inner.names[id.index()]
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.inner.names.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.inner.names.is_empty()
    }

    /// Iterates over `(AttrId, name)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.inner
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId(i as u32), n.as_str()))
    }

    /// Whether two schema handles refer to the same interned attribute set.
    pub fn same_as(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.names == other.inner.names
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.same_as(other)
    }
}
impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_and_name() {
        let s = Schema::new(["a", "b"]);
        let b = s.attr("b").unwrap();
        assert_eq!(b.index(), 1);
        assert_eq!(s.name(b), "b");
        assert!(matches!(s.attr("zzz"), Err(Error::UnknownAttribute { .. })));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_panic() {
        let _ = Schema::new(["x", "x"]);
    }

    #[test]
    fn clone_is_shared() {
        let s = Schema::new(["a"]);
        let t = s.clone();
        assert!(s.same_as(&t));
        assert_eq!(s, t);
    }

    #[test]
    fn structural_equality_across_instances() {
        let s = Schema::new(["a", "b"]);
        let t = Schema::new(["a", "b"]);
        assert_eq!(s, t);
        let u = Schema::new(["b", "a"]);
        assert_ne!(s, u);
    }

    #[test]
    fn iter_yields_in_order() {
        let s = Schema::new(["a", "b", "c"]);
        let names: Vec<&str> = s.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 3);
    }
}
