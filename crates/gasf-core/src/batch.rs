//! Columnar tuple batches: the SoA form of a stream segment.
//!
//! The engines' hot path historically ingested one [`Tuple`] at a time —
//! one `Arc` allocation, one stream-order check and one sink hand-off per
//! tuple. Production rates want the source→engine seam to carry
//! *schema-typed column arenas* instead: a [`TupleBatch`] stores a
//! contiguous run of the stream as one `Vec<f64>` **per attribute** plus a
//! timestamp column and a first sequence number. The compiled roster can
//! then derive each key class column-at-a-time
//! ([`CompiledRoster::derive_batch`](crate::plan::CompiledRoster)), and
//! the engine walks the derived keys row by row without ever touching a
//! per-tuple payload ([`GroupEngine::push_batch_columnar`](
//! crate::engine::GroupEngine::push_batch_columnar)).
//!
//! **Ordering is validated at construction**: rows carry contiguous
//! sequence numbers (`first_seq + row`) and non-decreasing timestamps
//! (equal timestamps are legal sensor output — the dense sequence range
//! is the deterministic tiebreak, matching the reorder buffer's
//! `(timestamp, seq)` release order), so an engine only has to check the
//! batch's *first* row against its stream frontier — the per-row checks
//! of the single-tuple path are hoisted out of the loop.
//!
//! A batch row materialises back into an ordinary [`Tuple`] bit-for-bit
//! ([`materialize_row`](TupleBatch::materialize_row) gathers across the
//! columns, preserving NaN "absent" slots), which is what keeps the
//! columnar path byte-identical to the single-tuple reference: payloads
//! are materialised lazily, only for rows that are actually emitted.

use crate::error::Error;
use crate::schema::{AttrId, Schema};
use crate::time::Micros;
use crate::tuple::Tuple;

/// A contiguous, stream-ordered run of tuples in columnar (SoA) form.
///
/// Row `r` corresponds to the stream tuple with sequence number
/// `first_seq + r`; values live in per-attribute columns aligned to the
/// batch's [`Schema`], with NaN marking absent values exactly as in
/// [`Tuple`].
#[derive(Debug, Clone, PartialEq)]
pub struct TupleBatch {
    schema: Schema,
    first_seq: u64,
    timestamps: Vec<Micros>,
    /// Attr-major value arenas; `columns[a][r]` is attribute `a` of row
    /// `r`. Every column has exactly `timestamps.len()` rows.
    columns: Vec<Vec<f64>>,
}

impl TupleBatch {
    /// Builds a batch from a run of row-form tuples.
    ///
    /// # Errors
    /// * [`Error::SchemaMismatch`] if a tuple's width differs from
    ///   `schema`,
    /// * [`Error::NonContiguousSeq`] if sequence numbers are not
    ///   contiguous,
    /// * [`Error::OutOfOrder`] if timestamps decrease.
    pub fn from_tuples(schema: &Schema, tuples: &[Tuple]) -> Result<TupleBatch, Error> {
        let rows = tuples.len();
        let mut timestamps = Vec::with_capacity(rows);
        let mut columns: Vec<Vec<f64>> = (0..schema.len())
            .map(|_| Vec::with_capacity(rows))
            .collect();
        let first_seq = tuples.first().map_or(0, Tuple::seq);
        for (r, t) in tuples.iter().enumerate() {
            if t.values().len() != schema.len() {
                return Err(Error::SchemaMismatch {
                    expected: schema.len(),
                    actual: t.values().len(),
                });
            }
            if t.seq() != first_seq + r as u64 {
                return Err(Error::NonContiguousSeq {
                    expected: first_seq + r as u64,
                    got: t.seq(),
                });
            }
            if let Some(&last) = timestamps.last() {
                if t.timestamp() < last {
                    return Err(Error::OutOfOrder {
                        last_us: last.as_micros(),
                        got_us: t.timestamp().as_micros(),
                    });
                }
            }
            timestamps.push(t.timestamp());
            for (col, &v) in columns.iter_mut().zip(t.values()) {
                col.push(v);
            }
        }
        Ok(TupleBatch {
            schema: schema.clone(),
            first_seq,
            timestamps,
            columns,
        })
    }

    /// Builds a batch directly from column arenas (the zero-copy
    /// constructor for columnar sources).
    ///
    /// # Errors
    /// * [`Error::SchemaMismatch`] if the column count differs from the
    ///   schema width or any column's length differs from the timestamp
    ///   column's,
    /// * [`Error::OutOfOrder`] if timestamps decrease.
    pub fn from_columns(
        schema: &Schema,
        first_seq: u64,
        timestamps: Vec<Micros>,
        columns: Vec<Vec<f64>>,
    ) -> Result<TupleBatch, Error> {
        if columns.len() != schema.len() {
            return Err(Error::SchemaMismatch {
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        for col in &columns {
            if col.len() != timestamps.len() {
                return Err(Error::SchemaMismatch {
                    expected: timestamps.len(),
                    actual: col.len(),
                });
            }
        }
        for w in timestamps.windows(2) {
            if w[1] < w[0] {
                return Err(Error::OutOfOrder {
                    last_us: w[0].as_micros(),
                    got_us: w[1].as_micros(),
                });
            }
        }
        Ok(TupleBatch {
            schema: schema.clone(),
            first_seq,
            timestamps,
            columns,
        })
    }

    /// The schema the columns are aligned to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows in the batch.
    pub fn rows(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Sequence number of the first row.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Sequence number of row `r` (`first_seq + r`).
    pub fn seq(&self, r: usize) -> u64 {
        debug_assert!(r < self.rows());
        self.first_seq + r as u64
    }

    /// Timestamp of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn timestamp(&self, r: usize) -> Micros {
        self.timestamps[r]
    }

    /// The timestamp column.
    pub fn timestamps(&self) -> &[Micros] {
        &self.timestamps
    }

    /// The value column of one attribute (length [`rows`](Self::rows);
    /// NaN marks absent values).
    ///
    /// # Panics
    /// Panics if `attr` is out of range for the batch's schema.
    pub fn column(&self, attr: AttrId) -> &[f64] {
        &self.columns[attr.index()]
    }

    /// Gathers row `r` back into an ordinary row-form [`Tuple`],
    /// bit-for-bit (NaN absent slots included).
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn materialize_row(&self, r: usize) -> Tuple {
        assert!(r < self.rows(), "row {r} out of range ({})", self.rows());
        let values: Vec<f64> = self.columns.iter().map(|col| col[r]).collect();
        Tuple::from_wire(self.seq(r), self.timestamps[r], values)
    }

    /// Materialises every row (reference/diagnostic path).
    pub fn materialize(&self) -> Vec<Tuple> {
        (0..self.rows()).map(|r| self.materialize_row(r)).collect()
    }

    /// Copies rows `start..start + len` into a new batch.
    ///
    /// Any contiguous sub-range of a valid batch is itself valid (dense
    /// sequence numbers starting at `first_seq + start`, non-decreasing
    /// timestamps), which is what makes a throttled batch push resumable
    /// at the exact rejected row: the caller re-offers
    /// `batch.slice(accepted, rest)` once credit returns.
    ///
    /// # Panics
    /// Panics if `start + len` exceeds [`rows`](Self::rows).
    pub fn slice(&self, start: usize, len: usize) -> TupleBatch {
        assert!(
            start + len <= self.rows(),
            "slice {start}..{} out of range ({})",
            start + len,
            self.rows()
        );
        TupleBatch {
            schema: self.schema.clone(),
            first_seq: self.first_seq + start as u64,
            timestamps: self.timestamps[start..start + len].to_vec(),
            columns: self
                .columns
                .iter()
                .map(|col| col[start..start + len].to_vec())
                .collect(),
        }
    }

    /// Approximate on-the-wire size in bytes (sum of the rows'
    /// [`Tuple::wire_size`]-equivalent layouts) — the replay-log and
    /// bandwidth accounting currency.
    pub fn wire_size(&self) -> usize {
        self.rows() * (8 + 8 + self.schema.len() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleBuilder;

    fn schema() -> Schema {
        Schema::new(["a", "b"])
    }

    fn fixture(n: usize) -> (Schema, Vec<Tuple>) {
        let s = schema();
        let mut b = TupleBuilder::new(&s);
        let tuples = (0..n)
            .map(|i| {
                b.at_millis(i as u64 * 10 + 1)
                    .set("a", i as f64)
                    .set("b", 100.0 + i as f64)
                    .build()
                    .unwrap()
            })
            .collect();
        (s, tuples)
    }

    #[test]
    fn roundtrips_rows_bit_for_bit() {
        let (s, tuples) = fixture(5);
        let batch = TupleBatch::from_tuples(&s, &tuples).unwrap();
        assert_eq!(batch.rows(), 5);
        assert_eq!(batch.first_seq(), 0);
        assert_eq!(
            batch.column(s.attr("a").unwrap()),
            &[0.0, 1.0, 2.0, 3.0, 4.0]
        );
        for (r, t) in tuples.iter().enumerate() {
            assert_eq!(&batch.materialize_row(r), t);
        }
        assert_eq!(batch.materialize(), tuples);
    }

    #[test]
    fn preserves_nan_absent_slots() {
        let s = schema();
        let mut b = TupleBuilder::new(&s);
        let t0 = b.at_millis(1).set("a", 1.0).build().unwrap(); // b absent
        let t1 = b.at_millis(2).set("b", 2.0).build().unwrap(); // a absent
        let batch = TupleBatch::from_tuples(&s, &[t0.clone(), t1.clone()]).unwrap();
        let a = s.attr("a").unwrap();
        let bb = s.attr("b").unwrap();
        assert!(batch.column(bb)[0].is_nan());
        assert!(batch.column(a)[1].is_nan());
        assert_eq!(batch.materialize_row(0).get(bb), None);
        assert_eq!(batch.materialize_row(1).get(a), None);
        assert_eq!(batch.materialize_row(0).get(a), Some(1.0));
    }

    #[test]
    fn rejects_non_contiguous_and_disordered_runs() {
        let (s, mut tuples) = fixture(3);
        tuples[2] = tuples[2].with_seq(7);
        assert!(matches!(
            TupleBatch::from_tuples(&s, &tuples),
            Err(Error::NonContiguousSeq {
                expected: 2,
                got: 7
            })
        ));
        let (s, tuples) = fixture(3);
        let mut disordered = tuples.clone();
        disordered.swap(0, 1);
        assert!(matches!(
            TupleBatch::from_tuples(&s, &disordered),
            Err(Error::NonContiguousSeq { .. })
        ));
        let wrong = Tuple::from_wire(2, Micros::from_millis(5), vec![0.0, 0.0]);
        let run = vec![tuples[0].clone(), tuples[1].clone(), wrong];
        assert!(matches!(
            TupleBatch::from_tuples(&s, &run),
            Err(Error::OutOfOrder { .. })
        ));
    }

    #[test]
    fn equal_timestamps_are_legal() {
        // Non-decreasing, not strictly increasing: equal timestamps with
        // the dense seq range as the tiebreak are valid sensor output.
        let s = schema();
        let same = Micros::from_millis(7);
        let tuples: Vec<Tuple> = (0..3)
            .map(|i| Tuple::from_wire(i, same, vec![i as f64, 0.0]))
            .collect();
        let batch = TupleBatch::from_tuples(&s, &tuples).unwrap();
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.materialize(), tuples);
        let cols = TupleBatch::from_columns(
            &s,
            0,
            vec![same, same],
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        )
        .unwrap();
        assert_eq!(cols.rows(), 2);
    }

    #[test]
    fn rejects_schema_width_mismatch() {
        let (s, _) = fixture(0);
        let narrow = Tuple::from_wire(0, Micros(1), vec![1.0]);
        assert!(matches!(
            TupleBatch::from_tuples(&s, &[narrow]),
            Err(Error::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn from_columns_validates_shape() {
        let s = schema();
        let ts = vec![Micros(1), Micros(2)];
        let ok = TupleBatch::from_columns(&s, 4, ts.clone(), vec![vec![1.0, 2.0], vec![3.0, 4.0]])
            .unwrap();
        assert_eq!(ok.seq(1), 5);
        assert_eq!(ok.wire_size(), 2 * (16 + 16));
        assert!(matches!(
            TupleBatch::from_columns(&s, 0, ts.clone(), vec![vec![1.0, 2.0]]),
            Err(Error::SchemaMismatch { .. })
        ));
        assert!(matches!(
            TupleBatch::from_columns(&s, 0, ts.clone(), vec![vec![1.0], vec![2.0]]),
            Err(Error::SchemaMismatch { .. })
        ));
        assert!(matches!(
            TupleBatch::from_columns(
                &s,
                0,
                vec![Micros(2), Micros(1)],
                vec![vec![1.0, 2.0], vec![3.0, 4.0]]
            ),
            Err(Error::OutOfOrder { .. })
        ));
    }

    #[test]
    fn slice_preserves_seqs_order_and_values() {
        let (s, tuples) = fixture(6);
        let batch = TupleBatch::from_tuples(&s, &tuples).unwrap();
        let mid = batch.slice(2, 3);
        assert_eq!(mid.rows(), 3);
        assert_eq!(mid.first_seq(), 2);
        assert_eq!(mid.materialize(), tuples[2..5].to_vec());
        // whole-range and empty slices are legal
        assert_eq!(batch.slice(0, 6).materialize(), tuples);
        assert!(batch.slice(6, 0).is_empty());
        // a slice is a valid batch: re-deriving it from its rows agrees
        let again = TupleBatch::from_tuples(&s, &mid.materialize()).unwrap();
        assert_eq!(again, mid);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rejects_overrun() {
        let (s, tuples) = fixture(3);
        let batch = TupleBatch::from_tuples(&s, &tuples).unwrap();
        let _ = batch.slice(2, 2);
    }

    #[test]
    fn empty_batch_is_fine() {
        let s = schema();
        let batch = TupleBatch::from_tuples(&s, &[]).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.rows(), 0);
        assert!(batch.materialize().is_empty());
    }
}
