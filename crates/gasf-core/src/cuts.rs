//! Timely cuts: latency enforcement for group-aware filtering (Ch. 3).
//!
//! Long candidate sets delay output. Given a group time constraint (the
//! maximum delay the filtering stage may add to a tuple), the engines
//! *cut* — force-close all open candidate sets — when accumulating more
//! data would violate the constraint. For the region-based algorithm the
//! check is `regionSpan + predictedGreedyTime >= constraint` (Fig. 3.3);
//! the greedy run-time is predicted by [`RuntimePredictor`], an online
//! linear-regression model over the most recent regions' `(size, CPU
//! time)` observations (§3.3), optionally overestimated by a safety margin.

use crate::time::Micros;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Group time constraint driving timely cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeConstraint {
    /// Maximum delay the filtering stage may add to any tuple.
    pub max_delay: Micros,
}

impl TimeConstraint {
    /// Creates a constraint with the given maximum per-tuple delay.
    pub fn max_delay(d: Micros) -> Self {
        TimeConstraint { max_delay: d }
    }
}

/// Online linear-regression predictor for the greedy algorithm's run time
/// as a function of region size.
///
/// Keeps a sliding window of recent `(region_size, cpu_micros)`
/// observations; `predict` evaluates the fitted line `size * slope +
/// intercept` plus a configurable overestimation constant. With fewer than
/// two observations (or a degenerate fit) it falls back to the maximum
/// observed cost, and to the overestimation constant alone when empty.
#[derive(Debug, Clone)]
pub struct RuntimePredictor {
    window: VecDeque<(f64, f64)>,
    capacity: usize,
    overestimate_us: f64,
}

impl RuntimePredictor {
    /// Window size used in the paper's prototype (ten most recent regions).
    pub const DEFAULT_WINDOW: usize = 10;

    /// Creates a predictor with the default window and no overestimation.
    pub fn new() -> Self {
        Self::with_window(Self::DEFAULT_WINDOW, 0.0)
    }

    /// Creates a predictor with a custom window size and an additive
    /// overestimation constant (microseconds) for conservative cuts.
    pub fn with_window(capacity: usize, overestimate_us: f64) -> Self {
        RuntimePredictor {
            window: VecDeque::with_capacity(capacity.max(2)),
            capacity: capacity.max(2),
            overestimate_us,
        }
    }

    /// Records the observed greedy run time for a region of `size` tuples.
    pub fn observe(&mut self, size: usize, cpu: Micros) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back((size as f64, cpu.as_micros() as f64));
    }

    /// Number of observations currently in the window.
    pub fn observations(&self) -> usize {
        self.window.len()
    }

    /// Least-squares `(slope, intercept)` over the window, if the fit is
    /// well-defined (≥ 2 observations with distinct sizes).
    pub fn fit(&self) -> Option<(f64, f64)> {
        let n = self.window.len() as f64;
        if self.window.len() < 2 {
            return None;
        }
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(x, y) in &self.window {
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        Some((slope, intercept))
    }

    /// Predicted greedy run time (microseconds) for a region of `size`
    /// tuples, including the overestimation margin. Never negative.
    pub fn predict_us(&self, size: usize) -> f64 {
        let base = match self.fit() {
            Some((slope, intercept)) => slope * size as f64 + intercept,
            None => self.window.iter().map(|&(_, y)| y).fold(0.0, f64::max),
        };
        (base + self.overestimate_us).max(0.0)
    }

    /// Predicted run time as [`Micros`].
    pub fn predict(&self, size: usize) -> Micros {
        Micros(self.predict_us(size).round() as u64)
    }
}

impl Default for RuntimePredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predictor_returns_margin() {
        let p = RuntimePredictor::with_window(10, 25.0);
        assert_eq!(p.predict_us(100), 25.0);
        assert_eq!(p.observations(), 0);
        assert!(p.fit().is_none());
    }

    #[test]
    fn single_observation_uses_max() {
        let mut p = RuntimePredictor::new();
        p.observe(5, Micros(50));
        assert_eq!(p.predict_us(100), 50.0);
    }

    #[test]
    fn fits_a_perfect_line() {
        let mut p = RuntimePredictor::new();
        // cost = 10 * size + 5
        for s in [1usize, 2, 3, 4] {
            p.observe(s, Micros(10 * s as u64 + 5));
        }
        let (slope, intercept) = p.fit().unwrap();
        assert!((slope - 10.0).abs() < 1e-9, "slope {slope}");
        assert!((intercept - 5.0).abs() < 1e-9, "intercept {intercept}");
        assert_eq!(p.predict(10), Micros(105));
    }

    #[test]
    fn degenerate_sizes_fall_back_to_max() {
        let mut p = RuntimePredictor::new();
        p.observe(3, Micros(10));
        p.observe(3, Micros(30));
        assert!(p.fit().is_none());
        assert_eq!(p.predict_us(99), 30.0);
    }

    #[test]
    fn window_slides() {
        let mut p = RuntimePredictor::with_window(3, 0.0);
        for i in 0..10u64 {
            p.observe(i as usize + 1, Micros(i));
        }
        assert_eq!(p.observations(), 3);
    }

    #[test]
    fn prediction_never_negative() {
        let mut p = RuntimePredictor::new();
        // negative slope line
        p.observe(1, Micros(100));
        p.observe(2, Micros(50));
        p.observe(3, Micros(0));
        assert!(p.predict_us(1000) >= 0.0);
    }

    #[test]
    fn overestimation_is_added() {
        let mut p = RuntimePredictor::with_window(10, 7.0);
        p.observe(1, Micros(10));
        p.observe(2, Micros(20));
        // fit: slope 10, intercept 0 -> predict(3) = 30 + 7
        assert_eq!(p.predict(3), Micros(37));
    }

    #[test]
    fn time_constraint_constructor() {
        let c = TimeConstraint::max_delay(Micros::from_millis(125));
        assert_eq!(c.max_delay, Micros::from_millis(125));
    }
}
