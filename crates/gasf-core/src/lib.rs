//! # gasf-core — Group-Aware Stream Filtering
//!
//! A Rust implementation of the *group-aware stream filtering* approach of
//! Ming Li's ICDCS 2007 paper / Dartmouth dissertation TR2008-621.
//!
//! Many monitoring applications subscribe to the same high-rate data source
//! over a bandwidth-constrained network. Each application installs a
//! *data-selection filter* at the source node and the multiplexed filter
//! outputs are disseminated with tuple-level multicast. Because applications
//! tolerate *slack* in their data-granularity requirements, each filter has —
//! for every logical output — a **candidate set** of quality-equivalent
//! tuples. Group-aware filtering picks one tuple (or `k` tuples) from every
//! candidate set such that the union over the whole group is as small as
//! possible, maximising multicast sharing. That selection problem is the
//! NP-hard minimum hitting-set problem; this crate implements the paper's
//! heuristics:
//!
//! * [`engine::GroupEngine`] with [`engine::Algorithm::RegionGreedy`] — the
//!   region-based greedy algorithm (Fig. 2.6), solving a greedy hitting set
//!   per closed *region* of connected candidate sets,
//! * [`engine::Algorithm::PerCandidateSet`] — the per-candidate-set greedy
//!   algorithm (Fig. 2.10), deciding each filter's output as soon as its
//!   candidate set closes (required for *stateful* candidate sets),
//! * [`engine::Algorithm::SelfInterested`] — the baseline where every filter
//!   emits exactly its reference tuples,
//! * **timely cuts** ([`cuts`]) that force-close candidate sets when a
//!   latency constraint would otherwise be violated (Ch. 3), and
//! * pluggable **output strategies** ([`engine::OutputStrategy`]).
//!
//! The filter taxonomy of Ch. 5 is covered by [`filter::DeltaCompression`]
//! (DC1), [`filter::TrendDelta`] (DC2), [`filter::MultiAttrDelta`] (DC3) and
//! [`filter::StratifiedSampler`] (SS), all implementing [`filter::GroupFilter`]
//! so downstream users can add their own.
//!
//! ## Data path
//!
//! The hot path runs on interned identities, not payloads: every tuple is
//! interned once into the engine's [`tuple::TuplePool`] (an `Arc<Tuple>`
//! pool keyed by the copyable [`tuple::TupleId`] newtype), candidate sets
//! and solvers carry ids only, and recipient labels are packed
//! [`bitset::FilterSet`] bitsets. Payloads are resolved again exactly once,
//! at emission time — and emissions flow downstream through the
//! [`sink::EmissionSink`] seam: the engine stages releases in a reusable
//! scratch buffer and hands them to the sink by reference, so the
//! steady-state release path allocates no `Vec<Emission>` per push.
//!
//! The same seam hosts the multi-core path: [`shard::ShardedEngine`]
//! hash-partitions independent filter groups across worker threads fed by
//! bounded channels and merges their emissions back in deterministic
//! `(input step, route)` order, so sharded output is byte-identical to
//! running each group inline.
//!
//! Filter groups are **live**: `add_filter`/`remove_filter`/
//! `update_filter` (on both engines; the sharded one ships them as
//! control messages interleaved with the data channel) queue roster
//! changes that apply at the next epoch boundary, with stable
//! never-reused [`candidate::FilterId`]s, vacancy-tolerant recipient
//! bitsets and per-epoch metrics — and churn is byte-identical to a
//! static rebuild with the post-churn roster (see the engine docs).
//!
//! The same safe point powers **fault tolerance** ([`snapshot`]):
//! `GroupEngine::snapshot_into`/`restore` capture and rebuild the full
//! boundary state, `ShardedEngine::checkpoint` collects per-route
//! snapshots behind a barrier, and a crashed worker shard is respawned
//! from the last checkpoint with a bounded replay log — crash + restore
//! + replay reproduces the fault-free run byte for byte.
//!
//! ## Quickstart
//!
//! ```rust
//! use gasf_core::prelude::*;
//!
//! # fn main() -> Result<(), gasf_core::Error> {
//! let schema = Schema::new(["temperature"]);
//! let mut engine = GroupEngine::builder(schema.clone())
//!     .algorithm(Algorithm::RegionGreedy)
//!     .filter(FilterSpec::delta("temperature", 50.0, 10.0))
//!     .filter(FilterSpec::delta("temperature", 40.0, 5.0))
//!     .build()?;
//!
//! let mut stream = TupleBuilder::new(&schema);
//! let tuples = [0.0, 35.0, 29.0, 45.0, 50.0, 59.0]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, v)| {
//!         stream
//!             .at_millis(i as u64 * 10 + 1)
//!             .set("temperature", *v)
//!             .build()
//!             .expect("fixture")
//!     });
//!
//! // Emissions stream into any `EmissionSink`; `VecSink` materialises
//! // them when the whole output is wanted at once.
//! let mut out = VecSink::new();
//! engine.run_into(tuples, &mut out)?;
//! for emission in out.as_slice() {
//!     // `emission.tuple` is the pool's shared Arc<Tuple>;
//!     // `emission.recipients` is a packed FilterSet of filter ids.
//!     println!("send {} to {}", emission.tuple.id(), emission.recipients);
//! }
//! assert!(!out.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod batch;
pub mod bitset;
pub mod candidate;
pub mod connector;
pub mod cuts;
pub mod engine;
pub mod error;
pub mod event_time;
pub mod filter;
pub mod hitting_set;
pub mod metrics;
pub mod monitor;
pub mod plan;
pub mod prelude;
pub mod quality;
pub mod region;
pub mod schema;
mod seq_ring;
pub mod shard;
pub mod shed;
pub mod sink;
pub mod snapshot;
pub mod time;
pub mod tuple;
pub mod utility;

pub use error::Error;
