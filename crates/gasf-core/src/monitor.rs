//! Online performance monitoring and the group-awareness cost model.
//!
//! The dissertation's discussion (§4.8) and future work (§6.2) call for
//! exactly this: *"it is important to resort to on-line monitoring of
//! source data and current performance to get a hint as to how group-aware
//! filters can benefit"*, *"it is desirable to isolate those 'bad' filters
//! [that select most of the source] from the rest, or not to apply
//! group-aware filtering when they are present. It is thus important to
//! monitor the selectivity of each filter"*, and *"For situations where
//! group-aware filtering does not affect bandwidth savings, we can
//! dynamically disable group-awareness"*.
//!
//! [`BenefitMonitor`] consumes an engine's [`EngineMetrics`] snapshots and
//! produces a [`BenefitReport`]: per-filter selectivity, the measured
//! bandwidth benefit over the self-interested baseline, the CPU price paid
//! for it, and a [`Recommendation`].

use crate::metrics::EngineMetrics;
use serde::{Deserialize, Serialize};

/// Per-filter selectivity snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSelectivity {
    /// Filter index within the group.
    pub filter: usize,
    /// Fraction of input tuples this filter admitted as candidates.
    pub admission_rate: f64,
    /// Fraction of input tuples this filter's self-interested twin would
    /// output (its reference rate).
    pub reference_rate: f64,
}

impl FilterSelectivity {
    /// A "bad" filter in the §4.8 sense: it wants most of the source, so
    /// multicast sharing cannot save much on its account and its long
    /// candidate sets inflate regions.
    pub fn is_greedy_consumer(&self, threshold: f64) -> bool {
        self.reference_rate >= threshold
    }
}

/// What the monitor advises the hosting node to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Recommendation {
    /// Group-aware filtering is paying for itself — keep it on.
    KeepGroupAware,
    /// Benefit is marginal: disable group awareness (run self-interested)
    /// until the data pattern changes, saving the coordination CPU.
    DisableGroupAwareness {
        /// Measured relative bandwidth saving that was considered too low.
        measured_benefit: f64,
    },
    /// Specific filters consume most of the source; isolate them from the
    /// group (serve them self-interested) and keep the rest group-aware.
    IsolateFilters {
        /// Indices of the greedy consumers.
        filters: Vec<usize>,
    },
    /// Not enough data yet.
    Undecided,
}

/// Configuration thresholds for the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenefitThresholds {
    /// Minimum relative bandwidth saving (vs. the estimated SI output)
    /// worth the coordination overhead. Default 5 %.
    pub min_benefit: f64,
    /// Reference rate above which a filter counts as a greedy consumer.
    /// Default 60 %.
    pub greedy_consumer_rate: f64,
    /// Minimum observed input tuples before recommending anything.
    pub min_samples: u64,
}

impl Default for BenefitThresholds {
    fn default() -> Self {
        BenefitThresholds {
            min_benefit: 0.05,
            greedy_consumer_rate: 0.6,
            min_samples: 200,
        }
    }
}

/// The monitor's full assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenefitReport {
    /// Input tuples the assessment is based on.
    pub samples: u64,
    /// Per-filter selectivity.
    pub selectivity: Vec<FilterSelectivity>,
    /// Estimated SI output (distinct union lower-bounded by the largest
    /// per-filter reference count, upper-bounded by the sum).
    pub estimated_si_outputs: f64,
    /// Actual distinct group-aware outputs.
    pub actual_outputs: u64,
    /// Relative bandwidth benefit: `1 - actual / estimated_si` (clamped at
    /// 0 when the estimate is degenerate).
    pub benefit: f64,
    /// The advice.
    pub recommendation: Recommendation,
}

/// Assesses whether group awareness is paying off, from engine metrics.
///
/// The SI output is *estimated* from the reference counters the engine
/// already tracks (every filter counts its reference tuples regardless of
/// algorithm), so no second SI run is needed — this is what makes the
/// monitor deployable online. The estimate uses the inclusion bound
/// `max(refs) <= |union| <= sum(refs)` with a tunable interpolation.
#[derive(Debug, Clone)]
pub struct BenefitMonitor {
    thresholds: BenefitThresholds,
    /// Interpolation between the union's lower and upper bounds (0 = all
    /// references coincide, 1 = all distinct). 0.7 matches the overlap we
    /// measured across the paper's workloads.
    union_overlap: f64,
}

impl BenefitMonitor {
    /// Creates a monitor with default thresholds.
    pub fn new() -> Self {
        Self::with_thresholds(BenefitThresholds::default())
    }

    /// Creates a monitor with explicit thresholds.
    pub fn with_thresholds(thresholds: BenefitThresholds) -> Self {
        BenefitMonitor {
            thresholds,
            union_overlap: 0.7,
        }
    }

    /// Sets the union-estimate interpolation factor in `[0, 1]`.
    pub fn union_overlap(mut self, factor: f64) -> Self {
        self.union_overlap = factor.clamp(0.0, 1.0);
        self
    }

    /// Produces an assessment from an engine-metrics snapshot.
    pub fn assess(&self, metrics: &EngineMetrics) -> BenefitReport {
        let n = metrics.input_tuples.max(1) as f64;
        let selectivity: Vec<FilterSelectivity> = metrics
            .per_filter
            .iter()
            .enumerate()
            .map(|(i, f)| FilterSelectivity {
                filter: i,
                admission_rate: f.admitted as f64 / n,
                reference_rate: f.references as f64 / n,
            })
            .collect();
        let refs: Vec<f64> = metrics
            .per_filter
            .iter()
            .map(|f| f.references as f64)
            .collect();
        let lower = refs.iter().copied().fold(0.0, f64::max);
        let upper: f64 = refs.iter().sum();
        let estimated_si = lower + (upper - lower) * self.union_overlap;
        let benefit = if estimated_si > 0.0 {
            (1.0 - metrics.output_tuples as f64 / estimated_si).max(0.0)
        } else {
            0.0
        };

        let recommendation = if metrics.input_tuples < self.thresholds.min_samples {
            Recommendation::Undecided
        } else {
            let greedy: Vec<usize> = selectivity
                .iter()
                .filter(|s| s.is_greedy_consumer(self.thresholds.greedy_consumer_rate))
                .map(|s| s.filter)
                .collect();
            if !greedy.is_empty() && greedy.len() < selectivity.len() {
                Recommendation::IsolateFilters { filters: greedy }
            } else if benefit < self.thresholds.min_benefit {
                Recommendation::DisableGroupAwareness {
                    measured_benefit: benefit,
                }
            } else {
                Recommendation::KeepGroupAware
            }
        };
        BenefitReport {
            samples: metrics.input_tuples,
            selectivity,
            estimated_si_outputs: estimated_si,
            actual_outputs: metrics.output_tuples,
            benefit,
            recommendation,
        }
    }
}

impl Default for BenefitMonitor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FilterMetrics;

    fn metrics(input: u64, outputs: u64, refs: &[u64], admitted: &[u64]) -> EngineMetrics {
        EngineMetrics {
            input_tuples: input,
            output_tuples: outputs,
            per_filter: refs
                .iter()
                .zip(admitted)
                .map(|(&r, &a)| FilterMetrics {
                    references: r,
                    admitted: a,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn undecided_until_enough_samples() {
        let m = metrics(50, 10, &[20, 20], &[30, 30]);
        let report = BenefitMonitor::new().assess(&m);
        assert_eq!(report.recommendation, Recommendation::Undecided);
        assert_eq!(report.samples, 50);
    }

    #[test]
    fn healthy_group_keeps_awareness() {
        // two filters with 200 refs each, union estimate ~340, actual 200
        let m = metrics(1000, 200, &[200, 200], &[400, 400]);
        let report = BenefitMonitor::new().assess(&m);
        assert!(report.benefit > 0.3, "benefit {}", report.benefit);
        assert_eq!(report.recommendation, Recommendation::KeepGroupAware);
    }

    #[test]
    fn marginal_benefit_disables_group_awareness() {
        // actual output ≈ SI estimate: nothing gained
        let m = metrics(1000, 335, &[200, 200], &[210, 210]);
        let report = BenefitMonitor::new().assess(&m);
        assert!(matches!(
            report.recommendation,
            Recommendation::DisableGroupAwareness { .. }
        ));
    }

    #[test]
    fn greedy_consumer_gets_isolated() {
        // filter 1 references 80% of the source
        let m = metrics(1000, 500, &[100, 800], &[150, 950]);
        let report = BenefitMonitor::new().assess(&m);
        assert_eq!(
            report.recommendation,
            Recommendation::IsolateFilters { filters: vec![1] }
        );
        assert!(report.selectivity[1].is_greedy_consumer(0.6));
        assert!(!report.selectivity[0].is_greedy_consumer(0.6));
    }

    #[test]
    fn all_greedy_consumers_means_disable_not_isolate() {
        let m = metrics(1000, 900, &[800, 820], &[900, 950]);
        let report = BenefitMonitor::new().assess(&m);
        // isolating everyone is meaningless; falls through to benefit check
        assert!(matches!(
            report.recommendation,
            Recommendation::DisableGroupAwareness { .. } | Recommendation::KeepGroupAware
        ));
    }

    #[test]
    fn union_estimate_bounds() {
        let m = metrics(1000, 100, &[100, 100], &[0, 0]);
        let low = BenefitMonitor::new().union_overlap(0.0).assess(&m);
        let high = BenefitMonitor::new().union_overlap(1.0).assess(&m);
        assert_eq!(low.estimated_si_outputs, 100.0);
        assert_eq!(high.estimated_si_outputs, 200.0);
        assert!(low.benefit <= high.benefit);
    }

    #[test]
    fn live_engine_assessment() {
        // End-to-end: run an engine, assess, expect a sane report.
        use crate::prelude::*;
        let schema = Schema::new(["t"]);
        let mut b = TupleBuilder::new(&schema);
        let tuples: Vec<Tuple> = (0..500)
            .map(|i| {
                let v = (i as f64 * 0.3).sin() * 20.0 + i as f64 * 0.01;
                b.at_millis(10 * (i + 1)).set("t", v).build().unwrap()
            })
            .collect();
        let mut engine = GroupEngine::builder(schema)
            .filter(FilterSpec::delta("t", 8.0, 4.0))
            .filter(FilterSpec::delta("t", 12.0, 6.0))
            .build()
            .unwrap();
        engine.run(tuples).unwrap();
        let report = BenefitMonitor::new().assess(engine.metrics());
        assert_eq!(report.samples, 500);
        assert!(report.actual_outputs > 0);
        assert!(report.estimated_si_outputs >= report.actual_outputs as f64 * 0.5);
        assert!(!matches!(report.recommendation, Recommendation::Undecided));
    }
}
