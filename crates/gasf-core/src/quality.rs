//! Data-quality and filter specifications.
//!
//! Applications communicate their needs as a *filter specification*: the
//! filter type plus its parameters, and an optional latency tolerance
//! (§2.2.2: "an application needs to choose a filter function and specify its
//! parameters, along with a latency-tolerance parameter"). The middleware
//! propagates these specs toward the sources (Fig. 2.2/3.1) and the engine
//! instantiates concrete [`GroupFilter`](crate::filter::GroupFilter)s from
//! them.

use crate::error::Error;
use crate::shed::ShedHeadroom;
use crate::time::Micros;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether candidate-set computation depends on previously chosen outputs.
///
/// *Stateless* (reference-based) filters compute candidate sets around the
/// reference tuples a self-interested filter would pick (§2.2.3); *stateful*
/// filters base the next candidate set on the tuple actually chosen from the
/// previous one (§2.3.3, Fig. 2.9) and therefore require the
/// per-candidate-set algorithm.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dependency {
    /// Reference-based candidate sets (the default).
    #[default]
    Stateless,
    /// Candidate sets keyed off the previously *chosen* output.
    Stateful,
}

/// Domain-specific rule for which candidates are eligible as outputs
/// (the "prescriptive function" dimension of the taxonomy, Fig. 5.1).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Prescription {
    /// Any candidate may be chosen ("random" in the paper's terms — the
    /// group decides, so nothing is actually random).
    #[default]
    Any,
    /// Only the `k` candidates with the highest attribute values are
    /// eligible, at most one per rank.
    Top,
    /// Only the `k` candidates with the lowest attribute values are
    /// eligible, at most one per rank.
    Bottom,
}

/// How many tuples must be picked from a candidate set
/// (the "degree/quantity/unit" dimension of the taxonomy, Fig. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PickDegree {
    /// A fixed number of tuples per candidate set.
    Count(u32),
    /// A percentage of the candidate set's size (rounded up, minimum 1).
    Percent(f64),
}

impl PickDegree {
    /// Resolves the degree against a candidate set of `set_len` tuples.
    /// Always returns at least 1 (for non-empty sets) and at most `set_len`.
    pub fn resolve(&self, set_len: usize) -> usize {
        if set_len == 0 {
            return 0;
        }
        match *self {
            PickDegree::Count(n) => (n as usize).clamp(1, set_len),
            PickDegree::Percent(p) => {
                let k = ((p / 100.0) * set_len as f64).ceil() as usize;
                k.clamp(1, set_len)
            }
        }
    }
}

impl Default for PickDegree {
    fn default() -> Self {
        PickDegree::Count(1)
    }
}

/// Output-selection settings of a filter (degree + prescription).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PickSpec {
    /// How many tuples to pick from each candidate set.
    pub degree: PickDegree,
    /// Which candidates are eligible.
    pub prescription: Prescription,
}

impl PickSpec {
    /// The common case: pick exactly one, any candidate.
    pub fn one() -> Self {
        PickSpec::default()
    }
}

/// The filter-function part of a specification (type + parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FilterKind {
    /// DC1: delta compression on a single attribute — emit a representative
    /// whenever the attribute moves by `delta`, tolerating `slack` deviation.
    Delta {
        /// Attribute the filter watches.
        attr: String,
        /// Compression granularity ("delta").
        delta: f64,
        /// Tolerated quality deviation ("slack"), `0 <= slack <= delta/2`.
        slack: f64,
        /// Stateless (reference-based) or stateful candidate sets.
        dependency: Dependency,
    },
    /// DC2: delta compression on the *trend* (discrete derivative per
    /// second) of an attribute.
    TrendDelta {
        /// Attribute whose rate of change the filter watches.
        attr: String,
        /// Granularity on the trend value.
        delta: f64,
        /// Tolerated deviation on the trend value.
        slack: f64,
    },
    /// DC3: delta compression on the mean of several attributes.
    MultiAttrDelta {
        /// Attributes that are averaged (e.g. co-located thermistors).
        attrs: Vec<String>,
        /// Granularity on the averaged value.
        delta: f64,
        /// Tolerated deviation on the averaged value.
        slack: f64,
    },
    /// RS: reservoir sampling over fixed time windows — exactly `k` tuples
    /// per window, any candidates equivalent (§5.1: "reservoir sampling
    /// chooses a fixed number of samples from a given population … the
    /// candidate set of each output tuple is the whole data sequence in a
    /// predefined window"). Useful to bound a subscriber's bandwidth.
    Reservoir {
        /// Attribute recorded as the candidates' derived key.
        attr: String,
        /// Window length used to segment the stream.
        window: Micros,
        /// Samples per window.
        k: u32,
    },
    /// SS: stratified sampling over fixed time windows; the sample range of
    /// `attr` within the window decides whether the high or low rate is used.
    StratifiedSample {
        /// Attribute whose dynamics pick the stratum.
        attr: String,
        /// Window length used to segment the stream.
        window: Micros,
        /// Sample-range threshold separating high- from low-dynamics windows.
        threshold: f64,
        /// Percentage of tuples sampled in high-dynamics windows.
        high_pct: f64,
        /// Percentage of tuples sampled in low-dynamics windows.
        low_pct: f64,
        /// Which candidates are eligible (random/top/bottom).
        prescription: Prescription,
    },
}

/// Complete application-facing filter specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Filter function and parameters.
    pub kind: FilterKind,
    /// Maximum tolerated filtering delay per tuple, if any (drives timely
    /// cuts, Ch. 3).
    pub latency_tolerance: Option<Micros>,
    /// Optional human-readable label used in reports.
    pub label: Option<String>,
    /// Declared load-shedding headroom, if any (§4.8: graceful quality
    /// degradation under pressure). See [`FilterSpec::degraded`].
    pub shed: Option<ShedHeadroom>,
}

impl FilterSpec {
    /// A stateless `(slack, delta)` delta-compression filter (DC1).
    pub fn delta(attr: impl Into<String>, delta: f64, slack: f64) -> Self {
        FilterSpec {
            kind: FilterKind::Delta {
                attr: attr.into(),
                delta,
                slack,
                dependency: Dependency::Stateless,
            },
            latency_tolerance: None,
            label: None,
            shed: None,
        }
    }

    /// A *stateful* delta-compression filter (base = chosen output).
    pub fn stateful_delta(attr: impl Into<String>, delta: f64, slack: f64) -> Self {
        FilterSpec {
            kind: FilterKind::Delta {
                attr: attr.into(),
                delta,
                slack,
                dependency: Dependency::Stateful,
            },
            latency_tolerance: None,
            label: None,
            shed: None,
        }
    }

    /// A trend (rate-of-change) delta-compression filter (DC2).
    pub fn trend_delta(attr: impl Into<String>, delta: f64, slack: f64) -> Self {
        FilterSpec {
            kind: FilterKind::TrendDelta {
                attr: attr.into(),
                delta,
                slack,
            },
            latency_tolerance: None,
            label: None,
            shed: None,
        }
    }

    /// A multi-attribute-average delta-compression filter (DC3).
    pub fn multi_attr_delta<I, S>(attrs: I, delta: f64, slack: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        FilterSpec {
            kind: FilterKind::MultiAttrDelta {
                attrs: attrs.into_iter().map(Into::into).collect(),
                delta,
                slack,
            },
            latency_tolerance: None,
            label: None,
            shed: None,
        }
    }

    /// A reservoir-sampling filter (RS): `k` tuples per `window`.
    pub fn reservoir(attr: impl Into<String>, window: Micros, k: u32) -> Self {
        FilterSpec {
            kind: FilterKind::Reservoir {
                attr: attr.into(),
                window,
                k,
            },
            latency_tolerance: None,
            label: None,
            shed: None,
        }
    }

    /// A stratified-sampling filter (SS).
    pub fn stratified_sample(
        attr: impl Into<String>,
        window: Micros,
        threshold: f64,
        high_pct: f64,
        low_pct: f64,
    ) -> Self {
        FilterSpec {
            kind: FilterKind::StratifiedSample {
                attr: attr.into(),
                window,
                threshold,
                high_pct,
                low_pct,
                prescription: Prescription::Any,
            },
            latency_tolerance: None,
            label: None,
            shed: None,
        }
    }

    /// Sets the per-tuple latency tolerance (enables timely cuts).
    pub fn with_latency_tolerance(mut self, tolerance: Micros) -> Self {
        self.latency_tolerance = Some(tolerance);
        self
    }

    /// Sets a report label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Declares load-shedding headroom: how far the system may degrade
    /// this subscription's quality under sustained pressure (see
    /// [`FilterSpec::degraded`]). Subscriptions without headroom are
    /// never degraded.
    pub fn with_shed_headroom(mut self, headroom: ShedHeadroom) -> Self {
        self.shed = Some(headroom);
        self
    }

    /// Sets the output-selection prescription (sampling filters only).
    pub fn with_prescription(mut self, p: Prescription) -> Self {
        if let FilterKind::StratifiedSample { prescription, .. } = &mut self.kind {
            *prescription = p;
        }
        self
    }

    /// Validates the parameters against the constraints the algorithms rely
    /// on; called by the engine builder.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSpec`] when
    /// * `delta <= 0` or `slack < 0`,
    /// * `slack > delta / 2` (violates Axiom 1 — time covers of a filter's
    ///   candidate sets must not intersect),
    /// * a sampling window is zero, rates are outside `(0, 100]`, or the
    ///   attribute list of a DC3 filter is empty.
    pub fn validate(&self) -> Result<(), Error> {
        if let Some(headroom) = &self.shed {
            headroom.validate()?;
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // negation is deliberate: rejects NaN too
        fn check_delta_slack(delta: f64, slack: f64) -> Result<(), Error> {
            if !(delta > 0.0) {
                return Err(Error::InvalidSpec {
                    reason: format!("delta must be positive, got {delta}"),
                });
            }
            if !(slack >= 0.0) {
                return Err(Error::InvalidSpec {
                    reason: format!("slack must be non-negative, got {slack}"),
                });
            }
            if slack > delta / 2.0 {
                return Err(Error::InvalidSpec {
                    reason: format!(
                        "slack {slack} exceeds delta/2 = {}; candidate-set time \
                         covers could intersect (Axiom 1)",
                        delta / 2.0
                    ),
                });
            }
            Ok(())
        }
        match &self.kind {
            FilterKind::Delta { delta, slack, .. }
            | FilterKind::TrendDelta { delta, slack, .. } => check_delta_slack(*delta, *slack),
            FilterKind::MultiAttrDelta {
                attrs,
                delta,
                slack,
            } => {
                if attrs.is_empty() {
                    return Err(Error::InvalidSpec {
                        reason: "multi-attribute filter needs at least one attribute".into(),
                    });
                }
                check_delta_slack(*delta, *slack)
            }
            FilterKind::Reservoir { window, k, .. } => {
                if *window == Micros::ZERO {
                    return Err(Error::InvalidSpec {
                        reason: "reservoir window must be positive".into(),
                    });
                }
                if *k == 0 {
                    return Err(Error::InvalidSpec {
                        reason: "reservoir size must be at least 1".into(),
                    });
                }
                Ok(())
            }
            FilterKind::StratifiedSample {
                window,
                threshold,
                high_pct,
                low_pct,
                ..
            } => {
                if *window == Micros::ZERO {
                    return Err(Error::InvalidSpec {
                        reason: "sampling window must be positive".into(),
                    });
                }
                #[allow(clippy::neg_cmp_op_on_partial_ord)] // deliberate: rejects NaN
                if !(*threshold >= 0.0) {
                    return Err(Error::InvalidSpec {
                        reason: "sample-range threshold must be non-negative".into(),
                    });
                }
                for (name, pct) in [("high", *high_pct), ("low", *low_pct)] {
                    if !(pct > 0.0 && pct <= 100.0) {
                        return Err(Error::InvalidSpec {
                            reason: format!("{name} sample rate must be in (0, 100], got {pct}"),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// Whether the spec describes a stateful filter.
    pub fn is_stateful(&self) -> bool {
        matches!(
            self.kind,
            FilterKind::Delta {
                dependency: Dependency::Stateful,
                ..
            }
        )
    }
}

/// Formats a parameter compactly (4 significant-ish digits, scientific
/// notation for extreme magnitudes) for spec displays.
fn fmt_param(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() < 1e-3 || x.abs() >= 1e4 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 {
        format!("{x}")
    } else {
        let s = format!("{x:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

impl fmt::Display for FilterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            return write!(f, "{label}");
        }
        match &self.kind {
            FilterKind::Delta {
                attr,
                delta,
                slack,
                dependency,
            } => {
                let tag = match dependency {
                    Dependency::Stateless => "DC1",
                    Dependency::Stateful => "DC1*",
                };
                write!(
                    f,
                    "{tag}({attr}, {}, {})",
                    fmt_param(*delta),
                    fmt_param(*slack)
                )
            }
            FilterKind::TrendDelta { attr, delta, slack } => {
                write!(
                    f,
                    "DC2({attr}, {}, {})",
                    fmt_param(*delta),
                    fmt_param(*slack)
                )
            }
            FilterKind::MultiAttrDelta {
                attrs,
                delta,
                slack,
            } => write!(
                f,
                "DC3({}, {}, {})",
                attrs.join(", "),
                fmt_param(*delta),
                fmt_param(*slack)
            ),
            FilterKind::Reservoir { attr, window, k } => {
                write!(f, "RS({attr}, {window}, {k})")
            }
            FilterKind::StratifiedSample {
                attr,
                window,
                threshold,
                high_pct,
                low_pct,
                ..
            } => write!(
                f,
                "SS({attr}, {window}, {}, {}, {})",
                fmt_param(*threshold),
                fmt_param(*high_pct),
                fmt_param(*low_pct)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_spec_validates_axiom_1() {
        assert!(FilterSpec::delta("t", 50.0, 10.0).validate().is_ok());
        assert!(FilterSpec::delta("t", 50.0, 25.0).validate().is_ok()); // slack == delta/2 allowed
        assert!(FilterSpec::delta("t", 50.0, 26.0).validate().is_err());
        assert!(FilterSpec::delta("t", 0.0, 0.0).validate().is_err());
        assert!(FilterSpec::delta("t", 50.0, -1.0).validate().is_err());
        assert!(FilterSpec::delta("t", f64::NAN, 1.0).validate().is_err());
    }

    #[test]
    fn sampling_spec_validation() {
        let ok = FilterSpec::stratified_sample("t", Micros::from_secs(1), 0.15, 50.0, 20.0);
        assert!(ok.validate().is_ok());
        let bad_window = FilterSpec::stratified_sample("t", Micros::ZERO, 0.1, 50.0, 20.0);
        assert!(bad_window.validate().is_err());
        let bad_rate = FilterSpec::stratified_sample("t", Micros::from_secs(1), 0.1, 0.0, 20.0);
        assert!(bad_rate.validate().is_err());
        let bad_rate2 = FilterSpec::stratified_sample("t", Micros::from_secs(1), 0.1, 120.0, 20.0);
        assert!(bad_rate2.validate().is_err());
    }

    #[test]
    fn multi_attr_needs_attrs() {
        let empty: Vec<String> = vec![];
        assert!(FilterSpec::multi_attr_delta(empty, 1.0, 0.1)
            .validate()
            .is_err());
        assert!(FilterSpec::multi_attr_delta(["a", "b"], 1.0, 0.1)
            .validate()
            .is_ok());
    }

    #[test]
    fn pick_degree_resolution() {
        assert_eq!(PickDegree::Count(2).resolve(5), 2);
        assert_eq!(PickDegree::Count(9).resolve(5), 5);
        assert_eq!(PickDegree::Count(0).resolve(5), 1);
        assert_eq!(PickDegree::Percent(40.0).resolve(5), 2);
        assert_eq!(PickDegree::Percent(1.0).resolve(5), 1);
        assert_eq!(PickDegree::Percent(100.0).resolve(5), 5);
        assert_eq!(PickDegree::Count(1).resolve(0), 0);
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = FilterSpec::delta("fluoro", 0.0301, 0.015);
        assert_eq!(s.to_string(), "DC1(fluoro, 0.0301, 0.015)");
        let s = FilterSpec::multi_attr_delta(["t2", "t4"], 0.03, 0.015);
        assert_eq!(s.to_string(), "DC3(t2, t4, 0.03, 0.015)");
        let labeled = FilterSpec::delta("x", 1.0, 0.1).with_label("mine");
        assert_eq!(labeled.to_string(), "mine");
        assert!(FilterSpec::stateful_delta("x", 1.0, 0.1)
            .to_string()
            .contains("DC1*"));
    }

    #[test]
    fn statefulness_flag() {
        assert!(!FilterSpec::delta("x", 1.0, 0.1).is_stateful());
        assert!(FilterSpec::stateful_delta("x", 1.0, 0.1).is_stateful());
    }

    #[test]
    fn builder_style_modifiers() {
        let s = FilterSpec::delta("x", 1.0, 0.1)
            .with_latency_tolerance(Micros::from_millis(100))
            .with_label("L");
        assert_eq!(s.latency_tolerance, Some(Micros::from_millis(100)));
        assert_eq!(s.label.as_deref(), Some("L"));
        let ss = FilterSpec::stratified_sample("x", Micros::from_secs(1), 0.1, 50.0, 20.0)
            .with_prescription(Prescription::Top);
        match ss.kind {
            FilterKind::StratifiedSample { prescription, .. } => {
                assert_eq!(prescription, Prescription::Top)
            }
            _ => panic!(),
        }
        // with_prescription is a no-op for non-sampling filters
        let d = FilterSpec::delta("x", 1.0, 0.1).with_prescription(Prescription::Top);
        assert!(matches!(d.kind, FilterKind::Delta { .. }));
    }
}
