//! Packed bitsets for the selection hot path.
//!
//! The engines and solvers track two kinds of small-index membership:
//! which *filters* receive a tuple (recipient labels, group membership)
//! and which *candidate sets* of a region a tuple covers. Both were
//! hash-set shaped in the original data path; here they are packed into
//! `u64` blocks — [`BitSet`] over raw indices and [`FilterSet`] as its
//! [`FilterId`]-typed wrapper. A group of up
//! to 64 filters fits in a single block, so membership tests, unions and
//! cardinalities are single-word operations with no hashing and no
//! allocation beyond one small `Vec`.
//!
//! Invariant: trailing all-zero blocks are always trimmed, so structural
//! equality (`==`, `Hash`) coincides with set equality.

use crate::candidate::FilterId;
use serde::{Deserialize, Serialize};
use std::fmt;

const BLOCK_BITS: usize = 64;

/// A growable packed bitset over `usize` indices.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    blocks: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Creates an empty set pre-sized for indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            blocks: Vec::with_capacity(capacity.div_ceil(BLOCK_BITS)),
        }
    }

    /// Inserts an index; returns whether it was newly inserted.
    pub fn insert(&mut self, index: usize) -> bool {
        let (block, bit) = (index / BLOCK_BITS, index % BLOCK_BITS);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes an index; returns whether it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        let (block, bit) = (index / BLOCK_BITS, index % BLOCK_BITS);
        let Some(b) = self.blocks.get_mut(block) else {
            return false;
        };
        let mask = 1u64 << bit;
        let present = *b & mask != 0;
        *b &= !mask;
        if present {
            self.trim();
        }
        present
    }

    /// Whether the index is in the set.
    pub fn contains(&self, index: usize) -> bool {
        let (block, bit) = (index / BLOCK_BITS, index % BLOCK_BITS);
        self.blocks
            .get(block)
            .is_some_and(|b| b & (1u64 << bit) != 0)
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Adds every index of `other` to `self`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst |= src;
        }
    }

    /// Whether the two sets share at least one index.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates the indices in ascending order.
    pub fn iter(&self) -> BitIndices<'_> {
        BitIndices {
            blocks: &self.blocks,
            next_block: 0,
            current: 0,
        }
    }

    /// The packed `u64` blocks, trailing zero blocks already trimmed.
    ///
    /// This is the set's canonical byte-level representation: wire codecs
    /// serialise the blocks directly, with no per-index materialisation.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuilds a set from packed `u64` blocks (e.g. decoded off the
    /// wire). Trailing zero blocks are trimmed so the structural-equality
    /// invariant holds regardless of how the input was produced.
    pub fn from_blocks(blocks: Vec<u64>) -> Self {
        let mut set = BitSet { blocks };
        set.trim();
        set
    }

    fn trim(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = BitSet::new();
        for i in iter {
            set.insert(i);
        }
        set
    }
}

/// Allocation-free iterator over the indices of a [`BitSet`], ascending.
#[derive(Debug, Clone)]
pub struct BitIndices<'a> {
    blocks: &'a [u64],
    /// Index of the next block to load; the block being drained is
    /// `next_block - 1`.
    next_block: usize,
    current: u64,
}

impl Iterator for BitIndices<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.next_block - 1) * BLOCK_BITS + bit);
            }
            let &block = self.blocks.get(self.next_block)?;
            self.current = block;
            self.next_block += 1;
        }
    }
}

/// A packed set of [`FilterId`]s — the recipient labels of an emission and
/// the engines' filter-membership currency.
///
/// Filter ids are dense (assigned in insertion order by the engine
/// builder), so a group of ≤ 64 filters is one `u64` block. Unlike the
/// `Vec<FilterId>` + sort + dedup it replaces, insertion is idempotent and
/// iteration is always in ascending id order.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FilterSet(BitSet);

impl FilterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FilterSet::default()
    }

    /// Creates an empty set pre-sized for a group of `n` filters.
    pub fn with_group_size(n: usize) -> Self {
        FilterSet(BitSet::with_capacity(n))
    }

    /// Inserts a filter; returns whether it was newly inserted.
    pub fn insert(&mut self, filter: FilterId) -> bool {
        self.0.insert(filter.index())
    }

    /// Removes a filter; returns whether it was present.
    pub fn remove(&mut self, filter: FilterId) -> bool {
        self.0.remove(filter.index())
    }

    /// Whether the filter is in the set.
    pub fn contains(&self, filter: FilterId) -> bool {
        self.0.contains(filter.index())
    }

    /// Number of filters in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Removes every filter, keeping the allocation.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Adds every filter of `other`.
    pub fn union_with(&mut self, other: &FilterSet) {
        self.0.union_with(&other.0);
    }

    /// Iterates the filters in ascending id order.
    pub fn iter(&self) -> FilterIds<'_> {
        FilterIds(self.0.iter())
    }

    /// The packed `u64` blocks of the underlying [`BitSet`], trimmed.
    /// Wire codecs serialise these directly — no intermediate `Vec` of
    /// ids on the hot send path.
    pub fn blocks(&self) -> &[u64] {
        self.0.blocks()
    }

    /// Rebuilds a set from packed `u64` blocks (the inverse of
    /// [`FilterSet::blocks`]); trailing zero blocks are trimmed.
    pub fn from_blocks(blocks: Vec<u64>) -> Self {
        FilterSet(BitSet::from_blocks(blocks))
    }
}

/// Allocation-free iterator over the members of a [`FilterSet`],
/// ascending by filter id.
#[derive(Debug, Clone)]
pub struct FilterIds<'a>(BitIndices<'a>);

impl Iterator for FilterIds<'_> {
    type Item = FilterId;

    fn next(&mut self) -> Option<FilterId> {
        self.0.next().map(FilterId::from_index)
    }
}

impl FromIterator<FilterId> for FilterSet {
    fn from_iter<I: IntoIterator<Item = FilterId>>(iter: I) -> Self {
        FilterSet(iter.into_iter().map(|f| f.index()).collect())
    }
}

impl<'a> IntoIterator for &'a FilterSet {
    type Item = FilterId;
    type IntoIter = FilterIds<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for FilterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = BitSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3), "second insert is not fresh");
        assert!(s.insert(200));
        assert!(s.contains(3) && s.contains(200) && !s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(200));
        assert!(!s.remove(200));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn trailing_blocks_trimmed_for_equality() {
        let mut a = BitSet::new();
        a.insert(1);
        a.insert(500);
        a.remove(500);
        let b: BitSet = [1usize].into_iter().collect();
        assert_eq!(a, b, "equality must ignore vacated high blocks");
    }

    #[test]
    fn union_and_intersection() {
        let a: BitSet = [0usize, 63, 64].into_iter().collect();
        let b: BitSet = [64usize, 120].into_iter().collect();
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 63, 64, 120]);
        let c: BitSet = [1usize].into_iter().collect();
        assert!(!b.intersects(&c));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: BitSet = [130usize, 2, 65, 0].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 65, 130]);
    }

    #[test]
    fn filter_set_tracks_filter_ids() {
        let mut s = FilterSet::with_group_size(3);
        assert!(s.is_empty());
        s.insert(FilterId::from_index(2));
        s.insert(FilterId::from_index(0));
        s.insert(FilterId::from_index(2));
        assert_eq!(s.len(), 2);
        assert!(s.contains(FilterId::from_index(0)));
        assert!(!s.contains(FilterId::from_index(1)));
        let ids: Vec<usize> = s.iter().map(|f| f.index()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(s.to_string(), "{F0, F2}");
        let via_ref: Vec<FilterId> = (&s).into_iter().collect();
        assert_eq!(via_ref.len(), 2);
    }

    #[test]
    fn filter_set_union_is_idempotent_dedup() {
        let a: FilterSet = [0, 1].into_iter().map(FilterId::from_index).collect();
        let b: FilterSet = [1, 2].into_iter().map(FilterId::from_index).collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        u.union_with(&b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut s: BitSet = [5usize].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
