//! Metrics: the paper's evaluation quantities (§4.4).
//!
//! * **O/I ratio** — total distinct output tuples over input tuples; lower
//!   is better (bandwidth).
//! * **CPU cost per tuple** — filtering wall-clock time per input tuple.
//! * **Latency per tuple** — source-to-emission delay per output tuple.
//! * **% regions cut**, region sizes, per-filter compression counters.
//!
//! [`BoxPlot`] reproduces the paper's box-plot summaries (min, quartiles,
//! median, max, 1.5·IQR outliers).

use crate::time::Micros;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-filter counters.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FilterMetrics {
    /// Reference tuples identified (what SI would output).
    pub references: u64,
    /// Tuples chosen for this filter by the group decision.
    pub chosen: u64,
    /// Candidate sets closed.
    pub sets_closed: u64,
    /// Candidate sets closed by a timely cut.
    pub sets_cut: u64,
    /// Candidates admitted in total.
    pub admitted: u64,
    /// Candidates dismissed (tentative candidates dropped at reference).
    pub dismissed: u64,
}

impl FilterMetrics {
    /// Adds another set of counters for the *same* filter into this one
    /// (used by the per-epoch metrics fold).
    pub fn absorb(&mut self, other: &FilterMetrics) {
        self.references += other.references;
        self.chosen += other.chosen;
        self.sets_closed += other.sets_closed;
        self.sets_cut += other.sets_cut;
        self.admitted += other.admitted;
        self.dismissed += other.dismissed;
    }
}

/// Metrics accumulated by a [`GroupEngine`](crate::engine::GroupEngine) run.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Input tuples pushed.
    pub input_tuples: u64,
    /// Distinct tuples emitted (the union the paper's O/I ratio counts).
    pub output_tuples: u64,
    /// Emission records produced (a tuple re-emitted to late recipients
    /// under the per-candidate-set output strategy counts again here).
    pub emissions: u64,
    /// Total recipient labels across emissions (≥ `output_tuples`).
    pub recipient_labels: u64,
    /// Emissions released out of stream order (possible under the
    /// per-candidate-set output strategy, §3.4). Downstream operators can
    /// reorder using the engine's watermark "punctuations".
    pub disordered_emissions: u64,
    /// Regions solved.
    pub regions: u64,
    /// Regions containing at least one cut set.
    pub regions_cut: u64,
    /// Region sizes (candidate tuples with multiplicity).
    pub region_sizes: Vec<usize>,
    /// Per-output-tuple latency, microseconds (emission time − source
    /// timestamp).
    pub latencies_us: Vec<u64>,
    /// Total filtering CPU time (wall clock inside `push`/`finish`).
    pub cpu: Duration,
    /// CPU time spent in the greedy hitting-set solver alone.
    pub greedy_cpu: Duration,
    /// Per-filter counters, indexed by filter id.
    pub per_filter: Vec<FilterMetrics>,
}

impl EngineMetrics {
    /// Accumulates another engine's metrics into this one, field-wise.
    ///
    /// This is how the sharded execution path aggregates across routes:
    /// counters and CPU add up, sample vectors concatenate, and the
    /// per-filter counters append (each route keeps its own filter-id
    /// space, so the combined vector is indexed by `(route, filter)` in
    /// route order). Note that `input_tuples` sums each engine's *view* of
    /// the stream — `G` routes over one stream count it `G` times, which
    /// keeps `oi_ratio`/`cpu_per_tuple` meaningful as per-engine means.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.accumulate_scalars(other);
        self.per_filter.extend_from_slice(&other.per_filter);
    }

    /// Accumulates another *epoch of the same engine* into this one.
    ///
    /// Counters, samples and CPU add up exactly like
    /// [`merge`](Self::merge), but `per_filter` is added element-wise by
    /// filter id instead of appended: epochs of one engine share a stable
    /// [`FilterId`](crate::candidate::FilterId) space, so slot `i` is
    /// filter `i` in every epoch (vacant slots contribute zeros and the
    /// vector grows to the larger id space). This is how
    /// `GroupEngine::lifetime_metrics` folds the per-epoch archive.
    pub fn absorb(&mut self, other: &EngineMetrics) {
        self.accumulate_scalars(other);
        if self.per_filter.len() < other.per_filter.len() {
            self.per_filter
                .resize(other.per_filter.len(), FilterMetrics::default());
        }
        for (dst, src) in self.per_filter.iter_mut().zip(&other.per_filter) {
            dst.absorb(src);
        }
    }

    fn accumulate_scalars(&mut self, other: &EngineMetrics) {
        self.input_tuples += other.input_tuples;
        self.output_tuples += other.output_tuples;
        self.emissions += other.emissions;
        self.recipient_labels += other.recipient_labels;
        self.disordered_emissions += other.disordered_emissions;
        self.regions += other.regions;
        self.regions_cut += other.regions_cut;
        self.region_sizes.extend_from_slice(&other.region_sizes);
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.cpu += other.cpu;
        self.greedy_cpu += other.greedy_cpu;
    }

    /// Output/input ratio (§4.4); `NaN` when no input was processed.
    pub fn oi_ratio(&self) -> f64 {
        self.output_tuples as f64 / self.input_tuples as f64
    }

    /// Mean CPU cost per input tuple.
    pub fn cpu_per_tuple(&self) -> Duration {
        if self.input_tuples == 0 {
            Duration::ZERO
        } else {
            self.cpu / self.input_tuples as u32
        }
    }

    /// Mean latency per output tuple.
    pub fn mean_latency(&self) -> Micros {
        if self.latencies_us.is_empty() {
            Micros::ZERO
        } else {
            Micros(self.latencies_us.iter().sum::<u64>() / self.latencies_us.len() as u64)
        }
    }

    /// Fraction of regions affected by cuts, in `[0, 1]`.
    pub fn cut_fraction(&self) -> f64 {
        if self.regions == 0 {
            0.0
        } else {
            self.regions_cut as f64 / self.regions as f64
        }
    }

    /// Mean region size (candidate tuples, with multiplicity).
    pub fn mean_region_size(&self) -> f64 {
        if self.region_sizes.is_empty() {
            0.0
        } else {
            self.region_sizes.iter().sum::<usize>() as f64 / self.region_sizes.len() as f64
        }
    }

    /// Latency samples in milliseconds (for box plots).
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.latencies_us
            .iter()
            .map(|&u| u as f64 / 1000.0)
            .collect()
    }
}

/// A fixed-footprint log₂-bucketed latency histogram (microseconds).
///
/// Per-sample `Vec` accounting is fine at benchmark scale but not at
/// soak scale — 10⁶ subscribers × many deliveries would spend gigabytes
/// on samples nobody reads individually. This histogram spends 64
/// counters total: bucket `b` covers latencies with `ilog2 == b`
/// (bucket 0 is `{0, 1}` µs), so quantile estimates carry at most a
/// factor-of-two error — ample for p50/p99 soak reporting, and
/// completely deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `buckets[b]` counts samples with `ilog2(max(us, 1)) == b`.
    buckets: [u64; 64],
    /// Total samples recorded.
    count: u64,
    /// Sum of all samples (exact mean).
    sum_us: u64,
    /// Largest sample seen (exact max).
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Micros) {
        let us = latency.as_micros();
        self.buckets[us.max(1).ilog2() as usize] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean latency (zero when empty).
    pub fn mean(&self) -> Micros {
        Micros(self.sum_us.checked_div(self.count).unwrap_or(0))
    }

    /// Exact maximum latency.
    pub fn max(&self) -> Micros {
        Micros(self.max_us)
    }

    /// Estimated percentile (`pct` in `[0, 100]`): the upper edge of the
    /// bucket containing the rank, clamped to the exact max. Zero when
    /// empty.
    pub fn percentile(&self, pct: f64) -> Micros {
        if self.count == 0 {
            return Micros::ZERO;
        }
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if b >= 63 { u64::MAX } else { (2u64 << b) - 1 };
                return Micros(upper.min(self.max_us));
            }
        }
        Micros(self.max_us)
    }

    /// Adds another histogram's counts into this one.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Five-number summary with 1.5·IQR outliers — the paper's box plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Minimum non-outlier value.
    pub min: f64,
    /// 25 % quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75 % quartile.
    pub q3: f64,
    /// Maximum non-outlier value.
    pub max: f64,
    /// Values below `q1 - 1.5·IQR` or above `q3 + 1.5·IQR`.
    pub outliers: Vec<f64>,
}

impl BoxPlot {
    /// Computes a box plot from samples.
    ///
    /// Returns `None` for an empty sample set.
    pub fn from_samples(samples: &[f64]) -> Option<BoxPlot> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q1 = percentile_sorted(&v, 25.0);
        let median = percentile_sorted(&v, 50.0);
        let q3 = percentile_sorted(&v, 75.0);
        let iqr = q3 - q1;
        let lo = q1 - 1.5 * iqr;
        let hi = q3 + 1.5 * iqr;
        let outliers: Vec<f64> = v.iter().copied().filter(|&x| x < lo || x > hi).collect();
        let inliers: Vec<f64> = v.iter().copied().filter(|&x| x >= lo && x <= hi).collect();
        let (min, max) = if inliers.is_empty() {
            (v[0], v[v.len() - 1])
        } else {
            (inliers[0], inliers[inliers.len() - 1])
        };
        Some(BoxPlot {
            min,
            q1,
            median,
            q3,
            max,
            outliers,
        })
    }
}

/// Linear-interpolated percentile over a **sorted** slice.
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = (pct / 100.0) * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Mean of a sample set (`NaN` when empty).
pub fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (`0` for fewer than two samples).
pub fn std_dev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    let var = samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (samples.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oi_ratio_and_means() {
        let m = EngineMetrics {
            input_tuples: 100,
            output_tuples: 35,
            latencies_us: vec![10_000, 20_000, 30_000],
            regions: 4,
            regions_cut: 1,
            region_sizes: vec![2, 4, 6, 8],
            cpu: Duration::from_millis(50),
            ..Default::default()
        };
        assert!((m.oi_ratio() - 0.35).abs() < 1e-12);
        assert_eq!(m.mean_latency(), Micros(20_000));
        assert!((m.cut_fraction() - 0.25).abs() < 1e-12);
        assert!((m.mean_region_size() - 5.0).abs() < 1e-12);
        assert_eq!(m.cpu_per_tuple(), Duration::from_micros(500));
        assert_eq!(m.latencies_ms(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = EngineMetrics::default();
        assert_eq!(m.mean_latency(), Micros::ZERO);
        assert_eq!(m.cut_fraction(), 0.0);
        assert_eq!(m.mean_region_size(), 0.0);
        assert_eq!(m.cpu_per_tuple(), Duration::ZERO);
        assert!(m.oi_ratio().is_nan());
    }

    #[test]
    fn absorb_aligns_per_filter_by_id_while_merge_appends() {
        let a = EngineMetrics {
            input_tuples: 10,
            per_filter: vec![
                FilterMetrics {
                    chosen: 1,
                    ..Default::default()
                },
                FilterMetrics {
                    chosen: 2,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let b = EngineMetrics {
            input_tuples: 5,
            per_filter: vec![
                FilterMetrics {
                    chosen: 10,
                    ..Default::default()
                },
                FilterMetrics {
                    chosen: 20,
                    ..Default::default()
                },
                FilterMetrics {
                    chosen: 30,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.input_tuples, 15);
        assert_eq!(merged.per_filter.len(), 5, "merge concatenates");

        let mut folded = a.clone();
        folded.absorb(&b);
        assert_eq!(folded.input_tuples, 15);
        assert_eq!(folded.per_filter.len(), 3, "absorb aligns by id");
        let chosen: Vec<u64> = folded.per_filter.iter().map(|f| f.chosen).collect();
        assert_eq!(chosen, vec![11, 22, 30]);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 4.0);
        assert_eq!(percentile_sorted(&v, 50.0), 2.5);
        assert_eq!(percentile_sorted(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn box_plot_basic() {
        let samples: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        let b = BoxPlot::from_samples(&samples).unwrap();
        assert_eq!(b.median, 6.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 11.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn box_plot_flags_outliers() {
        let mut samples: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        samples.push(100.0);
        let b = BoxPlot::from_samples(&samples).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.max < 100.0);
    }

    #[test]
    fn box_plot_empty_and_nan() {
        assert!(BoxPlot::from_samples(&[]).is_none());
        assert!(BoxPlot::from_samples(&[f64::NAN]).is_none());
        let b = BoxPlot::from_samples(&[f64::NAN, 2.0]).unwrap();
        assert_eq!(b.median, 2.0);
    }

    #[test]
    fn latency_histogram_percentiles_bound_samples() {
        let mut h = LatencyHistogram::new();
        for us in [0u64, 1, 2, 3, 100, 1000, 1001, 5000, 100_000, 1_000_000] {
            h.record(Micros(us));
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), Micros(1_000_000));
        assert_eq!(h.mean(), Micros(1_107_107 / 10));
        // p100 is the exact max; estimates never exceed it
        assert_eq!(h.percentile(100.0), Micros(1_000_000));
        // p50 falls in the bucket holding the 5th sample (100µs → [64,127])
        let p50 = h.percentile(50.0).as_micros();
        assert!((100..=127).contains(&p50), "p50 {p50}");
        // within a factor of two of the true percentile, always above it
        let p90 = h.percentile(90.0).as_micros();
        assert!((100_000..=200_000).contains(&p90), "p90 {p90}");
        assert_eq!(LatencyHistogram::new().percentile(99.0), Micros::ZERO);
        assert_eq!(LatencyHistogram::new().mean(), Micros::ZERO);
    }

    #[test]
    fn latency_histogram_absorb_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Micros(10));
        b.record(Micros(1000));
        b.record(Micros(7));
        a.absorb(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Micros(1000));
        assert_eq!(a.mean(), Micros(1017 / 3));
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 0.01, "sd {sd}");
    }
}
