//! Checkpoint/restore at safe points: the engine-side half of the
//! fault-tolerance story.
//!
//! A long-lived deployment must survive a crashed worker, a killed
//! process, or a whole host going away without losing its subscription
//! roster, its per-epoch accounting, or — most importantly — its
//! **determinism**. The mechanism is the *safe point* the subscription
//! control plane already defines: the epoch boundary where every open
//! candidate set is force-closed, every region completed, and everything
//! pending released (see the [engine docs](crate::engine)). At that
//! boundary the engine's only durable state is
//!
//! * the filter roster (with vacancy holes and the never-reused
//!   [`FilterId`] frontier),
//! * the epoch counter and the per-epoch metrics archive,
//! * the stream position (last accepted timestamp + sequence number, i.e.
//!   the seq-ring frontier) and the output watermark,
//! * the engine configuration (schema, algorithm, output strategy, time
//!   constraint, predictor tuning).
//!
//! Open candidate/region state is **excluded by construction**: snapshots
//! are taken only at boundary drains, so there is nothing transient to
//! serialise.
//!
//! One size note: the per-epoch metrics archive grows by one entry per
//! boundary crossing (checkpoint or control-op application) and each
//! snapshot carries the whole archive, so snapshot size — unlike the
//! replay log — is proportional to the engine's boundary count, not
//! bounded by the checkpoint interval. Deployments that checkpoint very
//! frequently over a very long life should expect checkpoint cost to
//! grow with it; compacting the archive into the snapshot (summarised
//! epochs beyond a window) is the natural extension if that ever
//! dominates. [`GroupSnapshot`] captures exactly that state for one
//! [`GroupEngine`](crate::engine::GroupEngine);
//! [`EngineSnapshot`] collects one `GroupSnapshot` per route plus the
//! caller-side stream position for a whole
//! [`ShardedEngine`](crate::shard::ShardedEngine). Both derive the
//! workspace serde markers, so a real serialisation backend drops in with
//! the real `serde` crate.
//!
//! ## The recovery determinism contract
//!
//! Taking a checkpoint crosses an epoch boundary (exactly like a queued
//! control op with an empty op set): the boundary drain is handed to the
//! caller's sink and retained filters restart fresh. Therefore a run that
//! checkpoints at step `K`, **crashes at any later step, restores and
//! replays the suffix** produces — byte for byte — the emission stream of
//! the fault-free run with the same checkpoint schedule. The contract is
//! pinned exhaustively (every `Algorithm` × `OutputStrategy` ×
//! parallelism ∈ {1, 2, 4}, plus property-based random crash schedules)
//! in `tests/tests/recovery_equivalence.rs`.
//!
//! ```rust
//! use gasf_core::prelude::*;
//!
//! # fn main() -> Result<(), gasf_core::Error> {
//! let schema = Schema::new(["t"]);
//! let mut live = GroupEngine::builder(schema.clone())
//!     .filter(FilterSpec::delta("t", 2.0, 0.9))
//!     .filter(FilterSpec::delta("t", 3.0, 1.4))
//!     .build()?;
//! let mut b = TupleBuilder::new(&schema);
//! let tuples: Vec<Tuple> = (0..200)
//!     .map(|i| {
//!         b.at_millis(10 * (i + 1))
//!             .set("t", (i as f64 * 0.7).sin() * 6.0)
//!             .build()
//!             .unwrap()
//!     })
//!     .collect();
//!
//! // Stream half, then checkpoint at the safe-point boundary.
//! let mut out = VecSink::new();
//! for t in &tuples[..100] {
//!     live.push_into(t.clone(), &mut out)?;
//! }
//! let snapshot = live.snapshot_into(&mut out)?; // boundary drain lands in `out`
//!
//! // The fault-free engine keeps going…
//! let mut expected = VecSink::new();
//! for t in &tuples[100..] {
//!     live.push_into(t.clone(), &mut expected)?;
//! }
//! live.finish_into(&mut expected)?;
//!
//! // …while a crashed replica restores from the snapshot and replays the
//! // suffix: the continuation is byte-identical.
//! let mut restored = GroupEngine::restore(&snapshot)?;
//! let mut replayed = VecSink::new();
//! for t in &tuples[100..] {
//!     restored.push_into(t.clone(), &mut replayed)?;
//! }
//! restored.finish_into(&mut replayed)?;
//! assert_eq!(replayed.as_slice(), expected.as_slice());
//! assert_eq!(restored.epoch(), 1); // the checkpoint crossed one epoch boundary
//! # Ok(())
//! # }
//! ```

use crate::candidate::FilterId;
use crate::cuts::TimeConstraint;
use crate::engine::{Algorithm, OutputStrategy};
use crate::metrics::EngineMetrics;
use crate::quality::FilterSpec;
use crate::schema::Schema;
use crate::time::Micros;
use serde::{Deserialize, Serialize};

/// The full safe-point state of one
/// [`GroupEngine`](crate::engine::GroupEngine).
///
/// Produced by [`GroupEngine::snapshot_into`](crate::engine::GroupEngine::snapshot_into)
/// (which first drains the epoch boundary into the caller's sink) and
/// consumed by [`GroupEngine::restore`](crate::engine::GroupEngine::restore).
/// See the [module docs](self) for what is — and deliberately is not —
/// captured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSnapshot {
    pub(crate) schema: Schema,
    pub(crate) algorithm: Algorithm,
    pub(crate) strategy: OutputStrategy,
    /// The caller's explicit constraint (the effective one is recomputed
    /// from the restored roster, exactly as the live engine does).
    pub(crate) constraint: Option<TimeConstraint>,
    pub(crate) predictor_window: usize,
    pub(crate) overestimate_us: f64,
    /// Slot-indexed roster; `None` is a vacancy left by a removed filter.
    pub(crate) roster: Vec<Option<FilterSpec>>,
    /// The never-reused filter-id frontier.
    pub(crate) next_filter_id: u32,
    /// Epochs completed at the snapshot boundary (the checkpoint itself
    /// counts: it archives the running epoch).
    pub(crate) epoch: u64,
    /// Archived metrics of every completed epoch, oldest first.
    pub(crate) past_epochs: Vec<EngineMetrics>,
    pub(crate) watermark: Micros,
    /// Timestamp of the last accepted tuple (stream-order frontier).
    pub(crate) last_ts: Option<Micros>,
    /// Sequence number of the last accepted tuple (seq-ring frontier).
    pub(crate) last_seq: Option<u64>,
}

impl GroupSnapshot {
    /// The stream schema the engine was built for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configured second-stage algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Epochs completed at the snapshot boundary.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Archived metrics of completed epochs, oldest first — the history a
    /// restored engine continues from.
    pub fn epoch_metrics(&self) -> &[EngineMetrics] {
        &self.past_epochs
    }

    /// The live roster at the boundary: `(id, spec)` per occupied slot,
    /// ascending by id (vacancy holes are skipped but preserved).
    pub fn roster(&self) -> Vec<(FilterId, FilterSpec)> {
        self.roster_iter().map(|(id, s)| (id, s.clone())).collect()
    }

    /// Borrowing form of [`roster`](Self::roster): the occupied slots
    /// without cloning any spec.
    pub fn roster_iter(&self) -> impl Iterator<Item = (FilterId, &FilterSpec)> {
        self.roster
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (FilterId::from_index(i), s)))
    }

    /// Number of live filters captured.
    pub fn group_size(&self) -> usize {
        self.roster.iter().flatten().count()
    }

    /// The stream position `(timestamp, seq)` of the last tuple accepted
    /// before the boundary, or `None` for a snapshot of a never-fed
    /// engine. A restored engine resumes ordering validation from exactly
    /// this frontier, so replaying the post-checkpoint suffix is the only
    /// input it accepts.
    pub fn stream_position(&self) -> Option<(Micros, u64)> {
        match (self.last_ts, self.last_seq) {
            (Some(ts), Some(seq)) => Some((ts, seq)),
            _ => None,
        }
    }
}

/// A whole-engine checkpoint of a
/// [`ShardedEngine`](crate::shard::ShardedEngine): one [`GroupSnapshot`]
/// per route (collected by the checkpoint barrier at every route's safe
/// point) plus the caller-side stream position and enough configuration
/// to respawn the worker topology.
///
/// Produced by [`ShardedEngine::checkpoint`](crate::shard::ShardedEngine::checkpoint),
/// consumed by [`ShardedEngine::restore`](crate::shard::ShardedEngine::restore)
/// (full-process recovery). The same per-route snapshots also feed the
/// engine's *internal* worker respawn, which rebuilds a crashed shard and
/// replays the post-checkpoint suffix transparently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Per-route safe-point snapshots, in route-index order.
    pub(crate) snaps: Vec<GroupSnapshot>,
    /// Route keys, in route-index order (drive shard placement).
    pub(crate) route_keys: Vec<String>,
    pub(crate) parallelism: usize,
    pub(crate) batch_size: usize,
    pub(crate) queue_depth: usize,
    pub(crate) track_step_costs: bool,
    pub(crate) replay_capacity: usize,
    pub(crate) max_respawns: u32,
    pub(crate) last_ts: Option<Micros>,
    pub(crate) last_seq: Option<u64>,
    pub(crate) input_tuples: u64,
}

impl EngineSnapshot {
    /// Number of routes captured.
    pub fn routes(&self) -> usize {
        self.snaps.len()
    }

    /// The per-route safe-point snapshots, in route-index order.
    pub fn route_snapshots(&self) -> &[GroupSnapshot] {
        &self.snaps
    }

    /// The route keys, in route-index order.
    pub fn route_keys(&self) -> &[String] {
        &self.route_keys
    }

    /// The worker-shard count the engine was built with.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Input tuples the engine had accepted when the checkpoint was taken.
    pub fn input_tuples(&self) -> u64 {
        self.input_tuples
    }

    /// The caller-side stream position at the checkpoint (see
    /// [`GroupSnapshot::stream_position`]).
    pub fn stream_position(&self) -> Option<(Micros, u64)> {
        match (self.last_ts, self.last_seq) {
            (Some(ts), Some(seq)) => Some((ts, seq)),
            _ => None,
        }
    }
}
